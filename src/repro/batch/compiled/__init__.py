"""Compiled kernel backends for the batch hot path.

Two interchangeable implementations of the interval kernels live here:

* :mod:`repro.batch.compiled.numpy_backend` — the pure-NumPy reference,
  always available (NumPy is the package's only hard dependency);
* :mod:`repro.batch.compiled.numba_backend` — nopython twins compiled
  with Numba, installed via the optional ``repro[compiled]`` extra.

Selection happens once, at import time:

1. If the ``REPRO_NO_JIT`` environment variable is set (to anything but
   ``0``/empty), the NumPy backend is forced — CI uses this to prove the
   fallback bit-identical on its own.
2. Otherwise Numba is imported if present, and every JIT kernel is run
   through a bit-equality probe against the reference on widths spanning
   all of NumPy's pairwise-summation regimes (sequential, unrolled
   block, recursive split) including strided ring-buffer views.  Any
   single mismatching byte — e.g. a NumPy build whose SIMD reduction
   tree differs from the scalar algorithm the JIT replicates — rejects
   the JIT backend for the whole process.

Backend choice is therefore *result-inert by construction*: no caller
can observe anything but speed (the cache-key audit allowlists it; see
``repro-check``).  :func:`kernel_backend` reports which backend won and
:func:`selection_reason` why, for diagnostics and telemetry.
"""

from __future__ import annotations

import os
from types import ModuleType

import numpy as np

from repro.batch.compiled import numpy_backend

__all__ = ["kernel_backend", "selection_reason", "pearson_core",
           "pearson_cached", "centroid_rows", "band_stats_rows",
           "lpd_step", "fsm_step", "gpd_classify", "ENV_FLAG"]

#: Set (non-empty, non-"0") to force the pure-NumPy fallback.
ENV_FLAG = "REPRO_NO_JIT"

#: Probe widths covering every pairwise-summation regime: sequential
#: (< 8), one unrolled block (<= 128) with and without a remainder
#: tail, and recursive splits (> 128) including the session buffer size.
_PROBE_WIDTHS = (1, 2, 3, 5, 7, 8, 9, 12, 16, 31, 64, 127, 128, 129,
                 200, 504, 600)
_PROBE_ROWS = 3


def _bit_equal(a: np.ndarray, b: np.ndarray) -> bool:
    return a.tobytes() == b.tobytes()


def _probe_matches(jit: ModuleType, ref: ModuleType) -> bool:
    """True iff every JIT float kernel matches the reference bitwise.

    The integer kernels (``lpd_step``/``fsm_step``/``gpd_classify``) are
    exact by construction — table lookups and comparisons have no
    rounding — but are probed too so a miscompilation cannot slip in.
    """
    rng = np.random.default_rng(20260808)
    for n in _PROBE_WIDTHS:
        shape = (_PROBE_ROWS, n)
        x = np.floor(rng.uniform(0.0, 50.0, size=shape))
        y = np.floor(rng.uniform(0.0, 50.0, size=shape))
        x[0, :] = 3.0  # a degenerate (flat) row exercises `defined`
        if n >= 2:
            r_jit, defined_jit = jit.pearson_core(x, y)
            r_ref, defined_ref = ref.pearson_core(x, y)
            if not (_bit_equal(r_jit, r_ref)
                    and _bit_equal(defined_jit, defined_ref)):
                return False
            # cached variant fed the sums its caller caches
            sum_x = x.sum(axis=1)
            sum_x2 = (x * x).sum(axis=1)
            out_jit = jit.pearson_cached(x, y, sum_x, sum_x2)
            out_ref = ref.pearson_cached(x, y, sum_x, sum_x2)
            if not all(_bit_equal(a, b)
                       for a, b in zip(out_jit, out_ref)):
                return False
        pcs = rng.integers(0, 2 ** 40, size=(_PROBE_ROWS, n + 2))
        strided = pcs[:, 1:n + 1]  # unit inner stride, offset rows
        if not _bit_equal(jit.centroid_rows(strided),
                          ref.centroid_rows(strided)):
            return False
        if n >= 2:
            values = rng.uniform(1.0, 1e9, size=shape)
            mean_jit, sd_jit = jit.band_stats_rows(values)
            mean_ref, sd_ref = ref.band_stats_rows(values)
            if not (_bit_equal(mean_jit, mean_ref)
                    and _bit_equal(sd_jit, sd_ref)):
                return False
    # integer kernels: one randomized table round-trip
    n_states, n_inputs, k = 5, 4, 64
    next_state = rng.integers(0, n_states, size=(n_states, n_inputs))
    change = rng.integers(0, 2, size=(n_states, n_inputs)).astype(bool)
    updates = rng.integers(0, 2, size=(n_states, n_inputs)).astype(bool)
    stable = rng.integers(0, 2, size=n_states).astype(bool)
    before = rng.integers(0, n_states, size=k)
    r = rng.uniform(-1.0, 1.0, size=k)
    threshold = rng.uniform(-1.0, 1.0, size=k)
    lpd_jit = jit.lpd_step(before, r, threshold, 1, 2, next_state, change,
                           updates, stable)
    lpd_ref = ref.lpd_step(before, r, threshold, 1, 2, next_state, change,
                           updates, stable)
    if not all(_bit_equal(a, b) for a, b in zip(lpd_jit, lpd_ref)):
        return False
    inputs = rng.integers(0, n_inputs, size=k)
    fsm_jit = jit.fsm_step(before, inputs, next_state, change)
    fsm_ref = ref.fsm_step(before, inputs, next_state, change)
    if not all(_bit_equal(a, b) for a, b in zip(fsm_jit, fsm_ref)):
        return False
    ratio = np.where(rng.integers(0, 4, size=k) == 0, np.inf,
                     rng.uniform(0.0, 2.0, size=k))
    thin = rng.integers(0, 2, size=k).astype(bool)
    banded = rng.integers(0, 2, size=k).astype(bool)
    ths = [np.full(k, v) for v in (0.2, 0.5, 1.0, 1.5)]
    cls_jit = jit.gpd_classify(ratio, thin, banded, *ths, 0)
    cls_ref = ref.gpd_classify(ratio, thin, banded, *ths, 0)
    return _bit_equal(cls_jit, cls_ref)


def _select() -> tuple[ModuleType, str]:
    """Pick the backend module and record why; never raises."""
    if os.environ.get(ENV_FLAG, "") not in ("", "0"):
        return numpy_backend, f"forced by {ENV_FLAG}"
    try:
        from repro.batch.compiled import numba_backend
    except ImportError:
        return numpy_backend, "numba not installed"
    try:
        if not _probe_matches(numba_backend, numpy_backend):
            return numpy_backend, "probe found a bitwise mismatch"
    except Exception as error:  # a broken JIT must never take down import
        return numpy_backend, f"probe failed: {type(error).__name__}"
    return numba_backend, "numba kernels bit-identical on probe"


_backend, _reason = _select()

pearson_core = _backend.pearson_core
pearson_cached = _backend.pearson_cached
centroid_rows = _backend.centroid_rows
band_stats_rows = _backend.band_stats_rows
lpd_step = _backend.lpd_step
fsm_step = _backend.fsm_step
gpd_classify = _backend.gpd_classify


def kernel_backend() -> str:
    """Name of the backend in force: ``"numba"`` or ``"numpy"``."""
    return _backend.NAME


def selection_reason() -> str:
    """Human-readable account of how the backend was chosen."""
    return _reason
