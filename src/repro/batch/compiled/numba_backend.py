"""Numba-JIT kernel backend: nopython twins of the NumPy reference.

Importing this module requires ``numba``; the package selector
(:mod:`repro.batch.compiled`) only does so when the import succeeds AND
an import-time probe shows every kernel bit-identical to
:mod:`repro.batch.compiled.numpy_backend` on this platform.  The float
kernels therefore replicate NumPy's *exact* reduction order:

* ``_pairwise_sum`` is NumPy's pairwise summation — sequential below 8
  elements, an 8-accumulator unrolled block up to 128, then halved
  recursion with the split rounded down to a multiple of 8;
* means divide the pairwise sum by the row length once, like
  ``np.mean``;
* the standard deviation mirrors ``np.std``'s two-pass form (mean,
  subtract, square, pairwise sum, divide, sqrt).

Everything compiles with ``cache=True`` so CI pays the JIT once, and
``fastmath`` stays off — reassociation is precisely what the
bit-equality contract forbids.
"""

from __future__ import annotations

import numpy as np
from numba import njit

NAME = "numba"

__all__ = ["NAME", "pearson_core", "pearson_cached", "centroid_rows",
           "band_stats_rows", "lpd_step", "fsm_step", "gpd_classify"]

#: NumPy's PW_BLOCKSIZE: the unrolled-block ceiling of pairwise_sum.
_PW_BLOCKSIZE = 128


@njit(cache=True)
def _pairwise_sum(a, lo, n):
    if n < 8:
        res = 0.0
        for i in range(n):
            res += a[lo + i]
        return res
    if n <= _PW_BLOCKSIZE:
        r0 = a[lo]
        r1 = a[lo + 1]
        r2 = a[lo + 2]
        r3 = a[lo + 3]
        r4 = a[lo + 4]
        r5 = a[lo + 5]
        r6 = a[lo + 6]
        r7 = a[lo + 7]
        i = 8
        limit = n - (n % 8)
        while i < limit:
            r0 += a[lo + i]
            r1 += a[lo + i + 1]
            r2 += a[lo + i + 2]
            r3 += a[lo + i + 3]
            r4 += a[lo + i + 4]
            r5 += a[lo + i + 5]
            r6 += a[lo + i + 6]
            r7 += a[lo + i + 7]
            i += 8
        res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
        while i < n:
            res += a[lo + i]
            i += 1
        return res
    n2 = n // 2
    n2 -= n2 % 8
    return _pairwise_sum(a, lo, n2) + _pairwise_sum(a, lo + n2, n - n2)


@njit(cache=True)
def pearson_core(stable, current):
    k, n = stable.shape
    r = np.zeros(k, dtype=np.float64)
    defined = np.zeros(k, dtype=np.bool_)
    scratch = np.empty(n, dtype=np.float64)
    for i in range(k):
        x = stable[i]
        y = current[i]
        sum_x = _pairwise_sum(x, 0, n)
        sum_y = _pairwise_sum(y, 0, n)
        for j in range(n):
            scratch[j] = x[j] * y[j]
        sum_xy = _pairwise_sum(scratch, 0, n)
        for j in range(n):
            scratch[j] = x[j] * x[j]
        sum_x2 = _pairwise_sum(scratch, 0, n)
        for j in range(n):
            scratch[j] = y[j] * y[j]
        sum_y2 = _pairwise_sum(scratch, 0, n)
        var_x = sum_x2 - (sum_x * sum_x) / n
        var_y = sum_y2 - (sum_y * sum_y) / n
        if (np.isfinite(var_x) and np.isfinite(var_y)
                and var_x > 0.0 and var_y > 0.0):
            numerator = sum_xy - (sum_x * sum_y) / n
            raw = numerator / np.sqrt(var_x * var_y)
            r[i] = min(1.0, max(-1.0, raw))
            defined[i] = True
    return r, defined


@njit(cache=True)
def pearson_cached(stable, current, sum_x, sum_x2):
    k, n = stable.shape
    r = np.zeros(k, dtype=np.float64)
    defined = np.zeros(k, dtype=np.bool_)
    sum_y_out = np.empty(k, dtype=np.float64)
    sum_y2_out = np.empty(k, dtype=np.float64)
    scratch = np.empty(n, dtype=np.float64)
    for i in range(k):
        x = stable[i]
        y = current[i]
        x_sum = sum_x[i]
        x_sum2 = sum_x2[i]
        sum_y = _pairwise_sum(y, 0, n)
        for j in range(n):
            scratch[j] = x[j] * y[j]
        sum_xy = _pairwise_sum(scratch, 0, n)
        for j in range(n):
            scratch[j] = y[j] * y[j]
        sum_y2 = _pairwise_sum(scratch, 0, n)
        sum_y_out[i] = sum_y
        sum_y2_out[i] = sum_y2
        var_x = x_sum2 - (x_sum * x_sum) / n
        var_y = sum_y2 - (sum_y * sum_y) / n
        if (np.isfinite(var_x) and np.isfinite(var_y)
                and var_x > 0.0 and var_y > 0.0):
            numerator = sum_xy - (x_sum * sum_y) / n
            raw = numerator / np.sqrt(var_x * var_y)
            r[i] = min(1.0, max(-1.0, raw))
            defined[i] = True
    return r, defined, sum_y_out, sum_y2_out


@njit(cache=True)
def centroid_rows(block):
    k, n = block.shape
    out = np.empty(k, dtype=np.float64)
    scratch = np.empty(n, dtype=np.float64)
    for i in range(k):
        row = block[i]
        for j in range(n):
            scratch[j] = row[j]
        out[i] = _pairwise_sum(scratch, 0, n) / n
    return out


@njit(cache=True)
def band_stats_rows(block):
    k, n = block.shape
    mean = np.empty(k, dtype=np.float64)
    sd = np.empty(k, dtype=np.float64)
    scratch = np.empty(n, dtype=np.float64)
    for i in range(k):
        row = block[i]
        m = _pairwise_sum(row, 0, n) / n
        mean[i] = m
        for j in range(n):
            d = row[j] - m
            scratch[j] = d * d
        sd[i] = np.sqrt(_pairwise_sum(scratch, 0, n) / n)
    return mean, sd


@njit(cache=True)
def lpd_step(before, r, threshold, similar_input, dissimilar_input,
             next_state, phase_change, updates_stable_set, stable):
    k = before.size
    after = np.empty(k, dtype=np.int64)
    changed = np.empty(k, dtype=np.bool_)
    updated = np.empty(k, dtype=np.bool_)
    frozen = np.empty(k, dtype=np.bool_)
    for i in range(k):
        inp = similar_input if r[i] >= threshold[i] else dissimilar_input
        s = before[i]
        nxt = next_state[s, inp]
        after[i] = nxt
        c = phase_change[s, inp]
        changed[i] = c
        updated[i] = updates_stable_set[s, inp]
        frozen[i] = c and stable[nxt]
    return after, changed, updated, frozen


@njit(cache=True)
def fsm_step(before, inputs, next_state, phase_change):
    k = before.size
    after = np.empty(k, dtype=np.int64)
    changed = np.empty(k, dtype=np.bool_)
    for i in range(k):
        s = before[i]
        inp = inputs[i]
        after[i] = next_state[s, inp]
        changed[i] = phase_change[s, inp]
    return after, changed


@njit(cache=True)
def gpd_classify(ratio, thin, banded, th1, th2, th3, th4, no_band_input):
    k = ratio.size
    inputs = np.empty(k, dtype=np.int64)
    for i in range(k):
        if not banded[i]:
            inputs[i] = no_band_input
            continue
        value = ratio[i]
        if value <= th1[i]:
            bucket = 0
        elif value <= th2[i]:
            bucket = 1
        elif value <= th3[i]:
            bucket = 2
        elif value <= th4[i]:
            bucket = 3
        else:
            bucket = 4
        inputs[i] = 1 + 2 * bucket + (0 if thin[i] else 1)
    return inputs
