"""Pure-NumPy kernel backend: the reference implementation.

This module is the *definition* of the kernel contract — the Numba
backend (:mod:`repro.batch.compiled.numba_backend`) must reproduce every
function here bit-for-bit or the package selector refuses to use it.
NumPy reduces float64 rows with pairwise summation whose tree depends
only on the element count (and unit inner stride), so all callers group
rows by exact width and never pad; see :mod:`repro.batch.kernels`.

Every function takes plain ndarrays and returns plain ndarrays — no
Python objects — so the two backends stay drop-in interchangeable.
"""

from __future__ import annotations

import numpy as np

NAME = "numpy"

__all__ = ["NAME", "pearson_core", "pearson_cached", "centroid_rows",
           "band_stats_rows", "lpd_step", "fsm_step", "gpd_classify"]


def pearson_core(stable: np.ndarray, current: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise Pearson r over ``(k, n)`` float64 blocks, ``n >= 2``.

    Returns ``(r, defined)``: where ``defined`` is False (zero or
    non-finite variance on either side) the r entry is 0.0 and the
    caller must resolve the row through the scalar degenerate
    convention.  Defined entries are clamped to [-1, 1].
    """
    k, n = stable.shape
    # inf/nan rows produce nan variances here and route to the
    # degenerate fallback in the caller, so their warnings are noise
    with np.errstate(invalid="ignore", over="ignore", divide="ignore"):
        sum_x = stable.sum(axis=1)
        sum_y = current.sum(axis=1)
        sum_xy = (stable * current).sum(axis=1)
        sum_x2 = (stable * stable).sum(axis=1)
        sum_y2 = (current * current).sum(axis=1)
        var_x = sum_x2 - (sum_x * sum_x) / n
        var_y = sum_y2 - (sum_y * sum_y) / n
        defined = (np.isfinite(var_x) & np.isfinite(var_y)
                   & (var_x > 0.0) & (var_y > 0.0))
        if bool(defined.all()):
            # Hot shape: every row well-conditioned.  Same operation
            # sequence as below, minus the zero-fill and masked copy.
            numerator = sum_xy - (sum_x * sum_y) / n
            r = numerator / np.sqrt(var_x * var_y)
            np.maximum(r, -1.0, out=r)
            np.minimum(r, 1.0, out=r)
            return r, defined
        r = np.zeros(k, dtype=np.float64)
        if defined.any():
            numerator = sum_xy - (sum_x * sum_y) / n
            raw = numerator / np.sqrt(var_x * var_y)
            np.copyto(r, np.minimum(1.0, np.maximum(-1.0, raw)),
                      where=defined)
    return r, defined


def pearson_cached(stable: np.ndarray, current: np.ndarray,
                   sum_x: np.ndarray, sum_x2: np.ndarray
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                              np.ndarray]:
    """:func:`pearson_core` with the stable-side sums precomputed.

    *sum_x* / *sum_x2* must hold exactly what ``stable.sum(axis=1)`` and
    ``(stable * stable).sum(axis=1)`` would produce (the LPD bank caches
    them across intervals, refreshing entries from the current-side sums
    whenever a stable set is replaced — same data, same reduction tree,
    same bits).  Returns ``(r, defined, sum_y, sum_y2)`` so the caller
    can perform exactly that refresh without extra reductions.
    """
    k, n = stable.shape
    with np.errstate(invalid="ignore", over="ignore", divide="ignore"):
        sum_y = current.sum(axis=1)
        sum_xy = (stable * current).sum(axis=1)
        sum_y2 = (current * current).sum(axis=1)
        var_x = sum_x2 - (sum_x * sum_x) / n
        var_y = sum_y2 - (sum_y * sum_y) / n
        defined = (np.isfinite(var_x) & np.isfinite(var_y)
                   & (var_x > 0.0) & (var_y > 0.0))
        if bool(defined.all()):
            numerator = sum_xy - (sum_x * sum_y) / n
            r = numerator / np.sqrt(var_x * var_y)
            np.maximum(r, -1.0, out=r)
            np.minimum(r, 1.0, out=r)
            return r, defined, sum_y, sum_y2
        r = np.zeros(k, dtype=np.float64)
        if defined.any():
            numerator = sum_xy - (sum_x * sum_y) / n
            raw = numerator / np.sqrt(var_x * var_y)
            np.copyto(r, np.minimum(1.0, np.maximum(-1.0, raw)),
                      where=defined)
    return r, defined, sum_y, sum_y2


def centroid_rows(block: np.ndarray) -> np.ndarray:
    """Row means of a ``(k, B)`` block, float64 accumulation.

    Accepts integer or float dtype and any row stride with unit inner
    stride (ring-buffer column slices included): NumPy's cast-and-reduce
    produces the same bits as converting the row first, which
    ``tests/batch/test_kernels.py`` pins against the scalar centroid.
    """
    return block.mean(axis=1)


def band_stats_rows(block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Population (mean, std) per row of an equal-fill float64 block."""
    return block.mean(axis=1), block.std(axis=1)


def lpd_step(before: np.ndarray, r: np.ndarray, threshold: np.ndarray,
             similar_input: int, dissimilar_input: int,
             next_state: np.ndarray, phase_change: np.ndarray,
             updates_stable_set: np.ndarray, stable: np.ndarray
             ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One fused LPD transition per row: classify r, step the tables.

    Returns ``(after, changed, updated, frozen)`` — successor states,
    phase-change flags, stable-set-update flags and the froze-this-step
    flags (``changed & stable[after]``).
    """
    inputs = np.where(r >= threshold, similar_input, dissimilar_input)
    after = next_state[before, inputs]
    changed = phase_change[before, inputs]
    updated = updates_stable_set[before, inputs]
    frozen = changed & stable[after]
    return after, changed, updated, frozen


def fsm_step(before: np.ndarray, inputs: np.ndarray,
             next_state: np.ndarray, phase_change: np.ndarray
             ) -> tuple[np.ndarray, np.ndarray]:
    """Generic table step: ``(after, changed)`` for precomputed inputs."""
    return next_state[before, inputs], phase_change[before, inputs]


def gpd_classify(ratio: np.ndarray, thin: np.ndarray, banded: np.ndarray,
                 th1: np.ndarray, th2: np.ndarray, th3: np.ndarray,
                 th4: np.ndarray, no_band_input: int) -> np.ndarray:
    """Map drift ratios to GPD input-class indices.

    Implements the paper's bucket scheme: five drift buckets split by
    TH1..TH4, each doubled by the thin/thick band flag, plus the
    ``no_band`` class for rows without two retained centroids.  Input
    indices follow the spec's input ordering (``no_band`` first, then
    bucket-major thin/thick pairs).
    """
    bucket = np.full(ratio.size, 4, dtype=np.int64)
    bucket[ratio <= th4] = 3
    bucket[ratio <= th3] = 2
    bucket[ratio <= th2] = 1
    bucket[ratio <= th1] = 0
    inputs = 1 + 2 * bucket + np.where(thin, 0, 1)
    inputs[~banded] = no_band_input
    return inputs
