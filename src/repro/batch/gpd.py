"""Batched global phase detection: many GPD streams in lockstep.

A :class:`BatchGpdBank` keeps N ``GlobalPhaseDetector``-equivalent rows:
an integer state vector stepped through tables compiled from
:func:`~repro.core.states.gpd_machine_spec` (the dwell timer expanded
into explicit ``less_stable@k`` states, exactly as the model checker
verifies), a shared ``(N, history_length)`` centroid-history matrix kept
oldest-first, and per-row threshold columns.  Band statistics are
computed by grouping rows on their exact history fill count — no padding
— so every mean/std reduces through the same pairwise tree as the
scalar ``CentroidHistory.band()`` (see :mod:`repro.batch.kernels`).

The fleet fast path is :meth:`BatchGpdBank.observe_block`: a pinned
:class:`GpdRowGroup` (contiguous handles become slices) consumes a
``(k, B)`` sample block — typically a zero-copy ring-buffer view from
:mod:`repro.batch.rings` — computing centroids without materializing a
converted copy, and in the steady state (every history full) one dense
band-stats call and one fused classify-and-step cover the whole fleet.

Each row is exposed as a :class:`BatchGlobalPhaseDetector` view that
mirrors the scalar detector's read surface; ``tests/batch/`` proves the
two bit-identical on states, phase-change indices and drift ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.batch import compiled
from repro.batch.indexing import as_slice
from repro.batch.kernels import batched_band_stats, batched_centroid
from repro.batch.tables import CompiledMachine, compile_machine
from repro.core.centroid import BandOfStability
from repro.core.gpd import GpdObservation
from repro.core.states import (PhaseEvent, PhaseEventKind, PhaseState,
                               gpd_machine_spec)
from repro.core.thresholds import GpdThresholds
from repro.errors import ConfigError
from repro.telemetry.bus import EventBus, get_bus
from repro.telemetry.events import NO_REGION, PhaseChange, StateTransition

__all__ = ["BatchGpdBank", "BatchGlobalPhaseDetector", "GpdRowGroup"]

_MIN_CAPACITY = 16


@dataclass
class _StepRecord:
    """Compact log of one bank step (lazy ``observations``)."""

    handles: np.ndarray
    interval_indices: np.ndarray
    centroids: np.ndarray
    had_band: np.ndarray
    expectations: np.ndarray
    sds: np.ndarray
    ratios: np.ndarray
    states: np.ndarray
    events: dict[int, PhaseEvent] = field(default_factory=dict)


class GpdRowGroup:
    """A pinned GPD population; contiguous handles index by slice."""

    __slots__ = ("k", "handles", "index")

    def __init__(self, handles: np.ndarray,
                 index: slice | np.ndarray) -> None:
        self.k = handles.size
        self.handles = handles
        self.index = index  # slice | int64 array (bank columns)

    @property
    def coalesced(self) -> bool:
        """Whether bank columns are addressed by one slice."""
        return isinstance(self.index, slice)


class BatchGpdBank:
    """Vectorized storage and stepping for many global phase detectors.

    All rows share ``dwell_intervals`` (it shapes the compiled machine)
    and ``history_length`` (it shapes the history matrix); the numeric
    thresholds TH1..TH4, the thickness divisor and the starvation floor
    are per-row columns.
    """

    def __init__(self, dwell_intervals: int = 2,
                 history_length: int = 8) -> None:
        self.dwell_intervals = dwell_intervals
        self.history_length = history_length
        self.machine: CompiledMachine = compile_machine(
            gpd_machine_spec(dwell_intervals))
        self._stable_vec = self.machine.stable
        self._input_no_band = self.machine.input_index["no_band"]
        self._n = 0
        capacity = _MIN_CAPACITY
        self._state = np.full(capacity, self.machine.initial, dtype=np.int64)
        self._interval = np.full(capacity, -1, dtype=np.int64)
        self._hist = np.zeros((capacity, history_length), dtype=np.float64)
        self._hist_n = np.zeros(capacity, dtype=np.int64)
        self._th1 = np.zeros(capacity, dtype=np.float64)
        self._th2 = np.zeros(capacity, dtype=np.float64)
        self._th3 = np.zeros(capacity, dtype=np.float64)
        self._th4 = np.zeros(capacity, dtype=np.float64)
        self._divisor = np.zeros(capacity, dtype=np.float64)
        self._min_buffer = np.zeros(capacity, dtype=np.int64)
        self._stable_obs = np.zeros(capacity, dtype=np.int64)
        self._buses: list[EventBus] = []
        self._thresholds: list[GpdThresholds] = []
        self._events: list[list[PhaseEvent]] = []
        self._observations: list[list[GpdObservation]] = []
        self._distinct_buses: list[EventBus] = []
        self._log: list[_StepRecord] = []
        self._materialized_logs = 0

    def __len__(self) -> int:
        return self._n

    def _reserve(self, capacity: int) -> None:
        if capacity <= self._state.size:
            return
        size = self._state.size
        while size < capacity:
            size *= 2
        for name in ("_state", "_interval", "_hist_n", "_th1", "_th2",
                     "_th3", "_th4", "_divisor", "_min_buffer",
                     "_stable_obs"):
            old = getattr(self, name)
            grown = np.zeros(size, dtype=old.dtype)
            grown[:self._n] = old[:self._n]
            setattr(self, name, grown)
        self._state[self._n:] = self.machine.initial
        self._interval[self._n:] = -1
        hist = np.zeros((size, self.history_length), dtype=np.float64)
        hist[:self._n] = self._hist[:self._n]
        self._hist = hist

    def _check_thresholds(self, thresholds: GpdThresholds) -> GpdThresholds:
        if thresholds.dwell_intervals != self.dwell_intervals:
            raise ConfigError(
                f"bank compiled for dwell_intervals="
                f"{self.dwell_intervals}, got {thresholds.dwell_intervals}")
        if thresholds.history_length != self.history_length:
            raise ConfigError(
                f"bank sized for history_length={self.history_length}, "
                f"got {thresholds.history_length}")
        return thresholds

    def _init_row(self, handle: int, thresholds: GpdThresholds,
                  bus: EventBus) -> None:
        self._state[handle] = self.machine.initial
        self._interval[handle] = -1
        self._hist_n[handle] = 0
        self._th1[handle] = thresholds.th1
        self._th2[handle] = thresholds.th2
        self._th3[handle] = thresholds.th3
        self._th4[handle] = thresholds.th4
        self._divisor[handle] = thresholds.thickness_divisor
        self._min_buffer[handle] = thresholds.min_buffer_samples
        self._stable_obs[handle] = 0
        self._buses.append(bus)
        if not any(bus is seen for seen in self._distinct_buses):
            self._distinct_buses.append(bus)
        self._thresholds.append(thresholds)
        self._events.append([])
        self._observations.append([])

    def add_detector(self, thresholds: GpdThresholds | None = None,
                     telemetry: EventBus | None = None
                     ) -> "BatchGlobalPhaseDetector":
        """Allocate one detector row; returns its scalar-compatible view."""
        thresholds = self._check_thresholds(thresholds or GpdThresholds())
        bus = telemetry if telemetry is not None else get_bus()
        self._reserve(self._n + 1)
        handle = self._n
        self._n += 1
        self._init_row(handle, thresholds, bus)
        return BatchGlobalPhaseDetector(self, handle)

    def add_detectors(self, count: int,
                      thresholds: GpdThresholds | None = None,
                      telemetry: EventBus | None = None
                      ) -> list["BatchGlobalPhaseDetector"]:
        """Allocate *count* rows with contiguous handles (fleet path)."""
        if count < 0:
            raise ValueError(f"cannot allocate {count} detector rows")
        thresholds = self._check_thresholds(thresholds or GpdThresholds())
        bus = telemetry if telemetry is not None else get_bus()
        self._reserve(self._n + count)
        start = self._n
        self._n = start + count
        sel = slice(start, start + count)
        self._state[sel] = self.machine.initial
        self._interval[sel] = -1
        self._hist_n[sel] = 0
        self._th1[sel] = thresholds.th1
        self._th2[sel] = thresholds.th2
        self._th3[sel] = thresholds.th3
        self._th4[sel] = thresholds.th4
        self._divisor[sel] = thresholds.thickness_divisor
        self._min_buffer[sel] = thresholds.min_buffer_samples
        self._stable_obs[sel] = 0
        self._buses.extend([bus] * count)
        if not any(bus is seen for seen in self._distinct_buses):
            self._distinct_buses.append(bus)
        self._thresholds.extend([thresholds] * count)
        self._events.extend([] for _ in range(count))
        self._observations.extend([] for _ in range(count))
        return [BatchGlobalPhaseDetector(self, handle)
                for handle in range(start, start + count)]

    def make_group(self, views: list) -> GpdRowGroup:
        """Pin *views* into a reusable row group for block stepping."""
        handles = np.fromiter((view._handle for view in views),
                              dtype=np.int64, count=len(views))
        index = as_slice(handles)
        return GpdRowGroup(handles, index if index is not None else handles)

    def telemetry_live(self) -> bool:
        """Whether any bus attached to this bank is currently enabled."""
        return any(bus.enabled for bus in self._distinct_buses)

    # -- the vectorized step ---------------------------------------------------

    def observe_buffers(self, items: list) -> list[PhaseEvent | None]:
        """Process one full sample buffer per row, in lockstep.

        *items* is ``[(view, pcs_1d_array), ...]``; buffers below a row's
        ``min_buffer_samples`` take the starved hold, the rest go through
        a batched centroid.  All non-starved buffers must share one
        length (sessions deliver fixed-size intervals); mixed lengths
        fall back to per-row centroids, which are bit-identical anyway.
        """
        values = np.full(len(items), np.nan, dtype=np.float64)
        live: list[int] = []
        buffers = []
        for position, (view, pcs) in enumerate(items):
            buffer = np.asarray(pcs)
            if buffer.size < self._min_buffer[view._handle]:
                continue  # starved: NaN routes to the held path below
            live.append(position)
            buffers.append(buffer)
        if buffers:
            lengths = {b.size for b in buffers}
            if len(lengths) == 1:
                values[live] = batched_centroid(np.stack(buffers))
            else:
                for position, buffer in zip(live, buffers):
                    values[position] = batched_centroid(
                        buffer[np.newaxis, :])[0]
        starved = np.ones(len(items), dtype=bool)
        starved[live] = False
        return self.observe_centroids([view for view, _ in items], values,
                                      starved_mask=starved)

    def observe_block(self, group: GpdRowGroup,
                      block: np.ndarray) -> list[PhaseEvent | None]:
        """Advance a pinned group from one ``(k, B)`` sample block.

        The fleet fast path: *block* holds one full interval buffer per
        group row — typically a zero-copy column slice of a
        :class:`~repro.batch.rings.ShardRing` — and centroids accumulate
        straight off the (integer) view, bit-identical to the scalar
        conversion.  Rows whose ``min_buffer_samples`` exceeds ``B``
        take the starved hold, exactly as in :meth:`observe_buffers`.
        """
        if block.ndim != 2 or block.shape[0] != group.k:
            raise ValueError(
                f"sample block shape {block.shape} does not match "
                f"group of {group.k} rows")
        starved = self._min_buffer[group.index] > block.shape[1]
        values = batched_centroid(block)
        if starved.any():
            values = np.where(starved, np.nan, values)
        return self._advance_centroids(group.handles, group, values,
                                       starved if starved.any() else None)

    def observe_centroids(self, views: list, values: np.ndarray,
                          starved_mask: np.ndarray | None = None
                          ) -> list[PhaseEvent | None]:
        """Advance one interval per row given precomputed centroids.

        A non-finite centroid — or a ``starved_mask`` entry — takes the
        scalar's insufficient-data path: the interval is counted, state
        and history hold.  Each row may appear at most once per call.
        """
        values = np.asarray(values, dtype=np.float64)
        handles = np.fromiter((view._handle for view in views),
                              dtype=np.int64, count=len(views))
        return self._advance_centroids(handles, None, values, starved_mask)

    def _advance_centroids(self, handles: np.ndarray,
                           group: GpdRowGroup | None, values: np.ndarray,
                           starved_mask: np.ndarray | None
                           ) -> list[PhaseEvent | None]:
        k = handles.size
        index = group.index if group is not None else handles
        telemetry_live = self.telemetry_live()
        live = np.isfinite(values)
        if starved_mask is not None:
            live &= ~starved_mask
        self._interval[index] += 1
        indices = self._interval[index]
        before_all = self._state[index].copy() if telemetry_live else None
        results: list[PhaseEvent | None] = [None] * k

        expectations = np.zeros(k, dtype=np.float64)
        sds = np.zeros(k, dtype=np.float64)
        had_band = np.zeros(k, dtype=bool)
        ratios = np.full(k, np.inf, dtype=np.float64)

        if live.any():
            if bool(live.all()) and group is not None:
                live_positions = None
                live_index = group.index
                live_handles = handles
                live_values = values
            else:
                live_positions = np.flatnonzero(live)
                live_handles = handles[live_positions]
                live_index = live_handles
                live_values = values[live_positions]
            fills = self._hist_n[live_index]
            banded = fills >= 2
            history = self.history_length
            steady = history >= 2 and bool(np.all(fills == history))
            if steady:
                # Steady state: every history full -> one dense view.
                expectation, sd = batched_band_stats(self._hist[live_index])
                if live_positions is None:
                    expectations[:] = expectation
                    sds[:] = sd
                    had_band[:] = True
                else:
                    expectations[live_positions] = expectation
                    sds[live_positions] = sd
                    had_band[live_positions] = True
                E, SD = expectation, sd
            else:
                # Band statistics, grouped by exact history fill count.
                for fill in np.unique(fills[banded]):
                    sel = fills == fill
                    block = self._hist[live_handles[sel], :fill]
                    expectation, sd = batched_band_stats(block)
                    if live_positions is None:
                        expectations[sel] = expectation
                        sds[sel] = sd
                    else:
                        expectations[live_positions[sel]] = expectation
                        sds[live_positions[sel]] = sd
                if live_positions is None:
                    had_band[:] = banded
                    E = expectations
                    SD = sds
                else:
                    had_band[live_positions] = banded
                    E = expectations[live_positions]
                    SD = sds[live_positions]

            lower = E - SD
            upper = E + SD
            delta = np.where(
                live_values < lower, lower - live_values,
                np.where(live_values > upper, live_values - upper, 0.0))
            with np.errstate(divide="ignore", invalid="ignore"):
                raw_ratio = delta / E
            ratio = np.where(E > 0.0, raw_ratio,
                             np.where(delta > 0.0, np.inf, 0.0))
            if not steady:
                ratio = np.where(banded, ratio, np.inf)
            if live_positions is None:
                ratios[:] = ratio
            else:
                ratios[live_positions] = ratio

            thin = SD < E / self._divisor[live_index]
            machine = self.machine
            inputs = compiled.gpd_classify(
                ratio, thin, banded, self._th1[live_index],
                self._th2[live_index], self._th3[live_index],
                self._th4[live_index], self._input_no_band)
            before = self._state[live_index]
            if isinstance(live_index, slice):
                before = before.copy()  # the write below must not alias it
            after, changed = compiled.fsm_step(
                before, inputs, machine.next_state, machine.phase_change)
            self._state[live_index] = after
            self._stable_obs[live_index] += self._stable_vec[after]

            # Push the centroid (after the band was computed, like the
            # scalar: the current interval joins the history for next time).
            if steady:
                # Full everywhere: shift left, append. The overlapping
                # slice assignment is safe (NumPy buffers on overlap).
                self._hist[live_index, :-1] = self._hist[live_index, 1:]
                self._hist[live_index, -1] = live_values
            else:
                fill_room = fills < history
                if fill_room.any():
                    grow_handles = live_handles[fill_room]
                    self._hist[grow_handles, fills[fill_room]] = \
                        live_values[fill_room]
                    self._hist_n[grow_handles] += 1
                full = ~fill_room
                if full.any():
                    full_handles = live_handles[full]
                    self._hist[full_handles, :-1] = \
                        self._hist[full_handles, 1:]
                    self._hist[full_handles, -1] = live_values[full]

            changed_rows = np.flatnonzero(changed)
            if changed_rows.size:
                phase_states = machine.phase_states
                for j in changed_rows:
                    position = (int(j) if live_positions is None
                                else int(live_positions[j]))
                    handle = int(live_handles[j])
                    stable_after = bool(self._stable_vec[after[j]])
                    event = PhaseEvent(
                        interval_index=int(indices[position]),
                        kind=(PhaseEventKind.BECAME_STABLE if stable_after
                              else PhaseEventKind.BECAME_UNSTABLE),
                        state_from=phase_states[int(before[j])],
                        state_to=phase_states[int(after[j])],
                        detail=f"drift_ratio={float(ratio[j]):.4g}")
                    results[position] = event
                    self._events[handle].append(event)

        if not bool(live.all()):
            starved_handles = handles[~live]
            self._stable_obs[starved_handles] += \
                self._stable_vec[self._state[starved_handles]]

        self._log.append(_StepRecord(
            handles=handles,
            interval_indices=np.asarray(indices).copy(),
            centroids=np.where(live, values, np.nan),
            had_band=had_band,
            expectations=expectations,
            sds=sds,
            ratios=ratios,
            states=self._state[handles],
            events={p: e for p, e in enumerate(results) if e is not None}))

        if telemetry_live:
            self._emit_telemetry(handles, indices, live, before_all,
                                 ratios, results)
        return results

    # -- telemetry replay (cold path) ------------------------------------------

    def _emit_telemetry(self, handles: np.ndarray, indices: np.ndarray,
                        live: np.ndarray, before_all: np.ndarray,
                        ratios: np.ndarray, results: list) -> None:
        record = self._log[-1]
        phase_states = self.machine.phase_states
        for position in range(handles.size):
            if not live[position]:
                continue  # the scalar's starved path emits nothing
            handle = int(handles[position])
            bus = self._buses[handle]
            if not bus.enabled:
                continue
            index = int(indices[position])
            ratio = float(ratios[position])
            state_from = phase_states[int(before_all[position])].value
            state_to = phase_states[int(record.states[position])].value
            event = results[position]
            metric = ratio if np.isfinite(ratio) else -1.0
            bus.emit(StateTransition(
                interval_index=index, detector="gpd", rid=NO_REGION,
                state_from=state_from, state_to=state_to, metric=metric))
            if event is not None:
                bus.emit(PhaseChange(
                    interval_index=index, detector="gpd", rid=NO_REGION,
                    kind=event.kind.value, state_from=state_from,
                    state_to=state_to, detail=event.detail))

    # -- lazy observation materialization --------------------------------------

    def materialize_observations(self) -> None:
        """Expand pending step records into per-row observation lists."""
        phase_states = self.machine.phase_states
        for record in self._log[self._materialized_logs:]:
            for position in range(record.handles.size):
                handle = int(record.handles[position])
                band = None
                if record.had_band[position]:
                    band = BandOfStability(
                        expectation=float(record.expectations[position]),
                        sd=float(record.sds[position]))
                self._observations[handle].append(GpdObservation(
                    interval_index=int(record.interval_indices[position]),
                    centroid_value=float(record.centroids[position]),
                    band=band,
                    drift_ratio=float(record.ratios[position]),
                    state=phase_states[int(record.states[position])],
                    event=record.events.get(position)))
        self._materialized_logs = len(self._log)

    def discard_observation_history(self) -> None:
        """Drop pending step records without materializing them.

        See :meth:`BatchLpdBank.discard_observation_history` — same
        contract: bounded state for event-only consumers, at the price
        of observation history before the discard.
        """
        self._log.clear()
        self._materialized_logs = 0


class BatchGlobalPhaseDetector:
    """Scalar-compatible view of one :class:`BatchGpdBank` row."""

    __slots__ = ("_bank", "_handle")

    def __init__(self, bank: BatchGpdBank, handle: int) -> None:
        self._bank = bank
        self._handle = handle

    @property
    def thresholds(self) -> GpdThresholds:
        return self._bank._thresholds[self._handle]

    @property
    def state(self) -> PhaseState:
        """Current machine state."""
        return self._bank.machine.phase_states[
            int(self._bank._state[self._handle])]

    @property
    def in_stable_phase(self) -> bool:
        """Whether the detector currently declares a stable phase."""
        return bool(self._bank._stable_vec[
            int(self._bank._state[self._handle])])

    @property
    def intervals_seen(self) -> int:
        """Number of intervals processed so far."""
        return int(self._bank._interval[self._handle]) + 1

    @property
    def events(self) -> list[PhaseEvent]:
        """Phase changes emitted so far (live list, like the scalar's)."""
        return self._bank._events[self._handle]

    @property
    def observations(self) -> list[GpdObservation]:
        """Per-interval records, materialized from the bank's step log."""
        self._bank.materialize_observations()
        return self._bank._observations[self._handle]

    def observe_buffer(self, pcs: np.ndarray) -> PhaseEvent | None:
        """Process one full sample buffer (single-row batch)."""
        return self._bank.observe_buffers([(self, pcs)])[0]

    def observe_centroid(self, value: float) -> PhaseEvent | None:
        """Process one interval given its precomputed centroid."""
        return self._bank.observe_centroids(
            [self], np.asarray([value], dtype=np.float64))[0]

    def stable_interval_count(self) -> int:
        """Processed intervals that ended in a declared-stable phase."""
        return int(self._bank._stable_obs[self._handle])

    def stable_time_fraction(self) -> float:
        """Fraction of intervals spent in a declared-stable phase."""
        seen = self.intervals_seen
        if seen == 0:
            return 0.0
        return self.stable_interval_count() / seen
