"""Batched global phase detection: many GPD streams in lockstep.

A :class:`BatchGpdBank` keeps N ``GlobalPhaseDetector``-equivalent rows:
an integer state vector stepped through tables compiled from
:func:`~repro.core.states.gpd_machine_spec` (the dwell timer expanded
into explicit ``less_stable@k`` states, exactly as the model checker
verifies), a shared ``(N, history_length)`` centroid-history matrix kept
oldest-first, and per-row threshold columns.  Band statistics are
computed by grouping rows on their exact history fill count — no padding
— so every mean/std reduces through the same pairwise tree as the
scalar ``CentroidHistory.band()`` (see :mod:`repro.batch.kernels`).

Each row is exposed as a :class:`BatchGlobalPhaseDetector` view that
mirrors the scalar detector's read surface; ``tests/batch/`` proves the
two bit-identical on states, phase-change indices and drift ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.batch.kernels import batched_band_stats, batched_centroid
from repro.batch.tables import CompiledMachine, compile_machine
from repro.core.centroid import BandOfStability
from repro.core.gpd import GpdObservation
from repro.core.states import (PhaseEvent, PhaseEventKind, PhaseState,
                               gpd_machine_spec)
from repro.core.thresholds import GpdThresholds
from repro.errors import ConfigError
from repro.telemetry.bus import EventBus, get_bus
from repro.telemetry.events import NO_REGION, PhaseChange, StateTransition

__all__ = ["BatchGpdBank", "BatchGlobalPhaseDetector"]

_MIN_CAPACITY = 16


@dataclass
class _StepRecord:
    """Compact log of one bank step (lazy ``observations``)."""

    handles: np.ndarray
    interval_indices: np.ndarray
    centroids: np.ndarray
    had_band: np.ndarray
    expectations: np.ndarray
    sds: np.ndarray
    ratios: np.ndarray
    states: np.ndarray
    events: dict[int, PhaseEvent] = field(default_factory=dict)


class BatchGpdBank:
    """Vectorized storage and stepping for many global phase detectors.

    All rows share ``dwell_intervals`` (it shapes the compiled machine)
    and ``history_length`` (it shapes the history matrix); the numeric
    thresholds TH1..TH4, the thickness divisor and the starvation floor
    are per-row columns.
    """

    def __init__(self, dwell_intervals: int = 2,
                 history_length: int = 8) -> None:
        self.dwell_intervals = dwell_intervals
        self.history_length = history_length
        self.machine: CompiledMachine = compile_machine(
            gpd_machine_spec(dwell_intervals))
        self._stable_vec = self.machine.stable
        self._input_no_band = self.machine.input_index["no_band"]
        self._n = 0
        capacity = _MIN_CAPACITY
        self._state = np.full(capacity, self.machine.initial, dtype=np.int64)
        self._interval = np.full(capacity, -1, dtype=np.int64)
        self._hist = np.zeros((capacity, history_length), dtype=np.float64)
        self._hist_n = np.zeros(capacity, dtype=np.int64)
        self._th1 = np.zeros(capacity, dtype=np.float64)
        self._th2 = np.zeros(capacity, dtype=np.float64)
        self._th3 = np.zeros(capacity, dtype=np.float64)
        self._th4 = np.zeros(capacity, dtype=np.float64)
        self._divisor = np.zeros(capacity, dtype=np.float64)
        self._min_buffer = np.zeros(capacity, dtype=np.int64)
        self._stable_obs = np.zeros(capacity, dtype=np.int64)
        self._buses: list[EventBus] = []
        self._thresholds: list[GpdThresholds] = []
        self._events: list[list[PhaseEvent]] = []
        self._observations: list[list[GpdObservation]] = []
        self._distinct_buses: list[EventBus] = []
        self._log: list[_StepRecord] = []
        self._materialized_logs = 0

    def __len__(self) -> int:
        return self._n

    def _grow(self) -> None:
        capacity = self._state.size * 2
        for name in ("_state", "_interval", "_hist_n", "_th1", "_th2",
                     "_th3", "_th4", "_divisor", "_min_buffer",
                     "_stable_obs"):
            old = getattr(self, name)
            grown = np.zeros(capacity, dtype=old.dtype)
            grown[:self._n] = old[:self._n]
            setattr(self, name, grown)
        self._state[self._n:] = self.machine.initial
        self._interval[self._n:] = -1
        hist = np.zeros((capacity, self.history_length), dtype=np.float64)
        hist[:self._n] = self._hist[:self._n]
        self._hist = hist

    def add_detector(self, thresholds: GpdThresholds | None = None,
                     telemetry: EventBus | None = None
                     ) -> "BatchGlobalPhaseDetector":
        """Allocate one detector row; returns its scalar-compatible view."""
        thresholds = thresholds or GpdThresholds()
        if thresholds.dwell_intervals != self.dwell_intervals:
            raise ConfigError(
                f"bank compiled for dwell_intervals="
                f"{self.dwell_intervals}, got {thresholds.dwell_intervals}")
        if thresholds.history_length != self.history_length:
            raise ConfigError(
                f"bank sized for history_length={self.history_length}, "
                f"got {thresholds.history_length}")
        bus = telemetry if telemetry is not None else get_bus()
        if self._n == self._state.size:
            self._grow()
        handle = self._n
        self._n += 1
        self._state[handle] = self.machine.initial
        self._interval[handle] = -1
        self._hist_n[handle] = 0
        self._th1[handle] = thresholds.th1
        self._th2[handle] = thresholds.th2
        self._th3[handle] = thresholds.th3
        self._th4[handle] = thresholds.th4
        self._divisor[handle] = thresholds.thickness_divisor
        self._min_buffer[handle] = thresholds.min_buffer_samples
        self._stable_obs[handle] = 0
        self._buses.append(bus)
        if not any(bus is seen for seen in self._distinct_buses):
            self._distinct_buses.append(bus)
        self._thresholds.append(thresholds)
        self._events.append([])
        self._observations.append([])
        return BatchGlobalPhaseDetector(self, handle)

    # -- the vectorized step ---------------------------------------------------

    def observe_buffers(self, items: list) -> list[PhaseEvent | None]:
        """Process one full sample buffer per row, in lockstep.

        *items* is ``[(view, pcs_1d_array), ...]``; buffers below a row's
        ``min_buffer_samples`` take the starved hold, the rest go through
        a batched centroid.  All non-starved buffers must share one
        length (sessions deliver fixed-size intervals); mixed lengths
        fall back to per-row centroids, which are bit-identical anyway.
        """
        values = np.full(len(items), np.nan, dtype=np.float64)
        live: list[int] = []
        buffers = []
        for position, (view, pcs) in enumerate(items):
            buffer = np.asarray(pcs)
            if buffer.size < self._min_buffer[view._handle]:
                continue  # starved: NaN routes to the held path below
            live.append(position)
            buffers.append(buffer)
        if buffers:
            lengths = {b.size for b in buffers}
            if len(lengths) == 1:
                values[live] = batched_centroid(np.stack(buffers))
            else:
                for position, buffer in zip(live, buffers):
                    values[position] = batched_centroid(
                        buffer[np.newaxis, :])[0]
        starved = np.ones(len(items), dtype=bool)
        starved[live] = False
        return self.observe_centroids([view for view, _ in items], values,
                                      starved_mask=starved)

    def observe_centroids(self, views: list, values: np.ndarray,
                          starved_mask: np.ndarray | None = None
                          ) -> list[PhaseEvent | None]:
        """Advance one interval per row given precomputed centroids.

        A non-finite centroid — or a ``starved_mask`` entry — takes the
        scalar's insufficient-data path: the interval is counted, state
        and history hold.  Each row may appear at most once per call.
        """
        k = len(views)
        values = np.asarray(values, dtype=np.float64)
        handles = np.fromiter((view._handle for view in views),
                              dtype=np.int64, count=k)
        live = np.isfinite(values)
        if starved_mask is not None:
            live &= ~starved_mask
        self._interval[handles] += 1
        indices = self._interval[handles]
        before_all = self._state[handles].copy()
        results: list[PhaseEvent | None] = [None] * k

        expectations = np.zeros(k, dtype=np.float64)
        sds = np.zeros(k, dtype=np.float64)
        had_band = np.zeros(k, dtype=bool)
        ratios = np.full(k, np.inf, dtype=np.float64)

        if live.any():
            live_positions = np.flatnonzero(live)
            live_handles = handles[live_positions]
            live_values = values[live_positions]
            fills = self._hist_n[live_handles]
            banded = fills >= 2
            # Band statistics, grouped by exact history fill count.
            for fill in np.unique(fills[banded]):
                sel = fills == fill
                block = self._hist[live_handles[sel], :fill]
                expectation, sd = batched_band_stats(block)
                expectations[live_positions[sel]] = expectation
                sds[live_positions[sel]] = sd
            had_band[live_positions] = banded

            E = expectations[live_positions]
            SD = sds[live_positions]
            lower = E - SD
            upper = E + SD
            delta = np.where(
                live_values < lower, lower - live_values,
                np.where(live_values > upper, live_values - upper, 0.0))
            with np.errstate(divide="ignore", invalid="ignore"):
                raw_ratio = delta / E
            ratio = np.where(E > 0.0, raw_ratio,
                             np.where(delta > 0.0, np.inf, 0.0))
            ratio = np.where(banded, ratio, np.inf)
            ratios[live_positions] = ratio

            thin = SD < E / self._divisor[live_handles]
            bucket = np.full(live_handles.size, 4, dtype=np.int64)
            bucket[ratio <= self._th4[live_handles]] = 3
            bucket[ratio <= self._th3[live_handles]] = 2
            bucket[ratio <= self._th2[live_handles]] = 1
            bucket[ratio <= self._th1[live_handles]] = 0
            inputs = 1 + 2 * bucket + np.where(thin, 0, 1)
            inputs[~banded] = self._input_no_band

            before = self._state[live_handles]
            after = self.machine.next_state[before, inputs]
            changed = self.machine.phase_change[before, inputs]
            self._state[live_handles] = after
            self._stable_obs[live_handles] += self._stable_vec[after]

            # Push the centroid (after the band was computed, like the
            # scalar: the current interval joins the history for next time).
            fill_room = fills < self.history_length
            if fill_room.any():
                grow_handles = live_handles[fill_room]
                self._hist[grow_handles, fills[fill_room]] = \
                    live_values[fill_room]
                self._hist_n[grow_handles] += 1
            full = ~fill_room
            if full.any():
                full_handles = live_handles[full]
                self._hist[full_handles, :-1] = self._hist[full_handles, 1:]
                self._hist[full_handles, -1] = live_values[full]

            phase_states = self.machine.phase_states
            for j in np.flatnonzero(changed):
                position = int(live_positions[j])
                handle = int(live_handles[j])
                stable_after = bool(self._stable_vec[after[j]])
                event = PhaseEvent(
                    interval_index=int(indices[position]),
                    kind=(PhaseEventKind.BECAME_STABLE if stable_after
                          else PhaseEventKind.BECAME_UNSTABLE),
                    state_from=phase_states[int(before[j])],
                    state_to=phase_states[int(after[j])],
                    detail=f"drift_ratio={float(ratio[j]):.4g}")
                results[position] = event
                self._events[handle].append(event)

        starved_positions = np.flatnonzero(~live)
        if starved_positions.size:
            starved_handles = handles[starved_positions]
            self._stable_obs[starved_handles] += \
                self._stable_vec[self._state[starved_handles]]

        self._log.append(_StepRecord(
            handles=handles,
            interval_indices=indices.copy(),
            centroids=np.where(live, values, np.nan),
            had_band=had_band,
            expectations=expectations,
            sds=sds,
            ratios=ratios,
            states=self._state[handles],
            events={p: e for p, e in enumerate(results) if e is not None}))

        if any(bus.enabled for bus in self._distinct_buses):
            self._emit_telemetry(handles, indices, live, before_all,
                                 ratios, results)
        return results

    # -- telemetry replay (cold path) ------------------------------------------

    def _emit_telemetry(self, handles, indices, live, before_all, ratios,
                        results) -> None:
        record = self._log[-1]
        phase_states = self.machine.phase_states
        for position in range(handles.size):
            if not live[position]:
                continue  # the scalar's starved path emits nothing
            handle = int(handles[position])
            bus = self._buses[handle]
            if not bus.enabled:
                continue
            index = int(indices[position])
            ratio = float(ratios[position])
            state_from = phase_states[int(before_all[position])].value
            state_to = phase_states[int(record.states[position])].value
            event = results[position]
            metric = ratio if np.isfinite(ratio) else -1.0
            bus.emit(StateTransition(
                interval_index=index, detector="gpd", rid=NO_REGION,
                state_from=state_from, state_to=state_to, metric=metric))
            if event is not None:
                bus.emit(PhaseChange(
                    interval_index=index, detector="gpd", rid=NO_REGION,
                    kind=event.kind.value, state_from=state_from,
                    state_to=state_to, detail=event.detail))

    # -- lazy observation materialization --------------------------------------

    def materialize_observations(self) -> None:
        """Expand pending step records into per-row observation lists."""
        phase_states = self.machine.phase_states
        for record in self._log[self._materialized_logs:]:
            for position in range(record.handles.size):
                handle = int(record.handles[position])
                band = None
                if record.had_band[position]:
                    band = BandOfStability(
                        expectation=float(record.expectations[position]),
                        sd=float(record.sds[position]))
                self._observations[handle].append(GpdObservation(
                    interval_index=int(record.interval_indices[position]),
                    centroid_value=float(record.centroids[position]),
                    band=band,
                    drift_ratio=float(record.ratios[position]),
                    state=phase_states[int(record.states[position])],
                    event=record.events.get(position)))
        self._materialized_logs = len(self._log)


class BatchGlobalPhaseDetector:
    """Scalar-compatible view of one :class:`BatchGpdBank` row."""

    __slots__ = ("_bank", "_handle")

    def __init__(self, bank: BatchGpdBank, handle: int) -> None:
        self._bank = bank
        self._handle = handle

    @property
    def thresholds(self) -> GpdThresholds:
        return self._bank._thresholds[self._handle]

    @property
    def state(self) -> PhaseState:
        """Current machine state."""
        return self._bank.machine.phase_states[
            int(self._bank._state[self._handle])]

    @property
    def in_stable_phase(self) -> bool:
        """Whether the detector currently declares a stable phase."""
        return bool(self._bank._stable_vec[
            int(self._bank._state[self._handle])])

    @property
    def intervals_seen(self) -> int:
        """Number of intervals processed so far."""
        return int(self._bank._interval[self._handle]) + 1

    @property
    def events(self) -> list[PhaseEvent]:
        """Phase changes emitted so far (live list, like the scalar's)."""
        return self._bank._events[self._handle]

    @property
    def observations(self) -> list[GpdObservation]:
        """Per-interval records, materialized from the bank's step log."""
        self._bank.materialize_observations()
        return self._bank._observations[self._handle]

    def observe_buffer(self, pcs) -> PhaseEvent | None:
        """Process one full sample buffer (single-row batch)."""
        return self._bank.observe_buffers([(self, pcs)])[0]

    def observe_centroid(self, value: float) -> PhaseEvent | None:
        """Process one interval given its precomputed centroid."""
        return self._bank.observe_centroids(
            [self], np.asarray([value], dtype=np.float64))[0]

    def stable_interval_count(self) -> int:
        """Processed intervals that ended in a declared-stable phase."""
        return int(self._bank._stable_obs[self._handle])

    def stable_time_fraction(self) -> float:
        """Fraction of intervals spent in a declared-stable phase."""
        seen = self.intervals_seen
        if seen == 0:
            return 0.0
        return self.stable_interval_count() / seen
