"""Batched local phase detection: one bank, many detector rows.

A :class:`BatchLpdBank` holds the state of N ``LocalPhaseDetector``
-equivalent rows in flat NumPy arrays — integer machine states, last-r
values, per-row thresholds — plus width-grouped stable-set matrices, and
advances any subset of rows per call with vectorized kernels.  Each row
is exposed through a :class:`BatchLocalPhaseDetector` view whose surface
mirrors the scalar detector (``state``, ``last_r``, ``events``,
``observations``, ``reset()``, ...) so region monitors, watchdogs and
figure code consume either interchangeably.

Bit-equality design (enforced by ``tests/batch/``):

* stable-set and current histograms are grouped by *exact* width — no
  padding — so row-wise reductions share the scalar's pairwise-summation
  tree (see :mod:`repro.batch.kernels`);
* the state machine steps through integer tables compiled from
  :func:`~repro.core.states.lpd_machine_spec`, the same table the
  ``repro-check`` model checker proves equivalent to the imperative
  detector; the fused classify-and-step runs in one compiled call
  (:mod:`repro.batch.compiled`);
* priming, starvation (``sum < min_interval_samples``) and the no-sample
  hold replicate the scalar control flow branch for branch.

The hot path is the *row group*: a :class:`LpdRowGroup` pins a
same-width population once — contiguous bank columns and stable-set
slots become slices, so per-interval stepping touches no Python per row
and gathers become views.  ``observe_many`` remains the fully general
(and slower) per-item door; sessions regroup through
:mod:`repro.batch.regroup` so churn (resets, quarantines, ragged ends)
re-coalesces instead of stranding rows in the item loop.

Observation records are materialized lazily: the hot path appends one
compact array record per call, and per-row ``LpdObservation`` lists are
built only when a view's ``observations`` is first read.  Phase events
are rare and constructed eagerly, because monitors and watchdogs consume
them per interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.batch import compiled
from repro.batch.indexing import as_slice
from repro.batch.kernels import batched_pearson_cached
from repro.batch.tables import CompiledMachine, compile_machine
from repro.core.histogram import RegionHistogram
from repro.core.lpd import LpdObservation
from repro.core.similarity import PearsonSimilarity, SimilarityMeasure
from repro.core.states import (PhaseEvent, PhaseEventKind, PhaseState,
                               lpd_machine_spec)
from repro.core.thresholds import LpdThresholds
from repro.telemetry.bus import EventBus, get_bus
from repro.telemetry.events import (PhaseChange, StableSetFrozen,
                                    StableSetUpdated, StateTransition)

__all__ = ["BatchLpdBank", "BatchLocalPhaseDetector", "LpdRowGroup"]

#: Bank growth floor (rows); capacities double beyond it.
_MIN_CAPACITY = 16


class _SetStore:
    """Stable-set rows of one histogram width, densely packed.

    Rows are allocated from a freelist (single rows) or the tail (blocks,
    which must be contiguous).  ``epoch`` increments whenever existing
    rows are *relocated* (group compaction) so cached row groups can
    detect that their slot slices went stale.

    ``sum1``/``sum2`` cache each slot's row sum and sum of squares —
    the stable-side reductions of the Pearson kernel, which otherwise
    dominate the steady-state step even though stable sets change
    rarely.  A slot's cache entry is valid only while ``fresh`` is True;
    writers either refresh the sums bit-exactly alongside the row or
    clear the flag and let the next step recompute lazily.
    """

    __slots__ = ("width", "rows", "used", "free", "epoch",
                 "sum1", "sum2", "fresh")

    def __init__(self, width: int) -> None:
        self.width = width
        self.rows = np.zeros((_MIN_CAPACITY, width), dtype=np.float64)
        self.used = 0
        self.free: list[int] = []
        self.epoch = 0
        self.sum1 = np.zeros(_MIN_CAPACITY, dtype=np.float64)
        self.sum2 = np.zeros(_MIN_CAPACITY, dtype=np.float64)
        self.fresh = np.zeros(_MIN_CAPACITY, dtype=bool)

    def _reserve(self, capacity: int) -> None:
        if capacity <= self.rows.shape[0]:
            return
        size = self.rows.shape[0]
        while size < capacity:
            size *= 2
        grown = np.zeros((size, self.width), dtype=np.float64)
        grown[:self.used] = self.rows[:self.used]
        self.rows = grown
        for name in ("sum1", "sum2", "fresh"):
            old = getattr(self, name)
            big = np.zeros(size, dtype=old.dtype)
            big[:self.used] = old[:self.used]
            setattr(self, name, big)

    def alloc(self) -> int:
        if self.free:
            slot = self.free.pop()
        else:
            self._reserve(self.used + 1)
            slot = self.used
            self.used += 1
        self.fresh[slot] = False
        return slot

    def alloc_block(self, count: int) -> int:
        """Allocate *count* contiguous slots; returns the first index.

        Prefers a contiguous run from the freelist — repeated group
        compactions under churn (quarantine/release cycles) then recycle
        the slots they released instead of growing the store tail
        without bound.
        """
        if count and len(self.free) >= count:
            self.free.sort()
            run = 1
            for i in range(1, len(self.free)):
                if self.free[i] == self.free[i - 1] + 1:
                    run += 1
                    if run == count:
                        start = self.free[i - count + 1]
                        del self.free[i - count + 1:i + 1]
                        self.fresh[start:start + count] = False
                        return start
                else:
                    run = 1
        self._reserve(self.used + count)
        start = self.used
        self.used += count
        self.fresh[start:start + count] = False
        return start

    def release(self, slots: np.ndarray) -> None:
        """Return slots to the freelist (contents need not be cleared)."""
        self.free.extend(int(slot) for slot in slots)


@dataclass
class _StepRecord:
    """Compact log of one bank step (lazy observations)."""

    handles: np.ndarray
    interval_indices: np.ndarray
    had_samples: np.ndarray
    r_values: np.ndarray
    states: np.ndarray
    events: dict[int, PhaseEvent] = field(default_factory=dict)


class LpdRowGroup:
    """A pinned same-width population, stepped with zero per-row Python.

    Built by :meth:`BatchLpdBank.make_group`; when the member rows'
    handles (bank columns) and stable-set slots are contiguous — always
    true for :meth:`BatchLpdBank.add_detectors` populations, restored
    for churned ones by slot compaction — indexing degenerates to
    slices and every gather in the step becomes a view.
    """

    __slots__ = ("width", "k", "handles", "index", "slots", "slot_index",
                 "store", "epoch")

    def __init__(self, width: int, handles: np.ndarray,
                 index: slice | np.ndarray, slots: np.ndarray,
                 slot_index: slice | np.ndarray,
                 store: _SetStore) -> None:
        self.width = width
        self.k = handles.size
        self.handles = handles
        self.index = index          # slice | int64 array (bank columns)
        self.slots = slots
        self.slot_index = slot_index  # slice | int64 array (store rows)
        self.store = store
        self.epoch = store.epoch

    @property
    def coalesced(self) -> bool:
        """Whether both bank columns and stable-set slots are slices."""
        return (isinstance(self.index, slice)
                and isinstance(self.slot_index, slice))


class BatchLpdBank:
    """Vectorized storage and stepping for many local phase detectors."""

    def __init__(self) -> None:
        self.machine: CompiledMachine = compile_machine(lpd_machine_spec())
        self._input_similar = self.machine.input_index["similar"]
        self._input_dissimilar = self.machine.input_index["dissimilar"]
        self._stable_vec = self.machine.stable
        self._n = 0
        capacity = _MIN_CAPACITY
        self._state = np.zeros(capacity, dtype=np.int64)
        self._last_r = np.zeros(capacity, dtype=np.float64)
        self._active = np.zeros(capacity, dtype=np.int64)
        self._stable_ivals = np.zeros(capacity, dtype=np.int64)
        self._threshold = np.zeros(capacity, dtype=np.float64)
        self._min_samples = np.zeros(capacity, dtype=np.float64)
        self._width = np.zeros(capacity, dtype=np.int64)
        self._has_set = np.zeros(capacity, dtype=bool)
        self._set_slot = np.zeros(capacity, dtype=np.int64)
        self._sets: dict[int, _SetStore] = {}
        # Plain-list mirror of _width: the observe_many item loop reads one
        # width per item, and list indexing beats a NumPy scalar lookup there.
        self._width_py: list[int] = []
        self._has_custom = False
        # Per-row Python objects.
        self._rids: list[int] = []
        self._buses: list[EventBus] = []
        self._thresholds: list[LpdThresholds] = []
        self._measures: list[SimilarityMeasure] = []
        self._custom_measure: list[bool] = []
        self._events: list[list[PhaseEvent]] = []
        self._observations: list[list[LpdObservation]] = []
        self._distinct_buses: list[EventBus] = []
        self._log: list[_StepRecord] = []
        self._materialized_logs = 0
        self._shared_pearson = PearsonSimilarity()

    def __len__(self) -> int:
        return self._n

    # -- row allocation ------------------------------------------------------

    def _reserve(self, capacity: int) -> None:
        if capacity <= self._state.size:
            return
        size = self._state.size
        while size < capacity:
            size *= 2
        for name in ("_state", "_last_r", "_active", "_stable_ivals",
                     "_threshold", "_min_samples", "_width", "_has_set",
                     "_set_slot"):
            old = getattr(self, name)
            grown = np.zeros(size, dtype=old.dtype)
            grown[:self._n] = old[:self._n]
            setattr(self, name, grown)

    def _store_for(self, width: int) -> _SetStore:
        store = self._sets.get(width)
        if store is None:
            store = self._sets[width] = _SetStore(width)
        return store

    def _register_row(self, thresholds: LpdThresholds, bus: EventBus,
                      measure: SimilarityMeasure | None,
                      region_id: int) -> None:
        self._rids.append(region_id)
        self._buses.append(bus)
        if not any(bus is seen for seen in self._distinct_buses):
            self._distinct_buses.append(bus)
        self._thresholds.append(thresholds)
        pearson = measure is None or type(measure) is PearsonSimilarity
        self._measures.append(measure if measure is not None
                              else self._shared_pearson)
        self._custom_measure.append(not pearson)
        if not pearson:
            self._has_custom = True
        self._events.append([])
        self._observations.append([])

    def add_detector(self,
                     n_instructions: int,
                     thresholds: LpdThresholds | None = None,
                     measure: SimilarityMeasure | None = None,
                     telemetry: EventBus | None = None,
                     region_id: int = -1) -> "BatchLocalPhaseDetector":
        """Allocate one detector row; returns its scalar-compatible view."""
        if n_instructions < 1:
            raise ValueError("a region must contain at least one instruction")
        thresholds = thresholds or LpdThresholds()
        bus = telemetry if telemetry is not None else get_bus()
        self._reserve(self._n + 1)
        handle = self._n
        self._n += 1
        self._state[handle] = self.machine.initial
        self._last_r[handle] = 0.0
        self._threshold[handle] = thresholds.threshold_for_size(n_instructions)
        self._min_samples[handle] = thresholds.min_interval_samples
        self._width[handle] = n_instructions
        self._width_py.append(n_instructions)
        self._has_set[handle] = False
        self._set_slot[handle] = self._store_for(n_instructions).alloc()
        self._register_row(thresholds, bus, measure, region_id)
        return BatchLocalPhaseDetector(self, handle)

    def add_detectors(self,
                      n_instructions: int,
                      count: int,
                      thresholds: LpdThresholds | None = None,
                      telemetry: EventBus | None = None,
                      region_ids: list[int] | None = None
                      ) -> list["BatchLocalPhaseDetector"]:
        """Allocate *count* same-width rows with contiguous handles/slots.

        The fleet allocator: populations built this way group into pure
        slices (:meth:`make_group` finds them already coalesced).  All
        rows share *thresholds* and *telemetry*; *region_ids* defaults
        to ``-1`` per row.
        """
        if n_instructions < 1:
            raise ValueError("a region must contain at least one instruction")
        if count < 0:
            raise ValueError(f"cannot allocate {count} detector rows")
        thresholds = thresholds or LpdThresholds()
        bus = telemetry if telemetry is not None else get_bus()
        self._reserve(self._n + count)
        start = self._n
        stop = start + count
        self._n = stop
        sel = slice(start, stop)
        self._state[sel] = self.machine.initial
        self._last_r[sel] = 0.0
        self._threshold[sel] = thresholds.threshold_for_size(n_instructions)
        self._min_samples[sel] = thresholds.min_interval_samples
        self._width[sel] = n_instructions
        self._width_py.extend([n_instructions] * count)
        self._has_set[sel] = False
        store = self._store_for(n_instructions)
        first_slot = store.alloc_block(count)
        self._set_slot[sel] = np.arange(first_slot, first_slot + count,
                                        dtype=np.int64)
        rids = region_ids if region_ids is not None else [-1] * count
        self._rids.extend(rids)
        self._buses.extend([bus] * count)
        if not any(bus is seen for seen in self._distinct_buses):
            self._distinct_buses.append(bus)
        self._thresholds.extend([thresholds] * count)
        self._measures.extend([self._shared_pearson] * count)
        self._custom_measure.extend([False] * count)
        self._events.extend([] for _ in range(count))
        self._observations.extend([] for _ in range(count))
        return [BatchLocalPhaseDetector(self, handle)
                for handle in range(start, stop)]

    def reset_row(self, handle: int) -> None:
        """Scalar ``reset()``: back to UNSTABLE, stable set dropped."""
        self._state[handle] = self.machine.initial
        self._has_set[handle] = False
        self._last_r[handle] = 0.0

    # -- row groups ----------------------------------------------------------

    def make_group(self, views: list, compact: bool = True) -> LpdRowGroup:
        """Pin *views* (all one width) into a reusable row group.

        With *compact* (the default), stable-set slots that are not
        already contiguous are relocated into one fresh contiguous block
        — O(group) once, after which every step gathers by slice.
        Compaction bumps the store epoch, invalidating any *other*
        group over relocated rows (stepping a stale group raises), so
        callers that cache groups must rebuild them after building a
        newer compacted group over the same width; see
        :mod:`repro.batch.regroup`.
        """
        k = len(views)
        handles = np.fromiter((view._handle for view in views),
                              dtype=np.int64, count=k)
        if k == 0:
            return LpdRowGroup(0, handles, slice(0, 0), handles,
                               slice(0, 0), _SetStore(1))
        widths = self._width[handles]
        width = int(widths[0])
        if not np.all(widths == width):
            other = int(widths[widths != width][0])
            raise ValueError(
                f"row group mixes widths {width} and {other}; group rows "
                f"by exact histogram width")
        store = self._sets[width]
        slots = self._set_slot[handles].copy()
        index = as_slice(handles)
        slot_index = as_slice(slots)
        if slot_index is None and compact:
            first = store.alloc_block(k)
            dest = np.arange(first, first + k, dtype=np.int64)
            store.rows[dest] = store.rows[slots]
            # relocation preserves bits, so the sum cache moves with it
            store.sum1[dest] = store.sum1[slots]
            store.sum2[dest] = store.sum2[slots]
            store.fresh[dest] = store.fresh[slots]
            store.release(slots)
            self._set_slot[handles] = dest
            store.epoch += 1
            slots = dest
            slot_index = slice(first, first + k)
        return LpdRowGroup(width, handles,
                           index if index is not None else handles,
                           slots,
                           slot_index if slot_index is not None else slots,
                           store)

    def telemetry_live(self) -> bool:
        """Whether any bus attached to this bank is currently enabled."""
        return any(bus.enabled for bus in self._distinct_buses)

    # -- the vectorized step -------------------------------------------------

    def observe_many(self, items: list) -> list[PhaseEvent | None]:
        """Advance many rows by one interval each, in lockstep.

        *items* is a list of ``(detector_view, histogram, interval_index)``
        triples — histogram ``None`` (or empty / starved) holds the row
        exactly like the scalar detector.  Each row may appear at most
        once per call.  Returns the phase event (or ``None``) per item,
        in order.
        """
        k = len(items)
        results: list[PhaseEvent | None] = [None] * k
        handle_list: list[int] = [0] * k
        index_list: list[int] = [0] * k
        active_mask = np.zeros(k, dtype=bool)
        # item position -> (state_before, updated, frozen) for stepped rows,
        # consumed by the ordered telemetry replay below.
        primed: list[int] = []
        stepped: dict[int, tuple[int, bool, bool]] = {}
        event_positions: list[int] = []
        telemetry_live = self.telemetry_live()
        # width -> ([item position], [float64 counts row])
        groups: dict[int, tuple[list[int], list[np.ndarray]]] = {}
        width_py = self._width_py

        for position, (view, histogram, interval_index) in enumerate(items):
            handle = view._handle
            handle_list[position] = handle
            index_list[position] = interval_index
            if histogram is None:
                continue
            from_hist = isinstance(histogram, RegionHistogram)
            if from_hist:
                if histogram.is_empty():
                    continue
                counts = np.asarray(histogram.counts, dtype=np.float64)
            else:
                counts = np.asarray(histogram, dtype=np.float64)
            width = width_py[handle]
            if counts.size != width:
                # The scalar checks an ndarray's zero sum before its size.
                if not from_hist and counts.sum() == 0:
                    continue
                raise ValueError(
                    f"histogram has {counts.size} slots, detector expects "
                    f"{width}")
            position_list, rows = groups.setdefault(width, ([], []))
            position_list.append(position)
            rows.append(counts)

        handles = np.array(handle_list, dtype=np.int64)
        indices = np.array(index_list, dtype=np.int64)

        for width, (position_list, rows) in groups.items():
            counts_block = np.stack(rows)
            positions = np.asarray(position_list, dtype=np.int64)
            group_handles = handles[positions]
            group = LpdRowGroup(width, group_handles, group_handles,
                                self._set_slot[group_handles],
                                self._set_slot[group_handles],
                                self._sets[width])
            self._advance_group(group, counts_block, indices, positions,
                                active_mask, primed, stepped, results,
                                event_positions, telemetry_live)

        self._finish_step(handles, indices, active_mask, primed, stepped,
                          results, event_positions, telemetry_live)
        return results

    def observe_rows(self, views: list, counts_block: np.ndarray,
                     interval_index: int) -> list[PhaseEvent | None]:
        """Advance a fixed same-width population from one dense block.

        Equivalent to ``observe_many([(view, row, interval_index), ...])``
        — same kernels, same starvation holds, bit-identical state —
        minus the per-item Python.  For a population stepped every
        interval, build the group once with :meth:`make_group` and call
        :meth:`observe_grouped` instead; this door rebuilds it per call.
        """
        k = len(views)
        counts_block = np.ascontiguousarray(counts_block, dtype=np.float64)
        if counts_block.shape[0] != k:
            raise ValueError(
                f"counts block has {counts_block.shape[0]} rows for "
                f"{k} views")
        if k == 0:
            self._finish_step(np.zeros(0, dtype=np.int64),
                              np.zeros(0, dtype=np.int64),
                              np.zeros(0, dtype=bool), [], {}, [], [],
                              self.telemetry_live())
            return []
        width = counts_block.shape[1]
        widths = self._width[
            np.fromiter((view._handle for view in views),
                        dtype=np.int64, count=k)]
        if not np.all(widths == width):
            expected = int(widths[widths != width][0])
            raise ValueError(
                f"histogram has {width} slots, detector expects "
                f"{expected}")
        group = self.make_group(views, compact=False)
        return self.observe_grouped(group, counts_block, interval_index)

    def observe_grouped(self, group: LpdRowGroup, counts_block: np.ndarray,
                        interval_index: int) -> list[PhaseEvent | None]:
        """Advance a pinned row group by one interval from a dense block.

        The fleet fast path: *counts_block* is ``(group.k, group.width)``
        float64 (unit inner stride; ring-buffer views qualify), row i
        feeding group row i.  Starved and all-zero rows hold exactly as
        in ``observe_many``.
        """
        k = group.k
        if counts_block.shape != (k, group.width):
            raise ValueError(
                f"counts block shape {counts_block.shape} does not match "
                f"group ({k}, {group.width})")
        results: list[PhaseEvent | None] = [None] * k
        active_mask = np.zeros(k, dtype=bool)
        primed: list[int] = []
        stepped: dict[int, tuple[int, bool, bool]] = {}
        event_positions: list[int] = []
        telemetry_live = self.telemetry_live()
        indices = np.full(k, interval_index, dtype=np.int64)
        self._advance_group(group, counts_block, indices, None, active_mask,
                            primed, stepped, results, event_positions,
                            telemetry_live)
        self._finish_step(group.handles, indices, active_mask, primed,
                          stepped, results, event_positions, telemetry_live,
                          index=group.index)
        return results

    # -- the group step core -------------------------------------------------

    def _advance_group(self, group: LpdRowGroup, block: np.ndarray,
                       call_indices: np.ndarray, positions: np.ndarray | None,
                       active_mask: np.ndarray, primed: list, stepped: dict,
                       results: list, event_positions: list,
                       telemetry_live: bool) -> None:
        """Step one same-width group; mutates the per-call accumulators.

        *positions* maps group rows to item positions in the enclosing
        call (``None`` means identity: group row i is item i).  The hot
        shape — every row live and primed, no telemetry — runs without
        any per-row Python.
        """
        k = group.k
        if k == 0:
            return
        if group.epoch != group.store.epoch:
            raise RuntimeError(
                "stale row group: stable-set slots were relocated by a "
                "newer compaction; rebuild the group with make_group()")
        block = np.asarray(block, dtype=np.float64)
        sums = block.sum(axis=1)
        # min_interval_samples >= 1 (validated by LpdThresholds), so the
        # scalar's all-zero hold is subsumed by the starvation hold.
        live = sums >= self._min_samples[group.index]
        if not live.any():
            return
        if bool(live.all()):
            row_index = group.index
            slot_index = group.slot_index
            live_block = block
            live_positions = positions
        else:
            live_rows = np.flatnonzero(live)
            row_index = group.handles[live_rows]
            slot_index = group.slots[live_rows]
            live_block = block[live_rows]
            live_positions = (live_rows if positions is None
                              else positions[live_rows])
        if live_positions is None:
            active_mask[:k] = live
        else:
            active_mask[live_positions] = True
        self._active[row_index] += 1

        prime_sel = ~self._has_set[row_index]
        if not prime_sel.any():
            self._advance_rows(row_index, slot_index, group.store,
                               live_block, live_positions, call_indices,
                               stepped, results, event_positions,
                               telemetry_live)
            return

        # Cold path: some rows prime (first interval after alloc/reset).
        row_arr = (group.handles if isinstance(row_index, slice)
                   else row_index)
        slot_arr = (group.slots if isinstance(slot_index, slice)
                    else slot_index)
        pos_arr = (np.arange(live_block.shape[0], dtype=np.int64)
                   if live_positions is None else live_positions)
        prime_rows = row_arr[prime_sel]
        prime_slots = slot_arr[prime_sel]
        group.store.rows[prime_slots] = live_block[prime_sel]
        group.store.fresh[prime_slots] = False
        self._has_set[prime_rows] = True
        self._stable_ivals[prime_rows] += \
            self._stable_vec[self._state[prime_rows]]
        primed.extend(int(p) for p in pos_arr[prime_sel])
        step_sel = ~prime_sel
        if step_sel.any():
            self._advance_rows(row_arr[step_sel], slot_arr[step_sel],
                               group.store, live_block[step_sel],
                               pos_arr[step_sel], call_indices, stepped,
                               results, event_positions, telemetry_live)

    def _advance_rows(self, row_index: slice | np.ndarray,
                      slot_index: slice | np.ndarray, store: _SetStore,
                      counts: np.ndarray,
                      live_positions: np.ndarray | None,
                      call_indices: np.ndarray, stepped: dict,
                      results: list, event_positions: list,
                      telemetry_live: bool) -> None:
        """Pearson + fused FSM step for rows that all hold a stable set.

        *row_index* / *slot_index* are slices (views all the way down)
        or int64 arrays; *counts* is the matching ``(m, width)`` block.
        """
        stable_rows = store.rows[slot_index]
        stale = ~store.fresh[slot_index]
        if stale.any():
            # Lazy refresh: slots written without sums (priming, alloc).
            # A gathered copy keeps the width and unit inner stride, so
            # these reductions are bit-identical to the original rows'.
            if isinstance(slot_index, slice):
                stale_slots = np.flatnonzero(stale) + slot_index.start
            else:
                stale_slots = slot_index[stale]
            stale_rows = store.rows[stale_slots]
            store.sum1[stale_slots] = stale_rows.sum(axis=1)
            store.sum2[stale_slots] = (stale_rows * stale_rows).sum(axis=1)
            store.fresh[stale_slots] = True
        r, sum_y, sum_y2 = batched_pearson_cached(
            stable_rows, counts, store.sum1[slot_index],
            store.sum2[slot_index])
        if self._has_custom:
            handle_iter = (range(row_index.start, row_index.stop)
                           if isinstance(row_index, slice) else row_index)
            for j, handle in enumerate(handle_iter):
                if self._custom_measure[handle]:
                    measure = self._measures[handle]
                    r[j] = float(measure(stable_rows[j], counts[j]))
        self._last_r[row_index] = r
        machine = self.machine
        before = self._state[row_index]
        if isinstance(row_index, slice):
            before = before.copy()  # the write below must not alias it
        after, changed, updated, frozen = compiled.lpd_step(
            before, r, self._threshold[row_index], self._input_similar,
            self._input_dissimilar, machine.next_state,
            machine.phase_change, machine.updates_stable_set,
            self._stable_vec)
        if updated.any():
            # The replacement row *is* the current interval, whose sums
            # the kernel just reduced — refresh the cache from those
            # instead of invalidating (same data, same tree, same bits).
            if isinstance(slot_index, slice):
                store.rows[slot_index][updated] = counts[updated]
                store.sum1[slot_index][updated] = sum_y[updated]
                store.sum2[slot_index][updated] = sum_y2[updated]
                store.fresh[slot_index][updated] = True
            else:
                replaced = slot_index[updated]
                store.rows[replaced] = counts[updated]
                store.sum1[replaced] = sum_y[updated]
                store.sum2[replaced] = sum_y2[updated]
                store.fresh[replaced] = True
        self._state[row_index] = after
        self._stable_ivals[row_index] += self._stable_vec[after]

        changed_rows = np.flatnonzero(changed)
        if changed_rows.size:
            phase_states = machine.phase_states
            for j in changed_rows:
                position = (int(j) if live_positions is None
                            else int(live_positions[j]))
                handle = (row_index.start + int(j)
                          if isinstance(row_index, slice)
                          else int(row_index[j]))
                stable_after = bool(self._stable_vec[after[j]])
                event = PhaseEvent(
                    interval_index=int(call_indices[position]),
                    kind=(PhaseEventKind.BECAME_STABLE if stable_after
                          else PhaseEventKind.BECAME_UNSTABLE),
                    state_from=phase_states[int(before[j])],
                    state_to=phase_states[int(after[j])],
                    detail=f"r={float(r[j]):.4f}")
                results[position] = event
                event_positions.append(position)
                self._events[handle].append(event)
        if telemetry_live:
            for j in range(counts.shape[0]):
                position = (int(j) if live_positions is None
                            else int(live_positions[j]))
                stepped[position] = (int(before[j]), bool(updated[j]),
                                     bool(frozen[j]))

    def _finish_step(self, handles: np.ndarray, indices: np.ndarray,
                     active_mask: np.ndarray, primed: list, stepped: dict,
                     results: list, event_positions: list,
                     telemetry_live: bool,
                     index: slice | None = None) -> None:
        """Close one bank step: log record, then ordered telemetry.

        *index* is an optional slice equivalent to *handles* (from a
        coalesced group) — the record snapshots then copy through strided
        loads instead of gathers.
        """
        if isinstance(index, slice):
            r_values = self._last_r[index].copy()
            states = self._state[index].copy()
        else:
            r_values = self._last_r[handles]
            states = self._state[handles]
        self._log.append(_StepRecord(
            handles=handles,
            interval_indices=indices,
            had_samples=active_mask,
            r_values=r_values,
            states=states,
            events={position: results[position]
                    for position in event_positions}))
        if telemetry_live:
            self._emit_telemetry(handles, indices, primed, stepped, results)

    # -- telemetry replay (cold path) ----------------------------------------

    def _emit_telemetry(self, handles: np.ndarray, indices: np.ndarray,
                        primed: list, stepped: dict,
                        results: list) -> None:
        """Re-emit per item, in order, exactly as the scalar detector."""
        primed_set = set(primed)
        phase_states = self.machine.phase_states
        for position in range(handles.size):
            handle = int(handles[position])
            bus = self._buses[handle]
            if not bus.enabled:
                continue
            index = int(indices[position])
            rid = self._rids[handle]
            if position in primed_set:
                bus.emit(StableSetUpdated(index, rid))
                continue
            info = stepped.get(position)
            if info is None:
                continue
            before, updated, frozen = info
            state_from = phase_states[before].value
            state_to = phase_states[int(self._state[handle])].value
            bus.emit(StateTransition(
                interval_index=index, detector="lpd", rid=rid,
                state_from=state_from, state_to=state_to,
                metric=float(self._last_r[handle])))
            if updated:
                bus.emit(StableSetUpdated(index, rid))
            if frozen:
                bus.emit(StableSetFrozen(index, rid))
            event = results[position]
            if event is not None:
                bus.emit(PhaseChange(
                    interval_index=index, detector="lpd", rid=rid,
                    kind=event.kind.value, state_from=state_from,
                    state_to=state_to, detail=event.detail))

    # -- lazy observation materialization ------------------------------------

    def materialize_observations(self) -> None:
        """Expand pending step records into per-row observation lists."""
        phase_states = self.machine.phase_states
        for record in self._log[self._materialized_logs:]:
            for position in range(record.handles.size):
                handle = int(record.handles[position])
                self._observations[handle].append(LpdObservation(
                    interval_index=int(record.interval_indices[position]),
                    r_value=float(record.r_values[position]),
                    had_samples=bool(record.had_samples[position]),
                    state=phase_states[int(record.states[position])],
                    event=record.events.get(position)))
        self._materialized_logs = len(self._log)

    def discard_observation_history(self) -> None:
        """Drop pending step records without materializing them.

        The step log exists only to expand per-row observation
        histories on demand; it grows with every interval stepped.
        Callers that consume events incrementally and never ask for
        observations (the serving layer, which pickles the bank into
        shard snapshots) discard it to keep their state bounded.
        Observations already materialized are kept; a later
        :meth:`materialize_observations` covers only steps taken after
        the discard.
        """
        self._log.clear()
        self._materialized_logs = 0


class BatchLocalPhaseDetector:
    """Scalar-compatible view of one :class:`BatchLpdBank` row.

    Mirrors the read surface of
    :class:`~repro.core.lpd.LocalPhaseDetector`; ``observe`` routes
    through the bank as a single-item batch (bit-identical — a size-1
    group reduces through the same tree as the scalar 1-D arrays).
    """

    __slots__ = ("_bank", "_handle")

    def __init__(self, bank: BatchLpdBank, handle: int) -> None:
        self._bank = bank
        self._handle = handle

    # -- identity and configuration -----------------------------------------

    @property
    def n_instructions(self) -> int:
        return int(self._bank._width[self._handle])

    @property
    def thresholds(self) -> LpdThresholds:
        return self._bank._thresholds[self._handle]

    @property
    def measure(self) -> SimilarityMeasure:
        return self._bank._measures[self._handle]

    @property
    def effective_threshold(self) -> float:
        """The r-threshold in force for this region's size."""
        return float(self._bank._threshold[self._handle])

    # -- live state -----------------------------------------------------------

    @property
    def state(self) -> PhaseState:
        """Current machine state."""
        return self._bank.machine.phase_states[
            int(self._bank._state[self._handle])]

    @property
    def in_stable_phase(self) -> bool:
        """Whether the region is currently in a locally stable phase."""
        return bool(self._bank._stable_vec[
            int(self._bank._state[self._handle])])

    @property
    def last_r(self) -> float:
        """Most recently reported similarity value (0 before execution)."""
        return float(self._bank._last_r[self._handle])

    @property
    def active_intervals(self) -> int:
        return int(self._bank._active[self._handle])

    @property
    def stable_intervals(self) -> int:
        return int(self._bank._stable_ivals[self._handle])

    @property
    def events(self) -> list[PhaseEvent]:
        """Phase changes emitted so far (live list, like the scalar's)."""
        return self._bank._events[self._handle]

    @property
    def observations(self) -> list[LpdObservation]:
        """Per-interval records, materialized from the bank's step log."""
        self._bank.materialize_observations()
        return self._bank._observations[self._handle]

    def stable_set(self) -> np.ndarray | None:
        """Copy of the current stable-set histogram, or ``None`` if unset."""
        bank = self._bank
        if not bank._has_set[self._handle]:
            return None
        store = bank._sets[int(bank._width[self._handle])]
        return store.rows[int(bank._set_slot[self._handle])].copy()

    # -- actions ---------------------------------------------------------------

    def observe(self, histogram: RegionHistogram | np.ndarray | None,
                interval_index: int) -> PhaseEvent | None:
        """Process one interval for this row only (single-item batch)."""
        return self._bank.observe_many(
            [(self, histogram, interval_index)])[0]

    def reset(self) -> None:
        """Re-enter the initial unstable state, dropping the stable set."""
        self._bank.reset_row(self._handle)

    # -- statistics ------------------------------------------------------------

    def stable_time_fraction(self) -> float:
        """Fraction of the region's active intervals spent stable."""
        if self.active_intervals == 0:
            return 0.0
        return self.stable_intervals / self.active_intervals

    def phase_change_count(self) -> int:
        """Number of phase changes emitted so far."""
        return len(self.events)
