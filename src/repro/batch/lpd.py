"""Batched local phase detection: one bank, many detector rows.

A :class:`BatchLpdBank` holds the state of N ``LocalPhaseDetector``
-equivalent rows in flat NumPy arrays — integer machine states, last-r
values, per-row thresholds — plus width-grouped stable-set matrices, and
advances any subset of rows per call with vectorized kernels.  Each row
is exposed through a :class:`BatchLocalPhaseDetector` view whose surface
mirrors the scalar detector (``state``, ``last_r``, ``events``,
``observations``, ``reset()``, ...) so region monitors, watchdogs and
figure code consume either interchangeably.

Bit-equality design (enforced by ``tests/batch/``):

* stable-set and current histograms are grouped by *exact* width — no
  padding — so row-wise reductions share the scalar's pairwise-summation
  tree (see :mod:`repro.batch.kernels`);
* the state machine steps through integer tables compiled from
  :func:`~repro.core.states.lpd_machine_spec`, the same table the
  ``repro-check`` model checker proves equivalent to the imperative
  detector;
* priming, starvation (``sum < min_interval_samples``) and the no-sample
  hold replicate the scalar control flow branch for branch.

Observation records are materialized lazily: the hot path appends one
compact array record per call, and per-row ``LpdObservation`` lists are
built only when a view's ``observations`` is first read.  Phase events
are rare and constructed eagerly, because monitors and watchdogs consume
them per interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.batch.kernels import batched_pearson
from repro.batch.tables import CompiledMachine, compile_machine
from repro.core.histogram import RegionHistogram
from repro.core.lpd import LpdObservation
from repro.core.similarity import PearsonSimilarity, SimilarityMeasure
from repro.core.states import (PhaseEvent, PhaseEventKind, PhaseState,
                               lpd_machine_spec)
from repro.core.thresholds import LpdThresholds
from repro.telemetry.bus import EventBus, get_bus
from repro.telemetry.events import (PhaseChange, StableSetFrozen,
                                    StableSetUpdated, StateTransition)

__all__ = ["BatchLpdBank", "BatchLocalPhaseDetector"]

#: Bank growth floor (rows); capacities double beyond it.
_MIN_CAPACITY = 16


class _SetStore:
    """Stable-set rows of one histogram width, densely packed."""

    __slots__ = ("width", "rows", "used")

    def __init__(self, width: int) -> None:
        self.width = width
        self.rows = np.zeros((_MIN_CAPACITY, width), dtype=np.float64)
        self.used = 0

    def alloc(self) -> int:
        if self.used == self.rows.shape[0]:
            grown = np.zeros((self.rows.shape[0] * 2, self.width),
                             dtype=np.float64)
            grown[:self.used] = self.rows
            self.rows = grown
        slot = self.used
        self.used += 1
        return slot


@dataclass
class _StepRecord:
    """Compact log of one ``observe_many`` call (lazy observations)."""

    handles: np.ndarray
    interval_indices: np.ndarray
    had_samples: np.ndarray
    r_values: np.ndarray
    states: np.ndarray
    events: dict[int, PhaseEvent] = field(default_factory=dict)


class BatchLpdBank:
    """Vectorized storage and stepping for many local phase detectors."""

    def __init__(self) -> None:
        self.machine: CompiledMachine = compile_machine(lpd_machine_spec())
        self._input_similar = self.machine.input_index["similar"]
        self._input_dissimilar = self.machine.input_index["dissimilar"]
        self._stable_vec = self.machine.stable
        self._n = 0
        capacity = _MIN_CAPACITY
        self._state = np.zeros(capacity, dtype=np.int64)
        self._last_r = np.zeros(capacity, dtype=np.float64)
        self._active = np.zeros(capacity, dtype=np.int64)
        self._stable_ivals = np.zeros(capacity, dtype=np.int64)
        self._threshold = np.zeros(capacity, dtype=np.float64)
        self._min_samples = np.zeros(capacity, dtype=np.float64)
        self._width = np.zeros(capacity, dtype=np.int64)
        self._has_set = np.zeros(capacity, dtype=bool)
        self._set_slot = np.zeros(capacity, dtype=np.int64)
        self._sets: dict[int, _SetStore] = {}
        # Plain-list mirror of _width: the observe_many item loop reads one
        # width per item, and list indexing beats a NumPy scalar lookup there.
        self._width_py: list[int] = []
        self._has_custom = False
        # Per-row Python objects.
        self._rids: list[int] = []
        self._buses: list[EventBus] = []
        self._thresholds: list[LpdThresholds] = []
        self._measures: list[SimilarityMeasure] = []
        self._custom_measure: list[bool] = []
        self._events: list[list[PhaseEvent]] = []
        self._observations: list[list[LpdObservation]] = []
        self._distinct_buses: list[EventBus] = []
        self._log: list[_StepRecord] = []
        self._materialized_logs = 0
        self._shared_pearson = PearsonSimilarity()

    def __len__(self) -> int:
        return self._n

    # -- row allocation ------------------------------------------------------

    def _grow(self) -> None:
        capacity = self._state.size * 2
        for name in ("_state", "_last_r", "_active", "_stable_ivals",
                     "_threshold", "_min_samples", "_width", "_has_set",
                     "_set_slot"):
            old = getattr(self, name)
            grown = np.zeros(capacity, dtype=old.dtype)
            grown[:self._n] = old[:self._n]
            setattr(self, name, grown)

    def add_detector(self,
                     n_instructions: int,
                     thresholds: LpdThresholds | None = None,
                     measure: SimilarityMeasure | None = None,
                     telemetry: EventBus | None = None,
                     region_id: int = -1) -> "BatchLocalPhaseDetector":
        """Allocate one detector row; returns its scalar-compatible view."""
        if n_instructions < 1:
            raise ValueError("a region must contain at least one instruction")
        thresholds = thresholds or LpdThresholds()
        bus = telemetry if telemetry is not None else get_bus()
        if self._n == self._state.size:
            self._grow()
        handle = self._n
        self._n += 1
        self._state[handle] = self.machine.initial
        self._last_r[handle] = 0.0
        self._threshold[handle] = thresholds.threshold_for_size(n_instructions)
        self._min_samples[handle] = thresholds.min_interval_samples
        self._width[handle] = n_instructions
        self._width_py.append(n_instructions)
        self._has_set[handle] = False
        store = self._sets.get(n_instructions)
        if store is None:
            store = self._sets[n_instructions] = _SetStore(n_instructions)
        self._set_slot[handle] = store.alloc()
        self._rids.append(region_id)
        self._buses.append(bus)
        if not any(bus is seen for seen in self._distinct_buses):
            self._distinct_buses.append(bus)
        self._thresholds.append(thresholds)
        pearson = measure is None or type(measure) is PearsonSimilarity
        self._measures.append(measure if measure is not None
                              else self._shared_pearson)
        self._custom_measure.append(not pearson)
        if not pearson:
            self._has_custom = True
        self._events.append([])
        self._observations.append([])
        return BatchLocalPhaseDetector(self, handle)

    def reset_row(self, handle: int) -> None:
        """Scalar ``reset()``: back to UNSTABLE, stable set dropped."""
        self._state[handle] = self.machine.initial
        self._has_set[handle] = False
        self._last_r[handle] = 0.0

    # -- the vectorized step -------------------------------------------------

    def observe_many(self, items: list) -> list[PhaseEvent | None]:
        """Advance many rows by one interval each, in lockstep.

        *items* is a list of ``(detector_view, histogram, interval_index)``
        triples — histogram ``None`` (or empty / starved) holds the row
        exactly like the scalar detector.  Each row may appear at most
        once per call.  Returns the phase event (or ``None``) per item,
        in order.
        """
        k = len(items)
        results: list[PhaseEvent | None] = [None] * k
        handle_list: list[int] = [0] * k
        index_list: list[int] = [0] * k
        active_mask = np.zeros(k, dtype=bool)
        # item position -> (state_before, updated, frozen) for stepped rows,
        # consumed by the ordered telemetry replay below.
        primed: list[int] = []
        stepped: dict[int, tuple[int, bool, bool]] = {}
        # width -> ([item position], [float64 counts row], [from ndarray])
        groups: dict[int,
                     tuple[list[int], list[np.ndarray], list[bool]]] = {}
        width_py = self._width_py

        for position, (view, histogram, interval_index) in enumerate(items):
            handle = view._handle
            handle_list[position] = handle
            index_list[position] = interval_index
            if histogram is None:
                continue
            from_hist = isinstance(histogram, RegionHistogram)
            if from_hist:
                if histogram.is_empty():
                    continue
                counts = np.asarray(histogram.counts, dtype=np.float64)
            else:
                counts = np.asarray(histogram, dtype=np.float64)
            width = width_py[handle]
            if counts.size != width:
                # The scalar checks an ndarray's zero sum before its size.
                if not from_hist and counts.sum() == 0:
                    continue
                raise ValueError(
                    f"histogram has {counts.size} slots, detector expects "
                    f"{width}")
            position_list, rows, source_flags = groups.setdefault(
                width, ([], [], []))
            position_list.append(position)
            rows.append(counts)
            # Only ndarray-sourced rows get the zero-sum hold (a
            # RegionHistogram resolves emptiness via is_empty()).
            source_flags.append(not from_hist)

        handles = np.array(handle_list, dtype=np.int64)
        indices = np.array(index_list, dtype=np.int64)

        for width, (position_list, rows, source_flags) in groups.items():
            counts_block = np.stack(rows)
            positions = np.asarray(position_list, dtype=np.int64)
            from_ndarray = np.asarray(source_flags, dtype=bool)
            self._step_group(width, counts_block, positions,
                             handles[positions], from_ndarray, indices,
                             active_mask, primed, stepped, results)

        self._finish_step(handles, indices, active_mask, primed, stepped,
                          results)
        return results

    def observe_rows(self, views: list, counts_block: np.ndarray,
                     interval_index: int) -> list[PhaseEvent | None]:
        """Advance a fixed same-width population from one dense block.

        The fleet fast path: *views* is a population of rows sharing one
        histogram width and *counts_block* a ``(len(views), width)``
        matrix holding each row's interval histogram.  Equivalent to
        ``observe_many([(view, row, interval_index), ...])`` — same
        kernels, same zero-sum/starvation holds, bit-identical state —
        minus the per-item Python, which dominates at fleet scale.  Rows
        with mixed widths or ``RegionHistogram`` inputs must go through
        :meth:`observe_many`.
        """
        k = len(views)
        counts_block = np.ascontiguousarray(counts_block, dtype=np.float64)
        if counts_block.shape[0] != k:
            raise ValueError(
                f"counts block has {counts_block.shape[0]} rows for "
                f"{k} views")
        handles = np.fromiter((view._handle for view in views),
                              dtype=np.int64, count=k)
        width = counts_block.shape[1] if k else 0
        if k:
            widths = self._width[handles]
            if not np.all(widths == width):
                expected = int(widths[widths != width][0])
                raise ValueError(
                    f"histogram has {width} slots, detector expects "
                    f"{expected}")
        indices = np.full(k, interval_index, dtype=np.int64)
        results: list[PhaseEvent | None] = [None] * k
        active_mask = np.zeros(k, dtype=bool)
        primed: list[int] = []
        stepped: dict[int, tuple[int, bool, bool]] = {}
        if k:
            self._step_group(width, counts_block,
                             np.arange(k, dtype=np.int64), handles,
                             np.ones(k, dtype=bool), indices, active_mask,
                             primed, stepped, results)
        self._finish_step(handles, indices, active_mask, primed, stepped,
                          results)
        return results

    def _step_group(self, width: int, counts_block: np.ndarray,
                    positions: np.ndarray, group_handles: np.ndarray,
                    from_ndarray: np.ndarray, indices: np.ndarray,
                    active_mask: np.ndarray, primed: list,
                    stepped: dict, results: list) -> None:
        """Step one same-width group; mutates the per-call accumulators."""
        sums = counts_block.sum(axis=1)
        zero_hold = from_ndarray & (sums == 0)
        starved = sums < self._min_samples[group_handles]
        live = ~(zero_hold | starved)
        if not live.any():
            return
        live_positions = positions[live]
        live_handles = group_handles[live]
        live_counts = counts_block[live]
        active_mask[live_positions] = True
        self._active[live_handles] += 1

        store = self._sets[width]
        slots = self._set_slot[live_handles]
        prime_sel = ~self._has_set[live_handles]
        if prime_sel.any():
            store.rows[slots[prime_sel]] = live_counts[prime_sel]
            self._has_set[live_handles[prime_sel]] = True
            primed.extend(int(p) for p in live_positions[prime_sel])

        step_sel = ~prime_sel
        if not step_sel.any():
            return
        step_positions = live_positions[step_sel]
        step_handles = live_handles[step_sel]
        step_counts = live_counts[step_sel]
        stable_rows = store.rows[slots[step_sel]]
        r = batched_pearson(stable_rows, step_counts)
        if self._has_custom:
            for j in np.flatnonzero(
                    [self._custom_measure[h] for h in step_handles]):
                measure = self._measures[step_handles[j]]
                r[j] = float(measure(stable_rows[j], step_counts[j]))
        self._last_r[step_handles] = r

        similar = r >= self._threshold[step_handles]
        inputs = np.where(similar, self._input_similar,
                          self._input_dissimilar)
        before = self._state[step_handles]
        after = self.machine.next_state[before, inputs]
        changed = self.machine.phase_change[before, inputs]
        updated = self.machine.updates_stable_set[before, inputs]
        frozen = changed & self._stable_vec[after]
        if updated.any():
            store.rows[slots[step_sel][updated]] = step_counts[updated]
        self._state[step_handles] = after

        phase_states = self.machine.phase_states
        for j in range(step_positions.size):
            position = int(step_positions[j])
            stepped[position] = (int(before[j]), bool(updated[j]),
                                 bool(frozen[j]))
            if changed[j]:
                stable_after = bool(self._stable_vec[after[j]])
                event = PhaseEvent(
                    interval_index=int(indices[position]),
                    kind=(PhaseEventKind.BECAME_STABLE if stable_after
                          else PhaseEventKind.BECAME_UNSTABLE),
                    state_from=phase_states[int(before[j])],
                    state_to=phase_states[int(after[j])],
                    detail=f"r={float(r[j]):.4f}")
                results[position] = event
                self._events[int(step_handles[j])].append(event)

    def _finish_step(self, handles: np.ndarray, indices: np.ndarray,
                     active_mask: np.ndarray, primed: list, stepped: dict,
                     results: list) -> None:
        """Close one bank step: stable-time accounting, log, telemetry."""
        if active_mask.any():
            active_handles = handles[active_mask]
            self._stable_ivals[active_handles] += \
                self._stable_vec[self._state[active_handles]]

        self._log.append(_StepRecord(
            handles=handles,
            interval_indices=indices,
            had_samples=active_mask,
            r_values=self._last_r[handles],
            states=self._state[handles],
            events={p: e for p, e in enumerate(results) if e is not None}))

        if any(bus.enabled for bus in self._distinct_buses):
            self._emit_telemetry(handles, indices, primed, stepped, results)

    # -- telemetry replay (cold path) ----------------------------------------

    def _emit_telemetry(self, handles, indices, primed, stepped,
                        results) -> None:
        """Re-emit per item, in order, exactly as the scalar detector."""
        primed_set = set(primed)
        phase_states = self.machine.phase_states
        for position in range(handles.size):
            handle = int(handles[position])
            bus = self._buses[handle]
            if not bus.enabled:
                continue
            index = int(indices[position])
            rid = self._rids[handle]
            if position in primed_set:
                bus.emit(StableSetUpdated(index, rid))
                continue
            info = stepped.get(position)
            if info is None:
                continue
            before, updated, frozen = info
            state_from = phase_states[before].value
            state_to = phase_states[int(self._state[handle])].value
            bus.emit(StateTransition(
                interval_index=index, detector="lpd", rid=rid,
                state_from=state_from, state_to=state_to,
                metric=float(self._last_r[handle])))
            if updated:
                bus.emit(StableSetUpdated(index, rid))
            if frozen:
                bus.emit(StableSetFrozen(index, rid))
            event = results[position]
            if event is not None:
                bus.emit(PhaseChange(
                    interval_index=index, detector="lpd", rid=rid,
                    kind=event.kind.value, state_from=state_from,
                    state_to=state_to, detail=event.detail))

    # -- lazy observation materialization ------------------------------------

    def materialize_observations(self) -> None:
        """Expand pending step records into per-row observation lists."""
        phase_states = self.machine.phase_states
        for record in self._log[self._materialized_logs:]:
            for position in range(record.handles.size):
                handle = int(record.handles[position])
                self._observations[handle].append(LpdObservation(
                    interval_index=int(record.interval_indices[position]),
                    r_value=float(record.r_values[position]),
                    had_samples=bool(record.had_samples[position]),
                    state=phase_states[int(record.states[position])],
                    event=record.events.get(position)))
        self._materialized_logs = len(self._log)


class BatchLocalPhaseDetector:
    """Scalar-compatible view of one :class:`BatchLpdBank` row.

    Mirrors the read surface of
    :class:`~repro.core.lpd.LocalPhaseDetector`; ``observe`` routes
    through the bank as a single-item batch (bit-identical — a size-1
    group reduces through the same tree as the scalar 1-D arrays).
    """

    __slots__ = ("_bank", "_handle")

    def __init__(self, bank: BatchLpdBank, handle: int) -> None:
        self._bank = bank
        self._handle = handle

    # -- identity and configuration -----------------------------------------

    @property
    def n_instructions(self) -> int:
        return int(self._bank._width[self._handle])

    @property
    def thresholds(self) -> LpdThresholds:
        return self._bank._thresholds[self._handle]

    @property
    def measure(self) -> SimilarityMeasure:
        return self._bank._measures[self._handle]

    @property
    def effective_threshold(self) -> float:
        """The r-threshold in force for this region's size."""
        return float(self._bank._threshold[self._handle])

    # -- live state -----------------------------------------------------------

    @property
    def state(self) -> PhaseState:
        """Current machine state."""
        return self._bank.machine.phase_states[
            int(self._bank._state[self._handle])]

    @property
    def in_stable_phase(self) -> bool:
        """Whether the region is currently in a locally stable phase."""
        return bool(self._bank._stable_vec[
            int(self._bank._state[self._handle])])

    @property
    def last_r(self) -> float:
        """Most recently reported similarity value (0 before execution)."""
        return float(self._bank._last_r[self._handle])

    @property
    def active_intervals(self) -> int:
        return int(self._bank._active[self._handle])

    @property
    def stable_intervals(self) -> int:
        return int(self._bank._stable_ivals[self._handle])

    @property
    def events(self) -> list[PhaseEvent]:
        """Phase changes emitted so far (live list, like the scalar's)."""
        return self._bank._events[self._handle]

    @property
    def observations(self) -> list[LpdObservation]:
        """Per-interval records, materialized from the bank's step log."""
        self._bank.materialize_observations()
        return self._bank._observations[self._handle]

    def stable_set(self) -> np.ndarray | None:
        """Copy of the current stable-set histogram, or ``None`` if unset."""
        bank = self._bank
        if not bank._has_set[self._handle]:
            return None
        store = bank._sets[int(bank._width[self._handle])]
        return store.rows[int(bank._set_slot[self._handle])].copy()

    # -- actions ---------------------------------------------------------------

    def observe(self, histogram, interval_index: int) -> PhaseEvent | None:
        """Process one interval for this row only (single-item batch)."""
        return self._bank.observe_many(
            [(self, histogram, interval_index)])[0]

    def reset(self) -> None:
        """Re-enter the initial unstable state, dropping the stable set."""
        self._bank.reset_row(self._handle)

    # -- statistics ------------------------------------------------------------

    def stable_time_fraction(self) -> float:
        """Fraction of the region's active intervals spent stable."""
        if self.active_intervals == 0:
            return 0.0
        return self.stable_intervals / self.active_intervals

    def phase_change_count(self) -> int:
        """Number of phase changes emitted so far."""
        return len(self.events)
