"""Preallocated per-shard ring buffers for zero-copy interval ingestion.

A :class:`ShardRing` owns one ``(n_lanes, capacity)`` int64 matrix: every
lane of a shard (a :class:`~repro.batch.session.BatchSession`) writes its
queued samples into its row instead of accumulating per-batch arrays.
Because the capacity is always a multiple of the interval size and reads
advance one whole interval at a time, a popped interval NEVER wraps —
:meth:`take_round` hands the consumer direct views into the matrix, and
when every ready lane is read-aligned (the lockstep fleet case) the
whole round is a single 2-D column slice feeding
:meth:`~repro.batch.gpd.BatchGpdBank.observe_block` with zero copies.

Ownership rule: a view returned by :meth:`take_round` (or one of its
rows) aliases ring storage that is considered free once popped.  It
stays valid until the next :meth:`push` on any of its lanes — sessions
consume a round completely before feeding more, which satisfies this by
construction.  Callers that retain interval samples beyond the round
must copy.  Writes may wrap (they split), and a push that outgrows the
ring re-linearizes every lane's unread samples to column zero, doubling
the capacity — amortized O(1) per sample, like the list-of-arrays queue
this replaces, but without the per-interval ``np.concatenate``.
"""

from __future__ import annotations

import numpy as np

from repro.batch.indexing import as_slice

__all__ = ["ShardRing"]

#: Default ring capacity, in intervals per lane.
_DEFAULT_INTERVALS = 4


class ShardRing:
    """Fixed-interval sample queues for all lanes of one shard."""

    def __init__(self, n_lanes: int, interval_size: int,
                 capacity_intervals: int = _DEFAULT_INTERVALS) -> None:
        if interval_size < 1:
            raise ValueError(
                f"interval size must be positive, got {interval_size}")
        if capacity_intervals < 1:
            raise ValueError(
                f"ring capacity must be at least one interval, got "
                f"{capacity_intervals}")
        self.interval_size = interval_size
        self.capacity = interval_size * capacity_intervals
        self.data = np.zeros((n_lanes, self.capacity), dtype=np.int64)
        self._read = np.zeros(n_lanes, dtype=np.int64)
        self._fill = np.zeros(n_lanes, dtype=np.int64)

    @property
    def n_lanes(self) -> int:
        return self.data.shape[0]

    # -- pickling ------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Serialize only logical state: per-lane unread samples.

        The preallocated matrix is scratch capacity — freed columns hold
        stale samples that are never read again — so a snapshot carries
        just each lane's unread run, re-linearized.  Restoring rebuilds
        the matrix at the same capacity with every read pointer at
        column zero; the unread sample *sequence*, which is the only
        thing :meth:`take_interval`/:meth:`take_round` ever observe, is
        preserved exactly.
        """
        unread = []
        for lane in range(self.data.shape[0]):
            fill = int(self._fill[lane])
            read = int(self._read[lane])
            first = min(fill, self.capacity - read)
            row = np.empty(fill, dtype=np.int64)
            row[:first] = self.data[lane, read:read + first]
            if first < fill:
                row[first:] = self.data[lane, :fill - first]
            unread.append(row)
        return {"interval_size": self.interval_size,
                "capacity": self.capacity, "unread": unread}

    def __setstate__(self, state: dict) -> None:
        self.interval_size = state["interval_size"]
        self.capacity = state["capacity"]
        unread = state["unread"]
        self.data = np.zeros((len(unread), self.capacity), dtype=np.int64)
        self._read = np.zeros(len(unread), dtype=np.int64)
        self._fill = np.zeros(len(unread), dtype=np.int64)
        for lane, row in enumerate(unread):
            self.data[lane, :row.size] = row
            self._fill[lane] = row.size

    def add_lane(self) -> int:
        """Append one empty lane row; returns its index."""
        lane = self.data.shape[0]
        self.data = np.vstack(
            [self.data, np.zeros((1, self.capacity), dtype=np.int64)])
        self._read = np.append(self._read, 0)
        self._fill = np.append(self._fill, 0)
        return lane

    def fill(self, lane: int) -> int:
        """Unread samples currently queued for *lane*."""
        return int(self._fill[lane])

    def pending_intervals(self, lane: int) -> int:
        """Full intervals *lane* could pop right now."""
        return int(self._fill[lane]) // self.interval_size

    def ready_lanes(self) -> np.ndarray:
        """Indices of lanes holding at least one full interval."""
        return np.flatnonzero(self._fill >= self.interval_size)

    # -- writing -------------------------------------------------------------

    def _grow(self, needed: int) -> None:
        """Re-linearize every lane to column 0 in a larger matrix."""
        capacity = self.capacity
        while capacity < needed:
            capacity *= 2
        grown = np.zeros((self.data.shape[0], capacity), dtype=np.int64)
        for lane in range(self.data.shape[0]):
            fill = int(self._fill[lane])
            if fill == 0:
                continue
            read = int(self._read[lane])
            first = min(fill, self.capacity - read)
            grown[lane, :first] = self.data[lane, read:read + first]
            if first < fill:
                grown[lane, first:fill] = self.data[lane, :fill - first]
        self.data = grown
        self.capacity = capacity
        self._read[:] = 0

    def push(self, lane: int, pcs: np.ndarray) -> int:
        """Append samples to *lane*'s queue; returns pending intervals.

        Invalidates any views previously handed out for this ring (see
        the module ownership rule).
        """
        n = int(pcs.size)
        fill = int(self._fill[lane])
        if fill + n > self.capacity:
            self._grow(fill + n)
        write = (int(self._read[lane]) + fill) % self.capacity
        first = min(n, self.capacity - write)
        self.data[lane, write:write + first] = pcs[:first]
        if first < n:
            self.data[lane, :n - first] = pcs[first:]
        self._fill[lane] = fill + n
        return (fill + n) // self.interval_size

    # -- reading -------------------------------------------------------------

    def take_interval(self, lane: int) -> np.ndarray:
        """Pop one interval from *lane*; returns a view (never wraps)."""
        size = self.interval_size
        if self._fill[lane] < size:
            raise ValueError(
                f"lane {lane} holds {int(self._fill[lane])} samples; an "
                f"interval needs {size}")
        read = int(self._read[lane])
        view = self.data[lane, read:read + size]
        self._read[lane] = (read + size) % self.capacity
        self._fill[lane] -= size
        return view

    def take_round(self, lanes: np.ndarray) -> np.ndarray:
        """Pop one interval from each of *lanes*; returns a 2-D block.

        When all popped lanes share one read column — lockstep fleets
        always do — and form a contiguous range, the block is a direct
        view of ring storage; otherwise it is gathered with one
        vectorized copy (aligned, scattered lanes) or a per-lane loop
        (ragged read positions).
        """
        size = self.interval_size
        lanes = np.asarray(lanes, dtype=np.int64)
        if lanes.size == 0:
            return np.empty((0, size), dtype=np.int64)
        if np.any(self._fill[lanes] < size):
            short = lanes[self._fill[lanes] < size][0]
            raise ValueError(
                f"lane {int(short)} holds {int(self._fill[short])} "
                f"samples; an interval needs {size}")
        columns = self._read[lanes]
        start = int(columns[0])
        if np.all(columns == start):
            row_index = as_slice(lanes)
            if row_index is not None:
                block = self.data[row_index, start:start + size]
            else:
                block = self.data[lanes, start:start + size]
        else:
            block = np.empty((lanes.size, size), dtype=np.int64)
            for i, lane in enumerate(lanes):
                read = int(self._read[lane])
                block[i] = self.data[lane, read:read + size]
        self._read[lanes] = (columns + size) % self.capacity
        self._fill[lanes] -= size
        return block
