"""Compile declarative machine specs into integer transition tables.

The scalar detectors branch on enum states; the batch backend keeps one
integer state per detector row and steps every row with two fancy-indexed
table lookups (``next_state[state, input]``).  The tables are compiled
from the same :class:`~repro.core.states.MachineSpec` objects the
``repro-check`` model checker verifies against the imperative detectors,
so the vectorized step inherits the checker's equivalence guarantee:
spec == imperative (checked) and table == spec (compiled here, by
construction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.states import MachineSpec, PhaseState
from repro.errors import ConfigError

__all__ = ["CompiledMachine", "compile_machine"]


@dataclass(frozen=True)
class CompiledMachine:
    """A :class:`MachineSpec` lowered to dense integer lookup tables.

    Attributes
    ----------
    spec:
        The source spec (kept for introspection and error messages).
    state_index, input_index:
        Label -> row/column maps for the tables below.
    next_state:
        ``(S, I)`` int64 table of successor state indices.
    phase_change:
        ``(S, I)`` bool table: the edge crosses the stable/unstable
        boundary (the paper's dotted transitions).
    updates_stable_set:
        ``(S, I)`` bool table (LPD only; all-False for the GPD).
    stable:
        ``(S,)`` bool vector: the state sits on the stable side.  For the
        GPD this is the declared-stable flag, which the spec fixes as a
        pure function of state.
    initial:
        Index of the start state.
    phase_states:
        Per state index, the :class:`PhaseState` the implementation
        reports (dwell states ``less_stable@k`` map to ``LESS_STABLE``).
    """

    spec: MachineSpec
    state_index: dict[str, int]
    input_index: dict[str, int]
    next_state: np.ndarray
    phase_change: np.ndarray
    updates_stable_set: np.ndarray
    stable: np.ndarray
    initial: int
    phase_states: tuple[PhaseState, ...]


def compile_machine(spec: MachineSpec) -> CompiledMachine:
    """Lower *spec* to dense arrays; reject incomplete tables.

    An incomplete spec (a missing ``(state, input)`` pair) would leave a
    hole the vectorized step silently reads as garbage, so it is a
    configuration error here even though :meth:`MachineSpec.next_state`
    only raises lazily.
    """
    state_index = {label: i for i, label in enumerate(spec.states)}
    input_index = {label: i for i, label in enumerate(spec.inputs)}
    n_states = len(spec.states)
    n_inputs = len(spec.inputs)
    next_state = np.full((n_states, n_inputs), -1, dtype=np.int64)
    phase_change = np.zeros((n_states, n_inputs), dtype=bool)
    updates = np.zeros((n_states, n_inputs), dtype=bool)

    table = spec.table()
    for state in spec.states:
        for input_class in spec.inputs:
            rule = table.get((state, input_class))
            if rule is None:
                raise ConfigError(
                    f"machine {spec.name!r} has no rule for "
                    f"({state!r}, {input_class!r})")
            row = state_index[state]
            col = input_index[input_class]
            next_state[row, col] = state_index[rule.next_state]
            phase_change[row, col] = rule.phase_change
            updates[row, col] = rule.updates_stable_set

    stable = np.array([spec.is_stable(label) for label in spec.states],
                      dtype=bool)
    phase_states = tuple(spec.phase_state(label) for label in spec.states)
    next_state.setflags(write=False)
    phase_change.setflags(write=False)
    updates.setflags(write=False)
    stable.setflags(write=False)
    return CompiledMachine(
        spec=spec,
        state_index=state_index,
        input_index=input_index,
        next_state=next_state,
        phase_change=phase_change,
        updates_stable_set=updates,
        stable=stable,
        initial=state_index[spec.initial],
        phase_states=phase_states,
    )
