"""Operation-count cost ledger for phase-detection machinery.

The paper's Figures 15 and 16 compare the *overhead* of global vs. local
phase detection and of list vs. interval-tree sample attribution.  On real
hardware that overhead is wall-clock time; in this reproduction every
component charges its work — in abstract "operations", calibrated as one
simple ALU-scale step each — to a shared :class:`CostLedger`, and overhead
percentages are computed as charged operations per program cycle (one
operation ≈ one cycle, the same granularity the paper's percent-of-
execution-time numbers imply).

Wall-clock microbenchmarks of the actual Python implementations live in
``benchmarks/``; the ledger is what the figure-level experiments use, so
that cost shapes reflect the algorithms rather than numpy dispatch
overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Operations per region membership check in the list scheme (two bound
#: comparisons plus the loop step).
LIST_OPS_PER_CHECK = 3

#: Operations per histogram increment when a sample hits a region.
HIT_OPS = 2

#: Operations per instruction slot for one Pearson correlation (the
#: products and sums of the formula's five accumulators plus the final
#: combination, amortized per slot).
PEARSON_OPS_PER_SLOT = 12

#: Operations per sample for centroid accumulation (one add).
CENTROID_OPS_PER_SAMPLE = 1

#: Operations per interval for the GPD state machine (band statistics over
#: the history window plus threshold comparisons).
GPD_STATE_OPS_PER_INTERVAL = 64

#: Operations per interval per region for the LPD state machine.
LPD_STATE_OPS_PER_INTERVAL = 16

#: Operations to insert one interval while (re)building the tree, per
#: log-factor unit (n intervals cost ``TREE_BUILD_OPS * n * ceil(log2 n)``).
TREE_BUILD_OPS = 8

#: Fixed per-query overhead of a tree stab (call setup, pointer chasing,
#: result handling) on top of the measured node/list comparisons.  This is
#: what makes the tree "slightly higher [cost] from the increased cost of
#: maintaining the tree" for benchmarks with few regions (paper Figure 16)
#: while the O(log n + k) scaling wins for many regions.
TREE_QUERY_BASE_OPS = 6


@dataclass
class CostLedger:
    """Accumulated operation counts, by component.

    Attributes
    ----------
    gpd_ops:
        Centroid accumulation + state machine (the global detector).
    attribution_ops:
        Sample-to-region distribution (list scan or tree queries).
    similarity_ops:
        Per-region similarity computations (Pearson or an alternative).
    lpd_state_ops:
        Per-region state-machine updates.
    tree_maintenance_ops:
        Interval tree (re)builds.
    """

    gpd_ops: int = 0
    attribution_ops: int = 0
    similarity_ops: int = 0
    lpd_state_ops: int = 0
    tree_maintenance_ops: int = 0
    _events: list[str] = field(default_factory=list, repr=False)

    # -- charging ---------------------------------------------------------

    def charge_gpd_interval(self, n_samples: int) -> None:
        """One GPD interval: centroid over the buffer plus the machine."""
        self.gpd_ops += (n_samples * CENTROID_OPS_PER_SAMPLE
                         + GPD_STATE_OPS_PER_INTERVAL)

    def charge_list_attribution(self, n_samples: int, n_regions: int,
                                n_hits: int) -> None:
        """One interval of list-scan attribution."""
        self.attribution_ops += (n_samples * n_regions * LIST_OPS_PER_CHECK
                                 + n_hits * HIT_OPS)

    def charge_tree_attribution(self, query_ops: int, n_hits: int) -> None:
        """One interval of interval-tree attribution (measured query ops)."""
        self.attribution_ops += query_ops + n_hits * HIT_OPS

    def charge_tree_build(self, n_regions: int) -> None:
        """One tree (re)build after a region-set change."""
        if n_regions > 0:
            log = max(1, (n_regions - 1).bit_length())
            self.tree_maintenance_ops += TREE_BUILD_OPS * n_regions * log

    def charge_similarity(self, n_slots: int) -> None:
        """One per-region similarity computation over *n_slots* slots."""
        self.similarity_ops += n_slots * PEARSON_OPS_PER_SLOT

    def charge_lpd_state(self) -> None:
        """One per-region state-machine update."""
        self.lpd_state_ops += LPD_STATE_OPS_PER_INTERVAL

    # -- reading ------------------------------------------------------------

    @property
    def monitor_ops(self) -> int:
        """All local-phase-detection work (everything but the GPD)."""
        return (self.attribution_ops + self.similarity_ops
                + self.lpd_state_ops + self.tree_maintenance_ops)

    @property
    def total_ops(self) -> int:
        """All charged operations."""
        return self.gpd_ops + self.monitor_ops

    def overhead_fraction(self, total_cycles: int, ops: int | None = None) -> float:
        """Charged operations as a fraction of program cycles."""
        if total_cycles <= 0:
            raise ValueError("total_cycles must be positive")
        return (self.total_ops if ops is None else ops) / total_cycles

    def merged_with(self, other: "CostLedger") -> "CostLedger":
        """A new ledger with both ledgers' charges summed."""
        return CostLedger(
            gpd_ops=self.gpd_ops + other.gpd_ops,
            attribution_ops=self.attribution_ops + other.attribution_ops,
            similarity_ops=self.similarity_ops + other.similarity_ops,
            lpd_state_ops=self.lpd_state_ops + other.lpd_state_ops,
            tree_maintenance_ops=(self.tree_maintenance_ops
                                  + other.tree_maintenance_ops),
        )
