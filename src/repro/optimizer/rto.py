"""The simulated runtime optimizer: GPD-driven vs. LPD-driven policies.

Reproduces the comparison of the paper's section 3.2.4 (Figure 17):

* **RTO_ORIG** — the original centroid-based system, modified as the paper
  describes for a fair comparison: it "unpatch[es] traces on a phase
  change, so that optimizations could be re-evaluated using performance
  characteristics of the original code when the phase stabilizes".  While
  the global phase is stable, every sufficiently hot candidate region gets
  an optimized trace; when the global phase destabilizes, *all* traces are
  unpatched.
* **RTO_LPD** — the proposed system: a region monitor forms regions and
  runs a local phase detector per region; a region's trace is deployed
  when *its* phase stabilizes and unpatched when *its* phase changes,
  independent of every other region.

Both policies run over the same PMU sample stream (same seed), so the only
difference is the phase-detection policy — exactly the controlled variable
of the paper's experiment.  Optionally, a self-monitor verifies deployed
optimizations by watching the region's DPI and undoes harmful ones
(the paper's feedback mechanism).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.gpd import GlobalPhaseDetector
from repro.core.states import PhaseEventKind
from repro.core.thresholds import GpdThresholds, MonitorThresholds
from repro.costs import CostLedger
from repro.errors import ConfigError
from repro.monitor.region_monitor import RegionMonitor
from repro.monitor.self_monitoring import SelfMonitor
from repro.monitor.watchdog import (RegionWatchdog, WatchdogAction,
                                    WatchdogConfig)
from repro.optimizer.optimization import (DEFAULT_DEPLOY_COST, Optimization,
                                          OptimizationKind)
from repro.optimizer.timing import RtoTiming, TimingModel
from repro.optimizer.traces import TraceCache
from repro.program.behavior import RegionSpec
from repro.program.binary import SyntheticBinary
from repro.program.workload import WorkloadScript
from repro.sampling.events import SampleStream
from repro.sampling.pmu import simulate_sampling
from repro.telemetry.bus import EventBus, get_bus
from repro.telemetry.events import NO_REGION, Deoptimization

__all__ = ["RtoConfig", "RtoResult", "RTOSystem", "compare_policies"]


@dataclass(frozen=True, slots=True)
class RtoConfig:
    """Policy and cost knobs of one RTO run.

    Attributes
    ----------
    policy:
        ``"orig"`` (GPD-driven) or ``"lpd"`` (region-monitor-driven).
    hot_share:
        Minimum fraction of an interval's samples a candidate region needs
        before the ORIG policy optimizes it.
    deploy_cost:
        Cycles charged per deployment event.
    charge_detector_overhead:
        Charge detector operations to the critical path.  Off by default:
        the paper notes region monitoring "can occur in a separate thread,
        in parallel to the main program".
    self_monitoring:
        Verify deployed optimizations via DPI feedback and undo harmful
        ones (LPD policy only — ORIG has no per-region monitoring, which
        is the point).
    gpd:
        Thresholds for the ORIG policy's detector.
    monitor:
        Thresholds for the LPD policy's region monitor.
    watchdog:
        Optional watchdog/degradation policy (LPD policy only): starved
        or stuck-unstable regions are deoptimized (their traces
        unpatched) and retried with bounded budget and exponential
        backoff.
    """

    policy: str = "lpd"
    hot_share: float = 0.05
    deploy_cost: int = DEFAULT_DEPLOY_COST
    charge_detector_overhead: bool = False
    self_monitoring: bool = False
    gpd: GpdThresholds = field(default_factory=GpdThresholds)
    monitor: MonitorThresholds = field(default_factory=MonitorThresholds)
    watchdog: WatchdogConfig | None = None

    def __post_init__(self) -> None:
        if self.policy not in ("orig", "lpd"):
            raise ConfigError(f"unknown policy {self.policy!r}")
        if not 0.0 < self.hot_share < 1.0:
            raise ConfigError("hot_share must lie in (0, 1)")
        if self.deploy_cost < 0:
            raise ConfigError("deploy_cost must be non-negative")


@dataclass(frozen=True)
class RtoResult:
    """Outcome of one policy run.

    Attributes
    ----------
    policy:
        Which policy produced this result.
    timing:
        Cycle accounting (base, saved, overheads).
    n_deployments, n_unpatches:
        Trace-cache event counts.
    n_undone:
        Deployments reverted by self-monitoring.
    ledger:
        Detector cost ledger of the run.
    stable_fraction:
        Fraction of intervals the driving detector called stable (GPD
        declaration for ORIG; mean per-region stable fraction for LPD).
    n_watchdog_deopts:
        Regions deoptimized by the watchdog (0 without a watchdog).
    """

    policy: str
    timing: RtoTiming
    n_deployments: int
    n_unpatches: int
    n_undone: int
    ledger: CostLedger
    stable_fraction: float
    n_watchdog_deopts: int = 0

    @property
    def total_cycles(self) -> float:
        """Effective optimized duration."""
        return self.timing.total_cycles

    def speedup_over(self, other: "RtoResult") -> float:
        """Relative speedup of this run over *other*."""
        return self.timing.speedup_vs(other.timing)


class RTOSystem:
    """One benchmark + sampling period + policy, ready to run.

    Parameters
    ----------
    binary:
        The program (needed by LPD region formation).
    regions:
        Workload-region table; loop regions with non-zero
        ``opt_potential`` are optimization candidates.
    workload:
        The benchmark's workload script.
    sampling_period:
        PMU cycles per interrupt.
    config:
        Policy and cost knobs.
    seed:
        PMU seed — use the same seed across policies for a paired
        comparison.
    telemetry:
        Event bus threaded through the policy's detectors and the
        deoptimization events; defaults to the process-wide bus.
    """

    def __init__(self, binary: SyntheticBinary,
                 regions: dict[str, RegionSpec], workload: WorkloadScript,
                 sampling_period: int, config: RtoConfig | None = None,
                 seed: int = 0,
                 telemetry: EventBus | None = None) -> None:
        self.binary = binary
        self.regions = dict(regions)
        self.workload = workload
        self.sampling_period = sampling_period
        self.config = config or RtoConfig()
        self.seed = seed
        self._telemetry = telemetry if telemetry is not None else get_bus()

    # -- candidate plumbing ----------------------------------------------

    def _candidates(self) -> dict[str, Optimization]:
        """Optimizations for every loop region, keyed by region name."""
        candidates = {}
        for name, spec in self.regions.items():
            if spec.is_loop:
                candidates[name] = Optimization(
                    region_name=name, gain=spec.opt_potential,
                    kind=OptimizationKind.PREFETCH,
                    deploy_cost=self.config.deploy_cost)
        return candidates

    def _span_index(self) -> dict[tuple[int, int], str]:
        """Map of (start, end) span -> workload region name."""
        return {(spec.start, spec.end): name
                for name, spec in self.regions.items()}

    def _share_matrix(self, stream: SampleStream, n_intervals: int,
                      buffer_size: int,
                      names: list[str]) -> np.ndarray:
        """Per-interval sample share of each candidate region."""
        shares = np.zeros((n_intervals, len(names)))
        if n_intervals == 0:
            return shares
        window = stream.pcs[:n_intervals * buffer_size].reshape(
            n_intervals, buffer_size)
        for column, name in enumerate(names):
            spec = self.regions[name]
            inside = (window >= spec.start) & (window < spec.end)
            shares[:, column] = inside.mean(axis=1)
        return shares

    def _timing_model(self, n_intervals: int,
                      buffer_size: int) -> TimingModel:
        return TimingModel(
            pieces=self.workload.compile(),
            total_cycles=self.workload.total_cycles,
            interval_cycles=buffer_size * self.sampling_period,
            n_intervals=n_intervals,
            region_order=sorted(self.regions))

    # -- running -------------------------------------------------------------

    def run(self, stream: SampleStream | None = None) -> RtoResult:
        """Simulate the configured policy; returns its result."""
        if stream is None:
            stream = simulate_sampling(self.regions, self.workload,
                                       self.sampling_period, seed=self.seed)
        if self.config.policy == "orig":
            return self._run_orig(stream)
        return self._run_lpd(stream)

    def _finish(self, policy: str, stream: SampleStream, traces: TraceCache,
                ledger: CostLedger, stable_fraction: float,
                n_undone: int, buffer_size: int,
                n_watchdog_deopts: int = 0) -> RtoResult:
        n_intervals = stream.n_intervals(buffer_size)
        timing_model = self._timing_model(n_intervals, buffer_size)
        active = traces.active_matrix(n_intervals, timing_model.region_order)
        gains = {name: opt.gain
                 for name, opt in self._candidates().items()}
        detector_overhead = (ledger.total_ops
                             if self.config.charge_detector_overhead
                             else 0.0)
        timing = timing_model.evaluate(
            active, gains, traces.n_deployments, self.config.deploy_cost,
            detector_overhead=detector_overhead)
        return RtoResult(policy=policy, timing=timing,
                         n_deployments=traces.n_deployments,
                         n_unpatches=traces.n_unpatches,
                         n_undone=n_undone, ledger=ledger,
                         stable_fraction=stable_fraction,
                         n_watchdog_deopts=n_watchdog_deopts)

    def _run_orig(self, stream: SampleStream) -> RtoResult:
        buffer_size = self.config.monitor.buffer_size
        n_intervals = stream.n_intervals(buffer_size)
        candidates = self._candidates()
        names = sorted(candidates)
        shares = self._share_matrix(stream, n_intervals, buffer_size, names)
        centroids = stream.centroids(buffer_size)

        detector = GlobalPhaseDetector(self.config.gpd,
                                       telemetry=self._telemetry)
        ledger = CostLedger()
        traces = TraceCache()
        bus = self._telemetry
        for interval in range(n_intervals):
            ledger.charge_gpd_interval(buffer_size)
            event = detector.observe_centroid(float(centroids[interval]))
            if event is not None \
                    and event.kind is PhaseEventKind.BECAME_UNSTABLE:
                unpatched = traces.unpatch_all(interval)
                if bus.enabled and unpatched:
                    bus.emit(Deoptimization(interval, NO_REGION,
                                            "global-phase-change",
                                            "unpatch_all"))
            if detector.in_stable_phase:
                for column, name in enumerate(names):
                    if shares[interval, column] >= self.config.hot_share:
                        traces.deploy(name, interval)
        return self._finish("orig", stream, traces, ledger,
                            detector.stable_time_fraction(), 0, buffer_size)

    def _run_lpd(self, stream: SampleStream) -> RtoResult:
        buffer_size = self.config.monitor.buffer_size
        monitor = RegionMonitor(self.binary, self.config.monitor,
                                telemetry=self._telemetry)
        span_index = self._span_index()
        candidates = self._candidates()
        self_monitor = SelfMonitor() if self.config.self_monitoring else None
        watchdog = (RegionWatchdog(self.config.watchdog, monitor,
                                   telemetry=self._telemetry)
                    if self.config.watchdog is not None else None)
        bus = self._telemetry
        undone: set[str] = set()
        n_undone = 0
        n_watchdog_deopts = 0
        traces = TraceCache()

        for interval, window in stream.intervals(buffer_size):
            report = monitor.process_interval(stream.pcs[window], interval)
            for rid, event in report.events:
                region = monitor.region_record(rid)
                name = span_index.get((region.start, region.end))
                if name is None or name not in candidates:
                    continue
                if event.kind is PhaseEventKind.BECAME_STABLE:
                    if name in undone:
                        continue
                    if watchdog is not None \
                            and not watchdog.allows_deploy(rid):
                        continue  # backoff running or blacklisted
                    if traces.deploy(name, interval) \
                            and self_monitor is not None:
                        self_monitor.mark_deployed(rid)
                else:
                    if traces.unpatch(name, interval):
                        if bus.enabled:
                            bus.emit(Deoptimization(interval, rid,
                                                    "local-phase-change",
                                                    "unpatch"))
                        if self_monitor is not None:
                            self_monitor.mark_unpatched(rid)
            if watchdog is not None:
                for wd_event in watchdog.observe_interval(report):
                    if wd_event.action is WatchdogAction.RETRY:
                        continue
                    n_watchdog_deopts += 1
                    region = monitor.region_record(wd_event.rid)
                    name = span_index.get((region.start, region.end))
                    if name is not None and name in candidates:
                        if traces.unpatch(name, interval) and bus.enabled:
                            bus.emit(Deoptimization(interval, wd_event.rid,
                                                    "watchdog", "unpatch"))
            if self_monitor is not None:
                self._self_monitor_step(monitor, traces, span_index,
                                        candidates, self_monitor, undone,
                                        interval)
                n_undone = len(undone)

        fractions = monitor.stable_time_fractions()
        stable_fraction = (float(np.mean(list(fractions.values())))
                           if fractions else 0.0)
        return self._finish("lpd", stream, traces, monitor.ledger,
                            stable_fraction, n_undone, buffer_size,
                            n_watchdog_deopts=n_watchdog_deopts)

    def _self_monitor_step(self, monitor: RegionMonitor, traces: TraceCache,
                           span_index: dict[tuple[int, int], str],
                           candidates: dict[str, Optimization],
                           self_monitor: SelfMonitor, undone: set[str],
                           interval: int) -> None:
        """Feed per-region DPI to the self-monitor and undo harmful
        optimizations."""
        for region in monitor.live_regions():
            name = span_index.get((region.start, region.end))
            if name is None or name not in candidates:
                continue
            spec = self.regions[name]
            deployed = traces.is_deployed(name)
            metric = (candidates[name].observed_dpi(spec.dpi) if deployed
                      else spec.dpi)
            self_monitor.observe(region.rid, metric)
            if deployed and self_monitor.should_undo(region.rid):
                traces.unpatch(name, interval)
                bus = self._telemetry
                if bus.enabled:
                    bus.emit(Deoptimization(interval, region.rid,
                                            "self-monitor", "unpatch"))
                self_monitor.mark_unpatched(region.rid)
                undone.add(name)


def compare_policies(binary: SyntheticBinary,
                     regions: dict[str, RegionSpec],
                     workload: WorkloadScript, sampling_period: int,
                     seed: int = 0,
                     config_overrides: dict | None = None,
                     fault_plan=None) -> tuple[RtoResult, RtoResult, float]:
    """Run ORIG and LPD on the same stream; return both plus the speedup.

    The returned float is the Figure 17 statistic: the relative speedup of
    RTO_LPD over RTO_ORIG.  With a ``fault_plan``
    (:class:`~repro.faults.FaultPlan`) both policies run over the same
    *faulted* stream — the adversarial-sampling variant of the comparison.
    """
    overrides = config_overrides or {}
    stream = simulate_sampling(regions, workload, sampling_period,
                               seed=seed)
    if fault_plan is not None:
        from repro.faults.inject import inject

        stream = inject(stream, fault_plan, seed=seed)
    orig = RTOSystem(binary, regions, workload, sampling_period,
                     RtoConfig(policy="orig", **overrides),
                     seed=seed).run(stream)
    lpd = RTOSystem(binary, regions, workload, sampling_period,
                    RtoConfig(policy="lpd", **overrides),
                    seed=seed).run(stream)
    return orig, lpd, lpd.speedup_over(orig)
