"""Runtime-optimizer simulation: traces, timing, policy comparison."""

from repro.optimizer.optimization import (DEFAULT_DEPLOY_COST, Optimization,
                                          OptimizationKind)
from repro.optimizer.rto import (RtoConfig, RtoResult, RTOSystem,
                                 compare_policies)
from repro.optimizer.timing import RtoTiming, TimingModel
from repro.optimizer.traces import TraceAction, TraceCache, TraceEvent

__all__ = [
    "DEFAULT_DEPLOY_COST",
    "Optimization",
    "OptimizationKind",
    "RtoConfig",
    "RtoResult",
    "RTOSystem",
    "compare_policies",
    "RtoTiming",
    "TimingModel",
    "TraceAction",
    "TraceCache",
    "TraceEvent",
]
