"""Optimization catalog for the simulated runtime optimizer.

The paper's prototype (ADORE on SPARC) deploys prefetching-style
optimizations to hot regions; reference [13] reports 35%/8%/9%/16% speedups
for mcf/mgrid/gap/fma3d.  We model an optimization's effect as a *gain*:
the fraction of the region's execution cycles removed while the optimized
trace is deployed.  Negative gains model the speculative failures
(prefetches that pollute the cache) that motivate self-monitoring.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError


class OptimizationKind(enum.Enum):
    """What kind of transformation the trace carries."""

    PREFETCH = "prefetch"          # data prefetch injection (the paper's)
    TRACE_LAYOUT = "trace_layout"  # straightened code layout
    GENERIC = "generic"


#: Default one-time cost of building, optimizing and patching one trace
#: (cycles).  ADORE-style optimizers run trace selection and code
#: generation on a helper thread; the patching itself still costs the
#: application pipeline flushes and icache churn.
DEFAULT_DEPLOY_COST = 2_000_000


@dataclass(frozen=True, slots=True)
class Optimization:
    """A deployable optimization for one region.

    Attributes
    ----------
    region_name:
        Workload-region name the optimization targets.
    gain:
        Fraction of the region's cycles removed while deployed (negative =
        the optimization hurts).
    kind:
        Transformation category.
    deploy_cost:
        One-time cycle cost per deployment event.
    """

    region_name: str
    gain: float
    kind: OptimizationKind = OptimizationKind.PREFETCH
    deploy_cost: int = DEFAULT_DEPLOY_COST

    def __post_init__(self) -> None:
        if not -1.0 < self.gain < 1.0:
            raise ConfigError(
                f"optimization gain {self.gain} outside (-1, 1)")
        if self.deploy_cost < 0:
            raise ConfigError("deploy_cost must be non-negative")

    def observed_dpi(self, baseline_dpi: float) -> float:
        """The region's DPI while this optimization is deployed.

        A working prefetch covers misses proportionally to its gain; a
        harmful one (negative gain) adds misses.  This is the metric the
        self-monitor watches.
        """
        return max(0.0, baseline_dpi * (1.0 - 2.0 * self.gain))
