"""Execution-time accounting for the simulated runtime optimizer.

The workload timeline is exact ground truth for how many cycles each region
executes in each interval, so the payoff of a deployment schedule can be
integrated analytically::

    saved = sum over (interval, region) of
            active[interval, region] * region_cycles[interval, region]
                                     * gain[region]
    total = base_cycles - saved + deployment_overhead (+ detector overhead)

This replaces the paper's wall-clock measurement on the UltraSPARC with a
model whose *relative* outcomes (which policy deploys more of the time on
which regions) carry the comparison — see DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.program.workload import Piece, region_cycles_per_window

__all__ = ["TimingModel", "RtoTiming"]


@dataclass(frozen=True)
class RtoTiming:
    """Cycle accounting of one policy run.

    Attributes
    ----------
    base_cycles:
        Unoptimized program duration.
    saved_cycles:
        Cycles removed by live optimizations.
    deploy_overhead_cycles:
        One-time deployment costs, summed.
    detector_overhead_cycles:
        Phase-detection work (0 unless the run charges it to the critical
        path; the paper notes monitoring can run on a separate core).
    """

    base_cycles: float
    saved_cycles: float
    deploy_overhead_cycles: float
    detector_overhead_cycles: float = 0.0

    @property
    def total_cycles(self) -> float:
        """Effective optimized duration."""
        return (self.base_cycles - self.saved_cycles
                + self.deploy_overhead_cycles
                + self.detector_overhead_cycles)

    def speedup_vs(self, other: "RtoTiming") -> float:
        """Relative speedup of *self* over *other* (0.10 = 10% faster)."""
        if self.total_cycles <= 0:
            raise ConfigError("degenerate timing: non-positive duration")
        return other.total_cycles / self.total_cycles - 1.0

    def speedup_vs_baseline(self) -> float:
        """Relative speedup of this run over no optimization at all."""
        if self.total_cycles <= 0:
            raise ConfigError("degenerate timing: non-positive duration")
        return self.base_cycles / self.total_cycles - 1.0


class TimingModel:
    """Per-interval region-cycle ground truth for one benchmark run.

    Parameters
    ----------
    pieces:
        Compiled workload timeline.
    total_cycles:
        Workload duration.
    interval_cycles:
        Cycles per buffer interval (buffer size x sampling period).
    n_intervals:
        Complete intervals in the run.
    region_order:
        Region names defining matrix columns.
    """

    def __init__(self, pieces: list[Piece], total_cycles: int,
                 interval_cycles: int, n_intervals: int,
                 region_order: list[str]) -> None:
        if interval_cycles <= 0:
            raise ConfigError("interval_cycles must be positive")
        if n_intervals < 0:
            raise ConfigError("n_intervals must be non-negative")
        self.total_cycles = total_cycles
        self.interval_cycles = interval_cycles
        self.n_intervals = n_intervals
        self.region_order = list(region_order)
        self.cycles_matrix = region_cycles_per_window(
            pieces, interval_cycles, n_intervals, self.region_order)

    def evaluate(self, active: np.ndarray, gains: dict[str, float],
                 n_deployments: int, deploy_cost: int,
                 detector_overhead: float = 0.0) -> RtoTiming:
        """Integrate a deployment schedule into cycle accounting.

        Parameters
        ----------
        active:
            Boolean ``(n_intervals, n_regions)`` activity matrix aligned
            with ``region_order``.
        gains:
            Region name -> gain fraction (missing regions gain 0).
        n_deployments:
            Deployment events (each pays ``deploy_cost``).
        deploy_cost:
            Cycles per deployment event.
        detector_overhead:
            Detector cycles charged to the critical path, if any.
        """
        if active.shape != self.cycles_matrix.shape:
            raise ConfigError(
                f"activity matrix shape {active.shape} does not match "
                f"timing matrix {self.cycles_matrix.shape}")
        gain_vector = np.array([gains.get(name, 0.0)
                                for name in self.region_order])
        saved = float((self.cycles_matrix * active * gain_vector).sum())
        return RtoTiming(
            base_cycles=float(self.total_cycles),
            saved_cycles=saved,
            deploy_overhead_cycles=float(n_deployments * deploy_cost),
            detector_overhead_cycles=float(detector_overhead))
