"""Deployed-trace bookkeeping: patching and unpatching over intervals.

The modified RTO the paper compares against "unpatch[es] traces on a phase
change, so that optimizations could be re-evaluated ... when the phase
stabilizes".  The trace cache records every deploy/unpatch with its
interval timestamp and can render an activity matrix: which regions'
optimizations were live during which intervals.

Deployment latency: a trace deployed during interval *t* (the optimizer
reacts to that interval's buffer) is effective from interval *t + 1*; an
unpatch at *t* removes the benefit from *t + 1* as well.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


class TraceAction(enum.Enum):
    """What happened to a region's trace."""

    DEPLOY = "deploy"
    UNPATCH = "unpatch"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One deploy or unpatch, timestamped by interval."""

    interval_index: int
    action: TraceAction
    region_name: str


@dataclass
class _Deployment:
    region_name: str
    start_interval: int
    end_interval: int | None = None  # None = still deployed


class TraceCache:
    """Tracks which regions have live optimized traces."""

    def __init__(self) -> None:
        self._active: dict[str, _Deployment] = {}
        self._history: list[_Deployment] = []
        self.events: list[TraceEvent] = []

    # -- mutation ---------------------------------------------------------

    def deploy(self, region_name: str, interval_index: int) -> bool:
        """Deploy a trace for the region; no-op if already deployed.

        Returns ``True`` if a new deployment happened.
        """
        if region_name in self._active:
            return False
        deployment = _Deployment(region_name, interval_index)
        self._active[region_name] = deployment
        self._history.append(deployment)
        self.events.append(TraceEvent(interval_index, TraceAction.DEPLOY,
                                      region_name))
        return True

    def unpatch(self, region_name: str, interval_index: int) -> bool:
        """Remove the region's trace; no-op if none is deployed."""
        deployment = self._active.pop(region_name, None)
        if deployment is None:
            return False
        deployment.end_interval = interval_index
        self.events.append(TraceEvent(interval_index, TraceAction.UNPATCH,
                                      region_name))
        return True

    def unpatch_all(self, interval_index: int) -> int:
        """Unpatch every live trace (the GPD policy's phase-change
        response); returns how many were removed."""
        removed = 0
        for region_name in list(self._active):
            if self.unpatch(region_name, interval_index):
                removed += 1
        return removed

    # -- queries ------------------------------------------------------------

    def is_deployed(self, region_name: str) -> bool:
        """Whether the region currently has a live trace."""
        return region_name in self._active

    @property
    def n_deployments(self) -> int:
        """Total deployment events over the run."""
        return sum(1 for e in self.events if e.action is TraceAction.DEPLOY)

    @property
    def n_unpatches(self) -> int:
        """Total unpatch events over the run."""
        return sum(1 for e in self.events if e.action is TraceAction.UNPATCH)

    def active_matrix(self, n_intervals: int,
                      region_order: list[str]) -> np.ndarray:
        """Boolean ``(n_intervals, n_regions)`` activity matrix.

        Entry ``[i, r]`` is ``True`` when region ``r``'s optimization was
        effective during interval ``i`` — i.e. it was deployed strictly
        before ``i`` and not unpatched before ``i``.
        """
        if n_intervals < 0:
            raise ConfigError("n_intervals must be non-negative")
        index = {name: i for i, name in enumerate(region_order)}
        matrix = np.zeros((n_intervals, len(region_order)), dtype=bool)
        for deployment in self._history:
            column = index.get(deployment.region_name)
            if column is None:
                continue
            first = deployment.start_interval + 1
            last = (n_intervals if deployment.end_interval is None
                    else deployment.end_interval + 1)
            if first < last:
                matrix[first:min(last, n_intervals), column] = True
        return matrix
