"""Period normalization: replay a recording at any sampling period.

A recorded trace was sampled at whatever period the recorder used; the
detectors are configured with their own sampling period (the paper
sweeps 45k-1.5M cycles).  Resampling bridges the two with a
**zero-order hold over a periodic tick grid**: ticks fire at ``k *
period`` (k = 1, 2, ...) on the trace's absolute timeline, and each
tick reports the most recent recorded sample at or before it — exactly
what a PMU interrupting a program at that instant would attribute the
time to.  Dwell time falls out naturally: a sample the program sat in
for ten ticks appears ten times, weighting histograms by time spent.

Two properties the suite pins down:

* **composition**: resampling at period P and then resampling the
  result at 2P is identical to resampling the original at 2P directly
  (the grids share the absolute origin, so the coarse grid's ticks are
  a subset of the fine grid's and zero-order holds collapse) — P to
  any integer multiple, in general;
* **determinism**: the tick grid and hold indices are a pure function
  of ``(times, period)``; no randomness, no wall clock.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IngestError
from repro.ingest.profile import TraceProfile

__all__ = ["resample_ticks", "resample_profile"]


def resample_ticks(times_ns: np.ndarray,
                   period_ns: int) -> tuple[np.ndarray, np.ndarray]:
    """Tick times and zero-order-hold sample indices for one grid.

    Ticks fire at ``k * period_ns`` for ``k = 1..floor(last /
    period_ns)`` on the same absolute timeline as *times_ns* (which
    must be non-decreasing).  Ticks before the first recorded sample
    are dropped — there is nothing to hold yet.  Returns ``(tick_times,
    indices)`` with ``indices[j]`` the position of the sample each tick
    reports.
    """
    if period_ns <= 0:
        raise IngestError("resampling period must be positive")
    times_ns = np.asarray(times_ns, dtype=np.int64)
    if times_ns.size == 0:
        raise IngestError("cannot resample an empty trace")
    last = int(times_ns[-1])
    n_ticks = last // int(period_ns)
    ticks = np.arange(1, n_ticks + 1, dtype=np.int64) * int(period_ns)
    indices = np.searchsorted(times_ns, ticks, side="right") - 1
    keep = indices >= 0
    return ticks[keep], indices[keep]


def resample_profile(profile: TraceProfile,
                     period_ns: int) -> TraceProfile:
    """A new profile holding the trace's value at every grid tick.

    The result keeps the absolute tick times (it is *not* rebased to
    zero) so that further resampling composes: ``resample_profile(
    resample_profile(p, P), 2 * P)`` equals ``resample_profile(p,
    2 * P)`` sample for sample.
    """
    ticks, indices = resample_ticks(profile.times_ns, period_ns)
    if ticks.size == 0:
        raise IngestError(
            f"resampling period {period_ns} exceeds the trace's "
            f"{int(profile.times_ns[-1])}ns span: no ticks fit")
    return TraceProfile(name=profile.name, provenance=profile.provenance,
                        dsos=profile.dsos,
                        dso_index=profile.dso_index[indices],
                        offsets=profile.offsets[indices],
                        times_ns=ticks)
