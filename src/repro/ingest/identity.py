"""Trace identity tokens for the experiment cache.

A recorded stream's cache identity is *everything that shapes its
replay*: which recording (the content checksum — never the file name
alone, a re-recorded fixture must miss), how recorded time maps to
virtual cycles, and how often the trace is tiled to extend a run.  The
``trace-token-incomplete`` rule of ``repro-check`` audits this module:
an ``*Identity`` dataclass must keep its ``token()`` complete, exactly
like fault-plan and CPD-threshold tokens — the inherited idiom of
enumerating ``fields(self)`` is safe by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["TraceIdentity"]


@dataclass(frozen=True, slots=True)
class TraceIdentity:
    """Cache-key component of one replayed recording.

    Attributes
    ----------
    name:
        The profile's name (human-readable half of the identity).
    checksum:
        The profile's content checksum
        (:attr:`~repro.ingest.profile.TraceProfile.checksum`).
    cycles_per_ns:
        Recorded-nanosecond to virtual-cycle scale factor.
    repeat:
        Back-to-back tilings of the recording in the replayed stream.
    """

    name: str
    checksum: str
    cycles_per_ns: float
    repeat: int

    def token(self) -> tuple:
        """Hashable cache-key component covering every field."""
        return ("trace",) + tuple(
            (f.name, getattr(self, f.name)) for f in fields(self))
