"""PC-to-region-space mapping: recorded addresses -> stable detector PCs.

The detectors consume program-counter values whose *relative geometry*
matters (histograms, centroids, region membership), not their absolute
magnitudes.  Recorded traces, however, carry virtual addresses that
change run to run: ASLR slides every DSO by a per-execution constant.
Profiles already store ASLR-free per-DSO offsets
(:func:`~repro.ingest.profile.profile_from_events`); this module lays
those DSOs out in one flat synthetic address space:

* DSOs are placed in table order (the profile sorts them by name), each
  starting at the previous segment's end rounded up to
  ``INSTRUCTION_BYTES`` plus a guard gap — samples from different DSOs
  can never alias into one region;
* a sample's PC is ``segment_base[dso] + offset``.

The layout is a pure function of the profile's DSO table and offsets,
so the same recording always maps to the same PCs — trace identity is
the content checksum, never the loader's dice roll.
"""

from __future__ import annotations

import numpy as np

from repro.core.histogram import INSTRUCTION_BYTES
from repro.errors import IngestError
from repro.ingest.profile import TraceProfile

__all__ = ["RegionSpaceMapper", "DSO_GUARD_SLOTS"]

#: Instruction slots of dead space between consecutive DSO segments.
DSO_GUARD_SLOTS = 64


class RegionSpaceMapper:
    """Deterministic flat layout of a profile's DSOs.

    Parameters
    ----------
    profile:
        The recording whose DSO spans define the layout.
    """

    def __init__(self, profile: TraceProfile) -> None:
        self.dsos = profile.dsos
        spans = np.zeros(len(profile.dsos), dtype=np.int64)
        for i in range(len(profile.dsos)):
            mask = profile.dso_index == i
            if np.any(mask):
                spans[i] = int(profile.offsets[mask].max()) + \
                    INSTRUCTION_BYTES
        gap = DSO_GUARD_SLOTS * INSTRUCTION_BYTES
        aligned = ((spans + INSTRUCTION_BYTES - 1)
                   // INSTRUCTION_BYTES) * INSTRUCTION_BYTES
        bases = np.concatenate(([0], np.cumsum(aligned + gap)[:-1]))
        self.spans = spans
        self.bases = bases.astype(np.int64)

    def pcs(self, dso_index: np.ndarray,
            offsets: np.ndarray) -> np.ndarray:
        """Map sample columns to synthetic PCs (int64)."""
        dso_index = np.asarray(dso_index)
        if dso_index.size and (int(dso_index.min()) < 0
                               or int(dso_index.max()) >= len(self.dsos)):
            raise IngestError(
                f"dso_index outside the mapper's {len(self.dsos)}-entry "
                f"DSO table")
        return self.bases[dso_index] + np.asarray(offsets, dtype=np.int64)

    def segment(self, dso: str) -> tuple[int, int]:
        """``(base, span)`` of one DSO's segment in the synthetic space."""
        try:
            index = self.dsos.index(dso)
        except ValueError:
            raise IngestError(
                f"DSO {dso!r} is not in the profile's table") from None
        return int(self.bases[index]), int(self.spans[index])
