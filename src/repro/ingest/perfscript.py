"""Tolerant parser for ``perf script`` sample records.

The expected shape is one sample per line, as produced by::

    perf script -F comm,pid,time,ip,sym,dso

for example::

    python3  4242  1234.567890:  55d2c4e012ab PyEval_EvalFrameDefault+0x12b (/usr/bin/python3.11)

Real ``perf script`` output is messy: comms contain spaces, symbols are
missing (``[unknown]``), kernel samples interleave with user ones,
truncated lines appear when a recording is cut short, and multi-process
recordings interleave comms.  A recorded trace feeds long detector runs,
so the parser's contract is *skip and count, never raise*: every line
either yields a :class:`PerfEvent` or increments a named drop counter in
:class:`ParseStats` — malformed input degrades the sample count, not the
run.

Timestamps are parsed exactly (decimal seconds -> integer nanoseconds,
no float round-trip), so formatting with :func:`format_perf_script` and
re-parsing is lossless.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["PerfEvent", "ParseStats", "parse_perf_script",
           "format_perf_script"]

#: Core record shape: comm (may contain spaces), pid, seconds timestamp,
#: hex instruction pointer, then symbol/DSO tail.
_LINE = re.compile(
    r"^\s*(?P<comm>.*?)\s+(?P<pid>\d+)\s+"
    r"(?P<sec>\d+)\.(?P<frac>\d+):\s+"
    r"(?P<ip>[0-9a-fA-F]+)\s*(?P<rest>.*)$")

#: The DSO is the last parenthesized token of the tail.
_DSO = re.compile(r"\((?P<dso>[^()]*)\)\s*$")

#: Symbol offset suffix (``main+0x1f4``) stripped from symbol names.
_SYM_OFFSET = re.compile(r"\+0x[0-9a-fA-F]+$")


@dataclass(frozen=True, slots=True)
class PerfEvent:
    """One parsed sample record."""

    comm: str
    pid: int
    time_ns: int
    ip: int
    sym: str
    dso: str


@dataclass
class ParseStats:
    """Skip-and-count bookkeeping for one parse.

    Attributes
    ----------
    parsed:
        Records successfully converted to :class:`PerfEvent`.
    ignored:
        Blank and ``#``-comment lines (well-formed non-records).
    reordered:
        Kept events whose timestamp ran backwards (stable-sorted later
        by :func:`~repro.ingest.profile.profile_from_events`).
    dropped:
        Reason -> count for every rejected line; reasons are
        ``truncated``, ``bad-time``, ``no-dso``, ``kernel`` and
        ``other-comm``.
    """

    parsed: int = 0
    ignored: int = 0
    reordered: int = 0
    dropped: dict[str, int] = field(default_factory=dict)

    def drop(self, reason: str) -> None:
        """Count one rejected line under *reason*."""
        self.dropped[reason] = self.dropped.get(reason, 0) + 1

    @property
    def total_dropped(self) -> int:
        """Lines rejected across all reasons."""
        return sum(self.dropped.values())

    def to_json(self) -> dict:
        """Manifest-ready counters."""
        return {"parsed": self.parsed, "ignored": self.ignored,
                "reordered": self.reordered,
                "dropped": dict(sorted(self.dropped.items()))}


def _parse_time_ns(sec: str, frac: str) -> int:
    """Exact decimal-seconds -> nanoseconds (no float round-trip)."""
    frac = (frac + "000000000")[:9]
    return int(sec) * 1_000_000_000 + int(frac)


def parse_perf_script(lines: Iterable[str], comm: str | None = None,
                      keep_kernel: bool = False
                      ) -> tuple[list[PerfEvent], ParseStats]:
    """Parse ``perf script`` text into events, skip-and-count style.

    Parameters
    ----------
    lines:
        The text, as an iterable of lines (or a whole string, which is
        split on newlines).
    comm:
        When given, keep only records of this command; others count as
        ``other-comm`` drops.  Multi-process recordings interleave
        comms, and a detector stream models *one* program.
    keep_kernel:
        Kernel-space samples (bracketed DSOs such as
        ``[kernel.kallsyms]`` or ``[vdso]``) are dropped by default —
        region monitoring models user code, and kernel addresses would
        smear the region space.  Pass ``True`` to keep them.

    Returns the events in file order (timestamps may run backwards;
    see :attr:`ParseStats.reordered`) and the parse counters.  Never
    raises on malformed input.
    """
    if isinstance(lines, str):
        lines = lines.splitlines()
    events: list[PerfEvent] = []
    stats = ParseStats()
    last_time = -1
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            stats.ignored += 1
            continue
        match = _LINE.match(line)
        if match is None:
            stats.drop("truncated" if _looks_truncated(stripped)
                       else "bad-time")
            continue
        rest = match.group("rest")
        dso_match = _DSO.search(rest)
        if dso_match is None:
            stats.drop("no-dso")
            continue
        dso = dso_match.group("dso").strip()
        if not dso:
            stats.drop("no-dso")
            continue
        if dso.startswith("[") and not keep_kernel:
            stats.drop("kernel")
            continue
        record_comm = match.group("comm")
        if comm is not None and record_comm != comm:
            stats.drop("other-comm")
            continue
        sym = _DSO.sub("", rest).strip()
        sym = _SYM_OFFSET.sub("", sym)
        if sym == "[unknown]":
            sym = ""
        time_ns = _parse_time_ns(match.group("sec"), match.group("frac"))
        if time_ns < last_time:
            stats.reordered += 1
        last_time = max(last_time, time_ns)
        events.append(PerfEvent(comm=record_comm,
                                pid=int(match.group("pid")),
                                time_ns=time_ns,
                                ip=int(match.group("ip"), 16),
                                sym=sym, dso=dso))
        stats.parsed += 1
    return events, stats


def _looks_truncated(stripped: str) -> bool:
    """Heuristic reason split: a record cut short vs a garbled time."""
    return ":" not in stripped or stripped.count(" ") < 3


def format_perf_script(events: Iterable[PerfEvent]) -> str:
    """Render events back to ``perf script -F comm,pid,time,ip,sym,dso``
    text.

    Used by the capture tool's built-in sampler (so environments
    without ``perf`` still exercise the full parse pipeline) and by the
    round-trip property suite; :func:`parse_perf_script` inverts it
    losslessly for events with normalized symbols.
    """
    lines = []
    for event in events:
        sec, ns = divmod(event.time_ns, 1_000_000_000)
        sym = event.sym if event.sym else "[unknown]"
        lines.append(f"{event.comm:>16s} {event.pid:6d} "
                     f"{sec}.{ns:09d}: {event.ip:16x} "
                     f"{sym} ({event.dso})")
    return "\n".join(lines) + ("\n" if lines else "")
