"""The compact trace-profile format: committed, checksummed recordings.

A **trace profile** is the intermediate a recording is reduced to
offline (by ``scripts/record_trace.py``) and the only artifact CI ever
touches — raw ``perf.data`` files are machine-bound and huge, while a
profile is a few tens of kilobytes of JSON that replays anywhere:

* a sorted DSO table plus, per sample, ``(dso_index, offset, time_ns)``;
* offsets are **per-DSO** (``ip - min(ip)`` of that DSO), so ASLR — which
  slides every mapping of a DSO by one constant — cancels out and the
  same program recorded twice has the same trace identity;
* times are rebased to the first sample and stored delta-encoded;
* a provenance manifest (command, tool, event, nominal period, parse
  counters) records where the profile came from;
* a sha256 content checksum covers the DSO table and sample arrays; it
  is verified on load and feeds the experiment cache keys via
  :class:`~repro.ingest.identity.TraceIdentity`, so a stale or edited
  fixture can never be served as a cache hit for the original.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.errors import IngestError
from repro.ingest.perfscript import ParseStats, PerfEvent

__all__ = ["PROFILE_FORMAT", "PROFILE_VERSION", "TraceProvenance",
           "TraceProfile", "profile_from_events", "save_profile",
           "load_profile"]

#: Wire-format tag and schema version of the JSON file.
PROFILE_FORMAT = "repro-trace-profile"
PROFILE_VERSION = 1


@dataclass(frozen=True)
class TraceProvenance:
    """Where a profile came from (the fixture manifest).

    ``command`` is the recorded program invocation, ``tool`` the
    recorder and its version (``perf script 6.5.0``, ``pysampler
    cpython-3.11.7``), ``event`` the sampled event (``cycles``,
    ``task-clock``), ``period_ns`` the nominal nanoseconds between
    recorded samples, ``comm`` the kept command name and ``parse`` the
    skip-and-count counters of the conversion.
    """

    command: str
    tool: str
    event: str
    period_ns: int
    comm: str = ""
    parse: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {"command": self.command, "tool": self.tool,
                "event": self.event, "period_ns": self.period_ns,
                "comm": self.comm, "parse": dict(self.parse)}

    @classmethod
    def from_json(cls, payload: dict) -> "TraceProvenance":
        return cls(command=str(payload.get("command", "")),
                   tool=str(payload.get("tool", "")),
                   event=str(payload.get("event", "")),
                   period_ns=int(payload.get("period_ns", 0)),
                   comm=str(payload.get("comm", "")),
                   parse=dict(payload.get("parse", {})))


@dataclass(frozen=True)
class TraceProfile:
    """One recorded execution, reduced to replayable sample columns.

    Attributes
    ----------
    name:
        Short fixture/recording name (cache keys carry it, prefixed
        ``trace:``).
    provenance:
        The manifest (see :class:`TraceProvenance`).
    dsos:
        Sorted DSO table; ``dso_index`` indexes into it.
    dso_index, offsets, times_ns:
        Parallel per-sample columns: DSO (int32), stable per-DSO byte
        offset (int64, >= 0) and nanosecond timestamp (int64,
        non-decreasing, first sample at 0 for freshly converted
        profiles — resampled ones keep their absolute tick times).
    """

    name: str
    provenance: TraceProvenance
    dsos: tuple[str, ...]
    dso_index: np.ndarray
    offsets: np.ndarray
    times_ns: np.ndarray

    def __post_init__(self) -> None:
        n = self.dso_index.size
        if n == 0:
            raise IngestError(f"trace profile {self.name!r} has no samples")
        if self.offsets.size != n or self.times_ns.size != n:
            raise IngestError(
                f"trace profile {self.name!r} has ragged columns: "
                f"{n} dso indexes, {self.offsets.size} offsets, "
                f"{self.times_ns.size} times")
        if not self.dsos:
            raise IngestError(f"trace profile {self.name!r} has no DSOs")
        if int(self.dso_index.min()) < 0 \
                or int(self.dso_index.max()) >= len(self.dsos):
            raise IngestError(
                f"trace profile {self.name!r} has a dso_index outside "
                f"its {len(self.dsos)}-entry DSO table")
        if int(self.offsets.min()) < 0:
            raise IngestError(
                f"trace profile {self.name!r} has a negative offset")
        if np.any(np.diff(self.times_ns) < 0):
            raise IngestError(
                f"trace profile {self.name!r} timestamps run backwards "
                f"(convert with profile_from_events, which sorts)")

    @property
    def n_samples(self) -> int:
        """Recorded sample count."""
        return int(self.dso_index.size)

    @property
    def duration_ns(self) -> int:
        """Nanoseconds spanned by the recording."""
        return int(self.times_ns[-1] - self.times_ns[0])

    @property
    def checksum(self) -> str:
        """Content fingerprint: sha256 over the DSO table and columns.

        Deliberately excludes ``name`` and provenance — identity is the
        *recorded behavior*; renaming a fixture or annotating its
        manifest does not invalidate cached streams, while touching one
        sample does.
        """
        digest = hashlib.sha256()
        digest.update("\x00".join(self.dsos).encode("utf-8"))
        digest.update(self.dso_index.astype("<i4").tobytes())
        digest.update(self.offsets.astype("<i8").tobytes())
        digest.update(self.times_ns.astype("<i8").tobytes())
        return digest.hexdigest()[:16]

    # -- serialization ------------------------------------------------------

    def to_json(self) -> dict:
        """The committed JSON document (times delta-encoded)."""
        times = self.times_ns.astype(np.int64)
        # First delta is the absolute first timestamp, so cumsum on load
        # recovers resampled profiles (whose times do not start at 0) too.
        deltas = np.diff(times, prepend=np.int64(0))
        return {
            "format": PROFILE_FORMAT,
            "version": PROFILE_VERSION,
            "name": self.name,
            "checksum": self.checksum,
            "provenance": self.provenance.to_json(),
            "dsos": list(self.dsos),
            "samples": {
                "dso_index": self.dso_index.astype(int).tolist(),
                "offset": self.offsets.astype(int).tolist(),
                "time_delta_ns": deltas.astype(int).tolist(),
            },
        }

    @classmethod
    def from_json(cls, payload: dict, verify: bool = True) -> "TraceProfile":
        """Rebuild a profile; verify format, version and checksum."""
        if payload.get("format") != PROFILE_FORMAT:
            raise IngestError(
                f"not a {PROFILE_FORMAT} document "
                f"(format={payload.get('format')!r})")
        if int(payload.get("version", -1)) != PROFILE_VERSION:
            raise IngestError(
                f"unsupported {PROFILE_FORMAT} version "
                f"{payload.get('version')!r} (expected {PROFILE_VERSION})")
        samples = payload.get("samples", {})
        try:
            deltas = np.asarray(samples["time_delta_ns"], dtype=np.int64)
            profile = cls(
                name=str(payload["name"]),
                provenance=TraceProvenance.from_json(
                    payload.get("provenance", {})),
                dsos=tuple(str(d) for d in payload["dsos"]),
                dso_index=np.asarray(samples["dso_index"], dtype=np.int32),
                offsets=np.asarray(samples["offset"], dtype=np.int64),
                times_ns=np.cumsum(deltas, dtype=np.int64),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise IngestError(
                f"malformed {PROFILE_FORMAT} document: {exc}") from exc
        declared = payload.get("checksum")
        if verify and declared != profile.checksum:
            raise IngestError(
                f"trace profile {profile.name!r} checksum mismatch: "
                f"file declares {declared!r}, content hashes to "
                f"{profile.checksum!r} — the fixture was edited or "
                f"corrupted")
        return profile


def profile_from_events(events: Iterable[PerfEvent], name: str,
                        provenance: TraceProvenance,
                        stats: ParseStats | None = None) -> TraceProfile:
    """Reduce parsed events to a :class:`TraceProfile`.

    Events are stable-sorted by timestamp (recordings flush ring
    buffers out of order), times are rebased to the first sample, the
    DSO table is name-sorted, and each sample's address becomes its
    offset from the lowest address seen in its DSO — the ASLR-stable
    coordinate.  *stats*, when given, is recorded into the manifest.
    """
    events = list(events)
    if not events:
        raise IngestError(
            f"cannot build trace profile {name!r}: no events survived "
            f"parsing")
    order = np.argsort(np.asarray([e.time_ns for e in events],
                                  dtype=np.int64), kind="stable")
    events = [events[i] for i in order.tolist()]

    dsos = tuple(sorted({e.dso for e in events}))
    index_of = {dso: i for i, dso in enumerate(dsos)}
    dso_index = np.asarray([index_of[e.dso] for e in events],
                           dtype=np.int32)
    ips = np.asarray([e.ip for e in events], dtype=np.int64)
    offsets = np.empty_like(ips)
    for i in range(len(dsos)):
        mask = dso_index == i
        offsets[mask] = ips[mask] - ips[mask].min()
    times = np.asarray([e.time_ns for e in events], dtype=np.int64)
    times = times - times[0]
    if stats is not None:
        provenance = TraceProvenance(
            command=provenance.command, tool=provenance.tool,
            event=provenance.event, period_ns=provenance.period_ns,
            comm=provenance.comm, parse=stats.to_json())
    return TraceProfile(name=name, provenance=provenance, dsos=dsos,
                        dso_index=dso_index, offsets=offsets,
                        times_ns=times)


def save_profile(profile: TraceProfile, path: str | Path) -> Path:
    """Write the committed JSON document; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(profile.to_json(), indent=1) + "\n",
                    encoding="utf-8")
    return path


def load_profile(path: str | Path, verify: bool = True) -> TraceProfile:
    """Load a committed profile, verifying its checksum by default."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise IngestError(
            f"cannot read trace profile {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise IngestError(
            f"cannot read trace profile {path}: not a JSON object")
    return TraceProfile.from_json(payload, verify=verify)
