"""Real-workload ingestion: recorded traces as detector input.

Every stream the detectors see elsewhere in this repository is synthetic
(:mod:`repro.sampling` simulates a PMU from scripted phase models).  This
package feeds them *recorded* program executions instead:

1. :mod:`repro.ingest.perfscript` parses ``perf script -F
   comm,pid,time,ip,sym,dso`` text tolerantly (skip-and-count, never
   raising into a run);
2. :mod:`repro.ingest.profile` condenses parsed events into a compact,
   committable **trace profile** — per-DSO stable offsets plus a
   provenance manifest and content checksum — so CI replays real
   recordings with no ``perf`` dependency;
3. :mod:`repro.ingest.resample` replays a profile at any configured
   sampling period (zero-order hold over a periodic tick grid, closed
   under composition: resampling at P then 2P equals direct 2P);
4. :mod:`repro.ingest.mapping` lays the recorded DSOs out in a stable
   synthetic address space, so ASLR never changes trace identity;
5. :mod:`repro.ingest.source` wraps it all as a :class:`TraceSource`
   producing the same :class:`~repro.sampling.events.SampleStream`
   contract the PMU simulator does — ``OnlineSession``, ``BatchSession``,
   the fault injectors and the watchdog work unchanged on recorded data.

Capture tooling lives in ``scripts/record_trace.py``; the committed
fixture corpus under ``tests/fixtures/traces/realtrace/`` drives the
``realtrace`` experiment family.
"""

from repro.ingest.identity import TraceIdentity
from repro.ingest.mapping import RegionSpaceMapper
from repro.ingest.perfscript import (ParseStats, PerfEvent,
                                     format_perf_script, parse_perf_script)
from repro.ingest.profile import (PROFILE_FORMAT, PROFILE_VERSION,
                                  TraceProfile, TraceProvenance,
                                  load_profile, profile_from_events,
                                  save_profile)
from repro.ingest.resample import resample_profile, resample_ticks
from repro.ingest.source import TraceSource

__all__ = [
    "ParseStats",
    "PerfEvent",
    "PROFILE_FORMAT",
    "PROFILE_VERSION",
    "RegionSpaceMapper",
    "TraceIdentity",
    "TraceProfile",
    "TraceProvenance",
    "TraceSource",
    "format_perf_script",
    "load_profile",
    "parse_perf_script",
    "profile_from_events",
    "resample_profile",
    "resample_ticks",
    "save_profile",
]
