"""TraceSource: a recorded profile behind the simulator's stream contract.

:class:`TraceSource` is to recorded data what
:class:`~repro.sampling.pmu.PMUSimulator` is to synthetic models: it
produces a :class:`~repro.sampling.events.SampleStream`, so everything
downstream — ``SampleBuffer`` overflow delivery, ``OnlineSession``,
``BatchSession`` lanes, fault injection, the watchdog, the experiment
cache — consumes recorded executions unchanged.

Replay mechanics:

* recorded nanoseconds become virtual cycles through ``cycles_per_ns``
  (default 1.0: one nanosecond is one cycle, i.e. a nominal 1 GHz
  machine — only the *relative* time scale matters to the detectors);
* the trace is resampled onto the configured ``sampling_period`` tick
  grid (zero-order hold, :mod:`repro.ingest.resample`);
* sample addresses are laid out ASLR-free by
  :class:`~repro.ingest.mapping.RegionSpaceMapper`;
* ``repeat`` tiles the recording back to back (each tile's timeline
  continues where the previous ended plus one nominal recording gap)
  so short fixtures can drive long detector runs;
* the stream's ``region_names`` are the recorded DSOs and
  ``region_ids`` each sample's DSO index — ground-truth-style labels
  for charts and agreement scoring, invisible to the detectors.

Everything is a pure function of ``(profile content, sampling_period,
cycles_per_ns, repeat)``; :meth:`TraceSource.identity` hands the
experiment cache exactly that fingerprint.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IngestError
from repro.ingest.identity import TraceIdentity
from repro.ingest.mapping import RegionSpaceMapper
from repro.ingest.profile import TraceProfile
from repro.ingest.resample import resample_ticks
from repro.sampling.events import SampleStream

__all__ = ["TraceSource"]


class TraceSource:
    """Replays one trace profile as a :class:`SampleStream`.

    Parameters
    ----------
    profile:
        The recording to replay.
    sampling_period:
        Virtual cycles per sampling interrupt (the same knob the PMU
        simulator takes; the paper sweeps 45k-1.5M).
    cycles_per_ns:
        Recorded-time scale: virtual cycles per recorded nanosecond.
    repeat:
        Number of back-to-back tilings of the recording.
    """

    def __init__(self, profile: TraceProfile, sampling_period: int,
                 cycles_per_ns: float = 1.0, repeat: int = 1) -> None:
        if sampling_period <= 0:
            raise IngestError("sampling_period must be positive")
        if cycles_per_ns <= 0.0:
            raise IngestError("cycles_per_ns must be positive")
        if repeat < 1:
            raise IngestError("repeat must be at least 1")
        self.profile = profile
        self.sampling_period = int(sampling_period)
        self.cycles_per_ns = float(cycles_per_ns)
        self.repeat = int(repeat)
        self.mapper = RegionSpaceMapper(profile)

    def identity(self) -> TraceIdentity:
        """The replay's cache-key fingerprint."""
        return TraceIdentity(name=self.profile.name,
                             checksum=self.profile.checksum,
                             cycles_per_ns=self.cycles_per_ns,
                             repeat=self.repeat)

    def _cycle_times(self) -> np.ndarray:
        """Recorded timestamps as virtual cycles, tiled ``repeat`` times.

        Rounding a non-decreasing sequence preserves order; each tile
        is shifted past the previous one by the recording's span plus
        one nominal inter-sample gap, so tiles never overlap.
        """
        profile = self.profile
        base = np.rint(profile.times_ns.astype(np.float64)
                       * self.cycles_per_ns).astype(np.int64)
        if self.repeat == 1:
            return base
        gap_ns = max(profile.provenance.period_ns, 1)
        stride = int(base[-1]) + max(
            int(round(gap_ns * self.cycles_per_ns)), 1)
        tiles = [base + k * stride for k in range(self.repeat)]
        return np.concatenate(tiles)

    def stream(self) -> SampleStream:
        """Build the replayed stream (deterministic, cache-friendly)."""
        profile = self.profile
        cycle_times = self._cycle_times()
        ticks, held = resample_ticks(cycle_times, self.sampling_period)
        if ticks.size == 0:
            raise IngestError(
                f"trace {profile.name!r} is shorter than one sampling "
                f"period ({self.sampling_period} cycles) at "
                f"cycles_per_ns={self.cycles_per_ns}; nothing to replay")
        source_index = held % profile.n_samples
        dso_index = profile.dso_index[source_index]
        pcs = self.mapper.pcs(dso_index, profile.offsets[source_index])
        total_cycles = int(cycle_times[-1]) + 1
        return SampleStream(
            pcs=pcs,
            cycles=ticks,
            dcache_miss=np.zeros(ticks.size, dtype=bool),
            region_ids=dso_index.astype(np.int32),
            region_names=profile.dsos,
            sampling_period=self.sampling_period,
            total_cycles=total_cycles,
        )
