"""Cache-key audit: every knob that shapes a run must be in its key.

The PR-2 bug class this guards against: a simulation helper grows a new
input (a config field, a parameter, a fault knob) that changes the
computed artifact but is *not* part of the ``StreamKey``/``GpdKey``/
``MonitorKey`` it is cached under — so stale artifacts are silently
served.  Three static rules:

``cache-key-field``
    In ``experiments/base.py``, every parameter of a helper that builds a
    ``*Key`` — and every ``config.<field>`` the helper reads — must appear
    inside the key constructor call.  Parameters named in
    :data:`RESULT_INERT_PARAMS` are exempt: they are observability plumbing
    that provably cannot change the computed artifact (the telemetry bus
    carries events *out* of a run; nothing reads it back), so keying on
    them would only fragment the cache.
``cache-key-no-faults``
    Every key dataclass in ``experiments/cache.py`` (and ``WarmTask``)
    must carry a ``faults`` field, and derived keys (``GpdKey``,
    ``MonitorKey``) must contain every field of ``StreamKey`` — an
    artifact's key cannot be coarser than its input stream's.
``fault-token-incomplete``
    A ``FaultSpec`` subclass in ``faults/model.py`` — or a
    ``ServiceFaultSpec`` subclass in ``faults/service.py`` — that
    overrides ``token()`` must mention every one of its dataclass
    fields; the inherited ``token()`` enumerates ``fields(self)`` and
    is always safe.
``cpd-token-incomplete``
    A ``*Thresholds`` dataclass in ``cpd/config.py`` must define a
    ``token()`` that either enumerates ``fields(self)`` (safe by
    construction, the shipped idiom) or mentions every dataclass field
    explicitly — CPD configurations feed experiment cache keys and
    hunt-report parameters, so an omitted knob is a stale-artifact bug
    of the same class ``fault-token-incomplete`` guards against.
``trace-token-incomplete``
    A ``*Identity`` dataclass in ``ingest/identity.py`` must define a
    ``token()`` that either enumerates ``fields(self)`` (safe by
    construction) or mentions every dataclass field explicitly — the
    token is the ``trace`` component of experiment cache keys, so a
    replay knob missing from it means a stale recorded stream can be
    served across knob values.
``snapshot-field-drift``
    The serve layer's :data:`~repro.serve.snapshot.SNAPSHOT_FIELDS`
    schema tuple must list exactly the fields of ``ShardSnapshot``, in
    order.  The codec checks this at runtime too, but only on the
    paths a test happens to execute; the static rule makes the drift a
    check-suite failure the moment the dataclass is edited.

All of these are pure AST analyses — nothing is imported or executed.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.checks.findings import Finding, Severity

__all__ = ["audit_cache_keys", "audit_base_helpers", "audit_key_classes",
           "audit_fault_tokens", "audit_cpd_tokens", "audit_trace_tokens",
           "audit_snapshot_fields", "RESULT_INERT_PARAMS"]

#: Helper parameters exempt from ``cache-key-field``: knobs that
#: provably cannot alter the computed artifact.  Keep this list short
#: and justified — every entry must be result-inert by construction.
#:
#: ``telemetry``
#:     Observability plumbing; the bus carries events *out* of a run
#:     and nothing reads it back (write-only).
#: ``kernel_backend``
#:     Which compiled-kernel implementation steps the batch hot path
#:     (``repro.batch.compiled``).  Selection is bit-inert by contract:
#:     the Numba backend is only ever chosen after an import-time probe
#:     shows it bitwise identical to the NumPy reference, so keying on
#:     it would fragment the cache across identical artifacts.
RESULT_INERT_PARAMS = frozenset({"telemetry", "kernel_backend"})


def _parse(path: Path) -> ast.Module | None:
    try:
        return ast.parse(path.read_text(encoding="utf-8"),
                         filename=str(path))
    except (OSError, SyntaxError):
        return None


def _dataclass_fields(cls: ast.ClassDef) -> list[str]:
    """Names of the annotated fields of a dataclass body."""
    return [stmt.target.id for stmt in cls.body
            if isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)]


def _names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _config_attrs_in(node: ast.AST, config_names: set[str]) -> set[str]:
    return {n.attr for n in ast.walk(node)
            if isinstance(n, ast.Attribute)
            and isinstance(n.value, ast.Name)
            and n.value.id in config_names}


def audit_key_classes(cache_path: Path, rel: str) -> tuple[
        list[Finding], set[str]]:
    """Check the key dataclasses; return findings and the key class names."""
    findings: list[Finding] = []
    tree = _parse(cache_path)
    if tree is None:
        return findings, set()

    key_classes: dict[str, ast.ClassDef] = {}
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and (
                node.name.endswith("Key") or node.name == "WarmTask"):
            key_classes[node.name] = node

    for name, cls in key_classes.items():
        if "faults" not in _dataclass_fields(cls):
            findings.append(Finding(
                rule="cache-key-no-faults", severity=Severity.ERROR,
                path=rel, line=cls.lineno,
                message=f"{name} has no 'faults' field: faulted and ideal "
                        f"artifacts of the same run would collide"))

    stream = key_classes.get("StreamKey")
    if stream is not None:
        stream_fields = set(_dataclass_fields(stream))
        for derived in ("GpdKey", "MonitorKey"):
            cls = key_classes.get(derived)
            if cls is None:
                continue
            missing = stream_fields - set(_dataclass_fields(cls))
            if missing:
                findings.append(Finding(
                    rule="cache-key-no-faults", severity=Severity.ERROR,
                    path=rel, line=cls.lineno,
                    message=f"{derived} lacks StreamKey field(s) "
                            f"{sorted(missing)}: a derived artifact's key "
                            f"cannot be coarser than its stream's"))
    return findings, set(key_classes) - {"WarmTask"}


def audit_base_helpers(base_path: Path, rel: str,
                       key_names: set[str]) -> list[Finding]:
    """Check that simulation helpers key on everything they consume."""
    findings: list[Finding] = []
    tree = _parse(base_path)
    if tree is None:
        return findings

    for func in tree.body:
        if not isinstance(func, ast.FunctionDef):
            continue
        key_calls = [node for node in ast.walk(func)
                     if isinstance(node, ast.Call)
                     and isinstance(node.func, ast.Name)
                     and node.func.id in key_names]
        if not key_calls:
            continue
        key_call = key_calls[0]

        params = [a.arg for a in (func.args.posonlyargs + func.args.args
                                  + func.args.kwonlyargs)]
        config_names = {p for p in params if "config" in p.lower()}

        keyed_names: set[str] = set()
        keyed_config_attrs: set[str] = set()
        for kw in key_call.keywords:
            keyed_names |= _names_in(kw.value)
            keyed_config_attrs |= _config_attrs_in(kw.value, config_names)

        # A parameter may flow into the key through a local, e.g.
        # ``faults = _fault_token(plan)`` then ``faults=faults``: chase
        # single-target assignments to a fixpoint.
        assigns = [stmt for stmt in ast.walk(func)
                   if isinstance(stmt, ast.Assign)
                   and len(stmt.targets) == 1
                   and isinstance(stmt.targets[0], ast.Name)]
        changed = True
        while changed:
            changed = False
            for stmt in assigns:
                if stmt.targets[0].id in keyed_names:
                    rhs_names = _names_in(stmt.value)
                    if not rhs_names <= keyed_names:
                        keyed_names |= rhs_names
                        keyed_config_attrs |= _config_attrs_in(
                            stmt.value, config_names)
                        changed = True

        for param in params:
            if param in keyed_names or param in RESULT_INERT_PARAMS:
                continue
            findings.append(Finding(
                rule="cache-key-field", severity=Severity.ERROR,
                path=rel, line=func.lineno,
                message=f"{func.name}() parameter '{param}' does not "
                        f"appear in its {key_call.func.id}: a caller can "
                        f"vary it without invalidating the cache"))

        read_attrs = _config_attrs_in(func, config_names)
        for attr in sorted(read_attrs - keyed_config_attrs):
            findings.append(Finding(
                rule="cache-key-field", severity=Severity.ERROR,
                path=rel, line=func.lineno,
                message=f"{func.name}() reads config.{attr} but its "
                        f"{key_call.func.id} does not include it; stale "
                        f"artifacts would be served across {attr} values"))
    return findings


def audit_fault_tokens(model_path: Path, rel: str) -> list[Finding]:
    """Check FaultSpec-shaped subclasses that override ``token()``.

    Applies to both fault hierarchies: stream-level ``FaultSpec``
    subclasses (``faults/model.py``) and service-level
    ``ServiceFaultSpec`` subclasses (``faults/service.py``) — any base
    name ending in ``FaultSpec`` opts a class in.  Kind-tag collisions
    are checked within one file, matching the per-registry namespaces.
    """
    findings: list[Finding] = []
    tree = _parse(model_path)
    if tree is None:
        return findings

    kinds: dict[str, str] = {}
    for cls in tree.body:
        if not isinstance(cls, ast.ClassDef):
            continue
        bases = {b.id for b in cls.bases if isinstance(b, ast.Name)}
        if not any(base.endswith("FaultSpec") for base in bases):
            continue

        for stmt in cls.body:
            if (isinstance(stmt, ast.Assign)
                    and any(isinstance(t, ast.Name) and t.id == "kind"
                            for t in stmt.targets)
                    and isinstance(stmt.value, ast.Constant)):
                kind = str(stmt.value.value)
                if kind in kinds:
                    findings.append(Finding(
                        rule="fault-kind-collision", severity=Severity.ERROR,
                        path=rel, line=cls.lineno,
                        message=f"{cls.name} reuses kind '{kind}' already "
                                f"taken by {kinds[kind]}: their cache "
                                f"tokens would be indistinguishable"))
                else:
                    kinds[kind] = cls.name

        token_def = next((stmt for stmt in cls.body
                          if isinstance(stmt, ast.FunctionDef)
                          and stmt.name == "token"), None)
        if token_def is None:
            continue  # inherited token() enumerates fields(self): safe
        mentioned = {n.attr for n in ast.walk(token_def)
                     if isinstance(n, ast.Attribute)}
        mentioned |= {n.value for n in ast.walk(token_def)
                      if isinstance(n, ast.Constant)
                      and isinstance(n.value, str)}
        for field_name in _dataclass_fields(cls):
            if field_name not in mentioned:
                findings.append(Finding(
                    rule="fault-token-incomplete", severity=Severity.ERROR,
                    path=rel, line=token_def.lineno,
                    message=f"{cls.name}.token() omits field "
                            f"'{field_name}': two specs differing only in "
                            f"{field_name} would share a cache key"))
    return findings


def audit_cpd_tokens(config_path: Path, rel: str) -> list[Finding]:
    """Check CPD threshold dataclasses keep the ``token()`` discipline.

    Any ``*Thresholds`` class in the CPD config module must define a
    ``token()``; one that enumerates ``fields(self)`` is safe by
    construction, otherwise every dataclass field must be mentioned —
    the same rule :func:`audit_fault_tokens` applies to fault specs.
    """
    findings: list[Finding] = []
    tree = _parse(config_path)
    if tree is None:
        return findings

    for cls in tree.body:
        if not isinstance(cls, ast.ClassDef) \
                or not cls.name.endswith("Thresholds"):
            continue
        token_def = next((stmt for stmt in cls.body
                          if isinstance(stmt, ast.FunctionDef)
                          and stmt.name == "token"), None)
        if token_def is None:
            findings.append(Finding(
                rule="cpd-token-incomplete", severity=Severity.ERROR,
                path=rel, line=cls.lineno,
                message=f"{cls.name} defines no token(): its "
                        f"configurations cannot discriminate cache keys "
                        f"or hunt-report parameters"))
            continue
        if "fields" in _names_in(token_def):
            continue  # enumerates fields(self): safe by construction
        mentioned = {n.attr for n in ast.walk(token_def)
                     if isinstance(n, ast.Attribute)}
        mentioned |= {n.value for n in ast.walk(token_def)
                      if isinstance(n, ast.Constant)
                      and isinstance(n.value, str)}
        for field_name in _dataclass_fields(cls):
            if field_name not in mentioned:
                findings.append(Finding(
                    rule="cpd-token-incomplete", severity=Severity.ERROR,
                    path=rel, line=token_def.lineno,
                    message=f"{cls.name}.token() omits field "
                            f"'{field_name}': two configurations "
                            f"differing only in {field_name} would share "
                            f"a cache token"))
    return findings


def audit_trace_tokens(identity_path: Path, rel: str) -> list[Finding]:
    """Check trace identity dataclasses keep the ``token()`` discipline.

    Any ``*Identity`` class in the ingest identity module must define a
    ``token()``; one that enumerates ``fields(self)`` is safe by
    construction, otherwise every dataclass field must be mentioned —
    the token is the ``trace`` discriminator of experiment cache keys
    (:func:`repro.experiments.base.trace_stream_for`), so an omitted
    replay knob is exactly the stale-artifact bug class
    ``cache-key-field`` guards against, one layer down.
    """
    findings: list[Finding] = []
    tree = _parse(identity_path)
    if tree is None:
        return findings

    for cls in tree.body:
        if not isinstance(cls, ast.ClassDef) \
                or not cls.name.endswith("Identity"):
            continue
        token_def = next((stmt for stmt in cls.body
                          if isinstance(stmt, ast.FunctionDef)
                          and stmt.name == "token"), None)
        if token_def is None:
            findings.append(Finding(
                rule="trace-token-incomplete", severity=Severity.ERROR,
                path=rel, line=cls.lineno,
                message=f"{cls.name} defines no token(): recorded-trace "
                        f"replays cannot discriminate cache keys"))
            continue
        if "fields" in _names_in(token_def):
            continue  # enumerates fields(self): safe by construction
        mentioned = {n.attr for n in ast.walk(token_def)
                     if isinstance(n, ast.Attribute)}
        mentioned |= {n.value for n in ast.walk(token_def)
                      if isinstance(n, ast.Constant)
                      and isinstance(n.value, str)}
        for field_name in _dataclass_fields(cls):
            if field_name not in mentioned:
                findings.append(Finding(
                    rule="trace-token-incomplete", severity=Severity.ERROR,
                    path=rel, line=token_def.lineno,
                    message=f"{cls.name}.token() omits field "
                            f"'{field_name}': two replays differing only "
                            f"in {field_name} would share a cache key"))
    return findings


def audit_snapshot_fields(snapshot_path: Path, rel: str) -> list[Finding]:
    """Check SNAPSHOT_FIELDS against the ShardSnapshot dataclass.

    The snapshot codec's schema tuple and the dataclass it describes
    live a screenful apart; a field added to one but not the other
    makes every snapshot un-decodable (best case) or silently drops
    state (worst case, if the runtime guard were ever loosened).
    """
    findings: list[Finding] = []
    tree = _parse(snapshot_path)
    if tree is None:
        return findings

    declared: tuple[str, ...] | None = None
    declared_line = 1
    snapshot_cls: ast.ClassDef | None = None
    for node in tree.body:
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "SNAPSHOT_FIELDS"):
            declared_line = node.lineno
            if isinstance(node.value, ast.Tuple):
                values = [e.value for e in node.value.elts
                          if isinstance(e, ast.Constant)
                          and isinstance(e.value, str)]
                if len(values) == len(node.value.elts):
                    declared = tuple(values)
        elif isinstance(node, ast.ClassDef) and node.name == "ShardSnapshot":
            snapshot_cls = node

    if declared is None:
        findings.append(Finding(
            rule="snapshot-field-drift", severity=Severity.ERROR,
            path=rel, line=declared_line,
            message="SNAPSHOT_FIELDS is missing or is not a literal tuple "
                    "of field-name strings; the snapshot schema cannot be "
                    "audited"))
        return findings
    if snapshot_cls is None:
        findings.append(Finding(
            rule="snapshot-field-drift", severity=Severity.ERROR,
            path=rel, line=declared_line,
            message="ShardSnapshot dataclass not found; SNAPSHOT_FIELDS "
                    "describes nothing"))
        return findings

    actual = tuple(_dataclass_fields(snapshot_cls))
    if actual != declared:
        findings.append(Finding(
            rule="snapshot-field-drift", severity=Severity.ERROR,
            path=rel, line=snapshot_cls.lineno,
            message=f"ShardSnapshot fields {actual} drifted from "
                    f"SNAPSHOT_FIELDS {declared}: update both and bump "
                    f"SNAPSHOT_VERSION"))
    return findings


def audit_cache_keys(repo_root: Path) -> list[Finding]:
    """Run every cache-key/schema rule against the repo's source tree."""
    src = repo_root / "src" / "repro"
    findings: list[Finding] = []
    cache_rel = "src/repro/experiments/cache.py"
    key_findings, key_names = audit_key_classes(
        src / "experiments" / "cache.py", cache_rel)
    findings += key_findings
    findings += audit_base_helpers(
        src / "experiments" / "base.py", "src/repro/experiments/base.py",
        key_names or {"StreamKey", "GpdKey", "MonitorKey"})
    findings += audit_fault_tokens(
        src / "faults" / "model.py", "src/repro/faults/model.py")
    findings += audit_fault_tokens(
        src / "faults" / "service.py", "src/repro/faults/service.py")
    findings += audit_cpd_tokens(
        src / "cpd" / "config.py", "src/repro/cpd/config.py")
    findings += audit_trace_tokens(
        src / "ingest" / "identity.py", "src/repro/ingest/identity.py")
    findings += audit_snapshot_fields(
        src / "serve" / "snapshot.py", "src/repro/serve/snapshot.py")
    return findings
