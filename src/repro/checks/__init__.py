"""``repro-check``: the repo's custom static-analysis suite.

Three pass families guard the bit-identical reproduction contract:

* :mod:`repro.checks.determinism` — AST lint against unseeded RNGs,
  wall-clock reads, hash-order set iteration, and float ``==``;
* :mod:`repro.checks.cachekeys` — audit that every simulation input is
  represented in its memoization key;
* :mod:`repro.checks.statemachine` — model checker proving the
  LPD/GPD implementations complete, deterministic, and equivalent to
  the declarative Figure 12 / Figure 1 transition tables.

Run ``repro-check`` (or ``python -m repro.checks.cli``) at the repo root;
see :mod:`repro.checks.cli` for the flag reference, inline
``# repro: allow[rule]`` suppressions, and the baseline workflow.
"""

from repro.checks.baseline import Baseline
from repro.checks.findings import Finding, Severity, sort_findings
from repro.checks.registry import (ALL_RULES, DEFAULT_PATHS, CheckReport,
                                   run_checks)
from repro.checks.suppress import SuppressionIndex

__all__ = [
    "ALL_RULES",
    "Baseline",
    "CheckReport",
    "DEFAULT_PATHS",
    "Finding",
    "Severity",
    "SuppressionIndex",
    "run_checks",
    "sort_findings",
]
