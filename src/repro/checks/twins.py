"""Kernel-twin contract audit for ``batch/compiled/``.

The compiled hot path ships every kernel twice — a Numba JIT version
and the pure-NumPy reference — and the import-time probe promotes the
JIT pair only when the two are bit-identical.  That architecture is
only as strong as its contracts, which these rules verify statically:

``twin-missing``
    Every public kernel in one backend must exist in the other; a
    one-sided kernel silently falls back (or crashes) depending on
    which backend won the probe.
``twin-signature-mismatch``
    Twin kernels must take identical parameter names in identical
    order (and matching defaults) — callers hold references to either
    module's function, so keyword calls must mean the same thing.
``twin-export-gap``
    The package ``__init__`` must re-export every public kernel from
    the selected backend and list it in ``__all__``; a kernel missing
    from the selection block pins callers to one backend.
``twin-probe-gap``
    ``_probe_matches`` must exercise every exported kernel on both the
    ``jit`` and ``ref`` modules; an unprobed kernel can ship a
    miscompilation the differential gate never sees.
``twin-dtype-implicit``
    Array allocations (``np.empty``/``zeros``/``ones``/``full``)
    inside a public kernel must pass an explicit ``dtype=``; inferred
    dtypes are platform-dependent, which breaks the bit-identical
    contract between twins.
``twin-accumulation-order``
    A ``+=``/``-=`` accumulation inside a loop in a public JIT kernel
    is a sequential reduction, which disagrees in the last ulp with
    NumPy's pairwise summation; reductions must route through the
    backend's ``_pairwise_sum`` replica (itself exempt — it *is* the
    sanctioned accumulator).
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.checks.findings import Finding, Severity

__all__ = ["audit_twins", "COMPILED_DIR"]

#: The compiled-kernel package, relative to the repo root.
COMPILED_DIR = "src/repro/batch/compiled"

_ALLOCATORS = frozenset({"empty", "zeros", "ones", "full",
                         "empty_like", "zeros_like", "ones_like",
                         "full_like"})


def _parse(path: Path, rel: str,
           findings: list[Finding]) -> ast.Module | None:
    try:
        return ast.parse(path.read_text(encoding="utf-8"))
    except OSError:
        findings.append(Finding(
            rule="twin-missing", severity=Severity.ERROR, path=rel,
            line=0, message=f"kernel backend {rel} is missing"))
        return None
    except SyntaxError:
        return None  # the determinism lint reports parse-error


def _public_kernels(tree: ast.Module) -> dict[str, ast.FunctionDef]:
    return {node.name: node for node in tree.body
            if isinstance(node, ast.FunctionDef)
            and not node.name.startswith("_")}


def _signature(node: ast.FunctionDef) -> tuple[tuple[str, ...], int]:
    """(parameter names in order, number of defaults)."""
    args = node.args
    names = tuple(a.arg for a in args.posonlyargs + args.args
                  + args.kwonlyargs)
    return names, len(args.defaults) + sum(
        1 for d in args.kw_defaults if d is not None)


def _compare_backends(jit_tree: ast.Module, ref_tree: ast.Module,
                      jit_rel: str, ref_rel: str) -> list[Finding]:
    findings: list[Finding] = []
    jit_kernels = _public_kernels(jit_tree)
    ref_kernels = _public_kernels(ref_tree)
    for name in sorted(set(ref_kernels) - set(jit_kernels)):
        findings.append(Finding(
            rule="twin-missing", severity=Severity.ERROR, path=jit_rel,
            line=0,
            message=f"reference kernel {name} has no JIT twin"))
    for name in sorted(set(jit_kernels) - set(ref_kernels)):
        findings.append(Finding(
            rule="twin-missing", severity=Severity.ERROR, path=ref_rel,
            line=jit_kernels[name].lineno,
            message=f"JIT kernel {name} has no reference twin — "
                    f"nothing defines its semantics"))
    for name in sorted(set(jit_kernels) & set(ref_kernels)):
        jit_sig = _signature(jit_kernels[name])
        ref_sig = _signature(ref_kernels[name])
        if jit_sig != ref_sig:
            findings.append(Finding(
                rule="twin-signature-mismatch", severity=Severity.ERROR,
                path=jit_rel, line=jit_kernels[name].lineno,
                message=f"{name} signature {jit_sig[0]} (defaults: "
                        f"{jit_sig[1]}) != reference {ref_sig[0]} "
                        f"(defaults: {ref_sig[1]}); twins must be "
                        f"drop-in interchangeable"))
    return findings


def _audit_exports(init_tree: ast.Module, kernels: set[str],
                   init_rel: str) -> list[Finding]:
    findings: list[Finding] = []
    exported: set[str] = set()
    dunder_all: set[str] = set()
    probe: ast.FunctionDef | None = None
    for node in init_tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            target = node.targets[0].id
            if target == "__all__" and isinstance(node.value,
                                                  (ast.List, ast.Tuple)):
                dunder_all = {e.value for e in node.value.elts
                              if isinstance(e, ast.Constant)
                              and isinstance(e.value, str)}
            elif isinstance(node.value, ast.Attribute):
                exported.add(target)
        elif isinstance(node, ast.FunctionDef) \
                and node.name == "_probe_matches":
            probe = node

    for name in sorted(kernels - exported):
        findings.append(Finding(
            rule="twin-export-gap", severity=Severity.ERROR,
            path=init_rel, line=0,
            message=f"kernel {name} is not re-exported by the backend "
                    f"selection block; callers cannot reach the "
                    f"selected twin"))
    for name in sorted(kernels - dunder_all):
        findings.append(Finding(
            rule="twin-export-gap", severity=Severity.ERROR,
            path=init_rel, line=0,
            message=f"kernel {name} missing from __all__"))

    if probe is None:
        findings.append(Finding(
            rule="twin-probe-gap", severity=Severity.ERROR,
            path=init_rel, line=0,
            message="_probe_matches not found; the JIT backend is "
                    "promoted without a differential probe"))
        return findings
    probed: dict[str, set[str]] = {"jit": set(), "ref": set()}
    for node in ast.walk(probe):
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id in probed:
            probed[node.value.id].add(node.attr)
    for name in sorted(kernels):
        sides = [side for side in ("jit", "ref")
                 if name not in probed[side]]
        if sides:
            findings.append(Finding(
                rule="twin-probe-gap", severity=Severity.ERROR,
                path=init_rel, line=probe.lineno,
                message=f"kernel {name} is never probed on "
                        f"{' and '.join(sides)}; a bitwise mismatch "
                        f"in it would not demote the JIT backend"))
    return findings


def _audit_kernel_bodies(tree: ast.Module, rel: str,
                         jit: bool) -> list[Finding]:
    findings: list[Finding] = []
    for kernel in _public_kernels(tree).values():
        for node in ast.walk(kernel):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _ALLOCATORS \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id == "np" \
                    and node.func.attr not in ("empty_like", "zeros_like",
                                               "ones_like", "full_like") \
                    and not any(kw.arg == "dtype"
                                for kw in node.keywords):
                findings.append(Finding(
                    rule="twin-dtype-implicit", severity=Severity.ERROR,
                    path=rel, line=node.lineno,
                    message=f"{kernel.name}: np.{node.func.attr} "
                            f"without an explicit dtype=; inferred "
                            f"dtypes break the twin contract"))
        if not jit:
            continue
        for loop in ast.walk(kernel):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for node in ast.walk(loop):
                if isinstance(node, ast.AugAssign) \
                        and isinstance(node.op, (ast.Add, ast.Sub)) \
                        and isinstance(node.target, ast.Name):
                    findings.append(Finding(
                        rule="twin-accumulation-order",
                        severity=Severity.ERROR, path=rel,
                        line=node.lineno,
                        message=f"{kernel.name}: sequential "
                                f"accumulation onto "
                                f"{node.target.id!r} in a loop "
                                f"disagrees with NumPy's pairwise "
                                f"summation in the last ulp; route "
                                f"the reduction through "
                                f"_pairwise_sum"))
    return findings


def audit_twins(repo_root: Path) -> list[Finding]:
    """Run every twin-contract rule against ``batch/compiled/``."""
    findings: list[Finding] = []
    base = repo_root / COMPILED_DIR
    if not base.is_dir():
        return []  # no compiled package in this tree: nothing to audit
    jit_rel = f"{COMPILED_DIR}/numba_backend.py"
    ref_rel = f"{COMPILED_DIR}/numpy_backend.py"
    init_rel = f"{COMPILED_DIR}/__init__.py"
    jit_tree = _parse(base / "numba_backend.py", jit_rel, findings)
    ref_tree = _parse(base / "numpy_backend.py", ref_rel, findings)
    init_tree = _parse(base / "__init__.py", init_rel, findings)
    if jit_tree is None or ref_tree is None or init_tree is None:
        return findings
    findings += _compare_backends(jit_tree, ref_tree, jit_rel, ref_rel)
    kernels = set(_public_kernels(ref_tree)) \
        & set(_public_kernels(jit_tree))
    findings += _audit_exports(init_tree, kernels, init_rel)
    findings += _audit_kernel_bodies(ref_tree, ref_rel, jit=False)
    findings += _audit_kernel_bodies(jit_tree, jit_rel, jit=True)
    return findings
