"""Protocol model checker for the fleet-serving delivery discipline.

The ``serve`` layer's correctness story rests on a delivery protocol:
the supervisor journals every accepted batch, workers dedupe/stash/apply
by per-stream cursor, snapshots carry the cursors, and crash recovery
replays the journal suffix.  PR 7 *witnesses* that story with a chaos
differential; this module *proves* it the way ``repro-check
statemachine`` proves the detectors: a declarative
:class:`ProtocolSpec` of the supervisor/worker message surface and the
worker's dedupe/stash/ack discipline is explored exhaustively over
small-scope schedules — every delivery permutation, duplicated
deliveries, a snapshot cadence, and a crash between any two steps —
and four safety invariants are checked on every run:

``no-sample-loss``
    every submitted ``(stream, stream_seq)`` is applied on the
    surviving timeline (cursors reach the end, stashes drain);
``no-double-application``
    the surviving timeline applies each ``(stream, stream_seq)`` at
    most once, in strictly increasing per-stream order;
``ack-monotonicity``
    within a worker incarnation the contiguous high-water mark and the
    per-stream cursors never regress, and a restore lands exactly on
    the newest durable snapshot (never below, never past it);
``replay-idempotence``
    the final state digest of every crashed-and-replayed schedule is
    bit-identical to the crash-free in-order reference run.

The same schedules are then driven through the *real*
:class:`~repro.serve.worker.ShardWorker` (in-process, tempdir snapshot
stores) and its ack skeletons and final digests are compared against
the model (``protocol-impl-divergence``), while AST audits pin the
spec's transitions to the shipped code paths (``protocol-anchor-missing``)
and its message surface to :mod:`repro.serve.messages`
(``protocol-surface-drift``).
"""

from __future__ import annotations

import ast
import itertools
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Iterator, Protocol

import numpy as np

from repro.checks.findings import Finding, Severity

__all__ = [
    "GUARDS", "ACTIONS", "INVARIANTS", "PROTOCOL_PATH",
    "MessageSpec", "ProtocolRule", "ProtocolObligation", "ProtocolSpec",
    "serve_protocol_spec", "check_spec", "audit_message_surface",
    "audit_anchors", "enumerate_schedules", "explore_model",
    "cross_check_worker", "run_protocol_checker",
]

#: Guard names a :class:`ProtocolRule` may use, in evaluation order.
GUARDS = ("duplicate", "expected", "early")

#: Action names the model interpreter can execute.
ACTIONS = ("ack-empty", "stash", "apply-drain")

#: The four safety invariants, checked by name on every explored run.
INVARIANTS = ("no-sample-loss", "no-double-application",
              "ack-monotonicity", "replay-idempotence")

#: Symbolic finding path for model-level findings (no single file).
PROTOCOL_PATH = "<serve protocol>"

_WORKER = "src/repro/serve/worker.py"
_SUPERVISOR = "src/repro/serve/supervisor.py"
_MESSAGES = "src/repro/serve/messages.py"


# -- the declarative spec -----------------------------------------------------


@dataclass(frozen=True)
class MessageSpec:
    """One wire message: name, queue direction and field surface."""

    name: str
    direction: str  # "down" (supervisor -> worker) or "up"
    fields: tuple[str, ...]


@dataclass(frozen=True)
class ProtocolRule:
    """One transition of the worker's delivery discipline.

    ``anchor`` names the implementing code path as
    ``"path::Qualified.name"``; ``requires`` lists identifiers that
    must appear inside that function body (the static white-box tie
    between spec transition and shipped code).
    """

    message: str
    guard: str
    action: str
    anchor: str
    requires: tuple[str, ...] = ()


@dataclass(frozen=True)
class ProtocolObligation:
    """A supervisor/worker-side duty outside the per-message rules."""

    name: str
    anchor: str
    requires: tuple[str, ...] = ()


@dataclass(frozen=True)
class ProtocolSpec:
    """The complete declarative protocol description."""

    name: str
    version: int
    messages: tuple[MessageSpec, ...]
    rules: tuple[ProtocolRule, ...]
    obligations: tuple[ProtocolObligation, ...]
    invariants: tuple[str, ...] = INVARIANTS


def serve_protocol_spec() -> ProtocolSpec:
    """The shipped supervisor/worker protocol, as implemented by PR 7."""
    return ProtocolSpec(
        name="serve",
        version=1,
        messages=(
            MessageSpec("Batch", "down",
                        ("seq", "stream", "stream_seq", "samples")),
            MessageSpec("Shutdown", "down", ("final_snapshot",)),
            MessageSpec("WorkerStarted", "up",
                        ("shard", "restored_seq", "lanes")),
            MessageSpec("AppliedBatch", "up",
                        ("stream", "stream_seq", "events", "intervals")),
            MessageSpec("BatchAck", "up", ("shard", "seq", "applied")),
            MessageSpec("SnapshotWritten", "up",
                        ("shard", "seq", "path", "n_bytes")),
        ),
        rules=(
            ProtocolRule(
                message="Batch", guard="duplicate", action="ack-empty",
                anchor=f"{_WORKER}::ShardWorker.handle_batch",
                requires=("stream_seqs",)),
            ProtocolRule(
                message="Batch", guard="early", action="stash",
                anchor=f"{_WORKER}::ShardWorker.handle_batch",
                requires=("stash",)),
            ProtocolRule(
                message="Batch", guard="expected", action="apply-drain",
                anchor=f"{_WORKER}::ShardWorker.handle_batch",
                requires=("_apply", "stash")),
        ),
        obligations=(
            ProtocolObligation(
                name="journal-every-batch",
                anchor=f"{_SUPERVISOR}::FleetSupervisor.submit",
                requires=("journal", "append")),
            ProtocolObligation(
                name="replay-after-restart",
                anchor=f"{_SUPERVISOR}::FleetSupervisor._handle_up",
                requires=("entries_after",)),
            ProtocolObligation(
                name="truncate-behind-second-snapshot",
                anchor=f"{_SUPERVISOR}::FleetSupervisor._handle_up",
                requires=("truncate_through", "snapshot_seqs")),
            ProtocolObligation(
                name="contiguous-high-water-mark",
                anchor=f"{_WORKER}::ShardWorker._note_seq",
                requires=("seen_through",)),
            ProtocolObligation(
                name="restore-newest-snapshot",
                anchor=f"{_WORKER}::ShardWorker._restore",
                requires=("load_latest",)),
            ProtocolObligation(
                name="final-snapshot-on-shutdown",
                anchor=f"{_WORKER}::worker_main",
                requires=("take_snapshot",)),
        ),
    )


# -- structural spec checks ---------------------------------------------------


def check_spec(spec: ProtocolSpec) -> list[Finding]:
    """Well-formedness: known guards/actions, one rule per (msg, guard)."""
    findings: list[Finding] = []
    names = {m.name for m in spec.messages}

    def bad(message: str) -> None:
        findings.append(Finding(
            rule="protocol-spec-incomplete", severity=Severity.ERROR,
            path=PROTOCOL_PATH, line=0, message=message))

    for message in spec.messages:
        if message.direction not in ("down", "up"):
            bad(f"message {message.name} has unknown direction "
                f"{message.direction!r}")
    seen: dict[tuple[str, str], int] = {}
    for rule in spec.rules:
        if rule.message not in names:
            bad(f"rule references undeclared message {rule.message!r}")
        if rule.guard not in GUARDS:
            bad(f"rule for {rule.message} uses unknown guard "
                f"{rule.guard!r} (known: {', '.join(GUARDS)})")
        if rule.action not in ACTIONS:
            bad(f"rule for {rule.message}/{rule.guard} uses unknown "
                f"action {rule.action!r} (known: {', '.join(ACTIONS)})")
        key = (rule.message, rule.guard)
        seen[key] = seen.get(key, 0) + 1
    for (message_name, guard), count in sorted(seen.items()):
        if count > 1:
            bad(f"{count} rules for ({message_name}, {guard}); the "
                f"discipline must be deterministic")
    for guard in GUARDS:
        if ("Batch", guard) not in seen:
            bad(f"no rule for (Batch, {guard}); every delivery guard "
                f"needs a transition")
    for invariant in spec.invariants:
        if invariant not in INVARIANTS:
            bad(f"unknown invariant {invariant!r} "
                f"(known: {', '.join(INVARIANTS)})")
    return findings


# -- AST audits: message surface and code-path anchors ------------------------


def _dataclass_field_names(node: ast.ClassDef) -> tuple[str, ...]:
    names: list[str] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target,
                                                          ast.Name):
            names.append(stmt.target.id)
    return tuple(names)


def audit_message_surface(spec: ProtocolSpec, root: Path) -> list[Finding]:
    """The spec's message surface must match ``serve/messages.py``.

    Every spec message must exist as a dataclass with exactly the
    declared fields, every public message class must be covered by the
    spec, and the module's ``PROTOCOL_VERSION`` / ``MESSAGE_SCHEMA``
    registry must agree with both.
    """
    findings: list[Finding] = []
    path = root / _MESSAGES

    def drift(line: int, message: str) -> None:
        findings.append(Finding(
            rule="protocol-surface-drift", severity=Severity.ERROR,
            path=_MESSAGES, line=line, message=message))

    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError) as exc:
        drift(0, f"cannot parse message module: {exc}")
        return findings

    classes: dict[str, ast.ClassDef] = {}
    version: int | None = None
    schema: dict[str, tuple[str, ...]] = {}
    exported: tuple[str, ...] = ()
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            classes[node.name] = node
            continue
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            target, assigned = node.targets[0].id, node.value
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name) \
                and node.value is not None:
            target, assigned = node.target.id, node.value
        else:
            continue
        if target == "PROTOCOL_VERSION" \
                and isinstance(assigned, ast.Constant) \
                and isinstance(assigned.value, int):
            version = assigned.value
        elif target == "MESSAGE_SCHEMA" and isinstance(assigned, ast.Dict):
            for key, value in zip(assigned.keys, assigned.values):
                if isinstance(key, ast.Constant) \
                        and isinstance(key.value, str) \
                        and isinstance(value, ast.Tuple):
                    entries = tuple(
                        element.value for element in value.elts
                        if isinstance(element, ast.Constant)
                        and isinstance(element.value, str))
                    schema[key.value] = entries
        elif target == "__all__" and isinstance(assigned,
                                                (ast.List, ast.Tuple)):
            exported = tuple(
                element.value for element in assigned.elts
                if isinstance(element, ast.Constant)
                and isinstance(element.value, str))

    if version is None:
        drift(0, "PROTOCOL_VERSION missing (or not an int literal); the "
                 "wire protocol is unversioned")
    elif version != spec.version:
        drift(0, f"PROTOCOL_VERSION {version} != spec version "
                 f"{spec.version}; bump both together")

    for message in spec.messages:
        node = classes.get(message.name)
        if node is None:
            drift(0, f"spec message {message.name} has no dataclass in "
                     f"the message module")
            continue
        actual = _dataclass_field_names(node)
        if actual != message.fields:
            drift(node.lineno,
                  f"{message.name} fields {actual} drifted from spec "
                  f"{message.fields}")
        declared = schema.get(message.name)
        if declared is None:
            drift(node.lineno,
                  f"{message.name} missing from MESSAGE_SCHEMA; "
                  f"receivers cannot validate it")
        elif declared != actual:
            drift(node.lineno,
                  f"MESSAGE_SCHEMA[{message.name!r}] {declared} drifted "
                  f"from the dataclass fields {actual}")

    spec_names = {m.name for m in spec.messages}
    for name in exported:
        if name in classes and name not in spec_names:
            drift(classes[name].lineno,
                  f"exported message {name} is not covered by the "
                  f"protocol spec")
    return findings


def _resolve_anchor(tree: ast.Module,
                    qualname: str) -> ast.FunctionDef | None:
    parts = qualname.split(".")
    scope: list[ast.stmt] = list(tree.body)
    for part in parts[:-1]:
        for stmt in scope:
            if isinstance(stmt, ast.ClassDef) and stmt.name == part:
                scope = list(stmt.body)
                break
        else:
            return None
    for stmt in scope:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == parts[-1]:
            return stmt
    return None


def _body_identifiers(node: ast.FunctionDef) -> set[str]:
    names: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
        elif isinstance(child, ast.Attribute):
            names.add(child.attr)
    return names


def audit_anchors(spec: ProtocolSpec, root: Path) -> list[Finding]:
    """Every rule/obligation anchor must resolve to shipped code.

    An anchor is ``"relative/path.py::Qualified.name"``; ``requires``
    identifiers must appear in the anchored function body.  This is the
    static half of the white-box cross-check: the dynamic half replays
    schedules through the real worker.
    """
    findings: list[Finding] = []
    trees: dict[str, ast.Module | None] = {}

    def missing(path: str, line: int, message: str) -> None:
        findings.append(Finding(
            rule="protocol-anchor-missing", severity=Severity.ERROR,
            path=path, line=line, message=message))

    anchored: list[tuple[str, str, tuple[str, ...]]] = [
        (rule.anchor, f"rule ({rule.message}, {rule.guard})",
         rule.requires)
        for rule in spec.rules]
    anchored += [(ob.anchor, f"obligation {ob.name!r}", ob.requires)
                 for ob in spec.obligations]

    for anchor, label, requires in anchored:
        if "::" not in anchor:
            missing(PROTOCOL_PATH, 0,
                    f"{label} anchor {anchor!r} is not of the form "
                    f"'path::Qualified.name'")
            continue
        rel, qualname = anchor.split("::", 1)
        if rel not in trees:
            try:
                trees[rel] = ast.parse(
                    (root / rel).read_text(encoding="utf-8"))
            except (OSError, SyntaxError):
                trees[rel] = None
        tree = trees[rel]
        if tree is None:
            missing(rel, 0, f"{label} anchors {qualname} but the file "
                            f"cannot be parsed")
            continue
        node = _resolve_anchor(tree, qualname)
        if node is None:
            missing(rel, 0, f"{label} anchors {qualname}, which no "
                            f"longer exists")
            continue
        identifiers = _body_identifiers(node)
        for name in requires:
            if name not in identifiers:
                missing(rel, node.lineno,
                        f"{label} expects {qualname} to reference "
                        f"{name!r}, but it does not — the spec "
                        f"transition no longer maps onto this code path")
    return findings


# -- small-scope schedules ----------------------------------------------------


@dataclass(frozen=True)
class _Step:
    """One schedule event: deliver/dup a message, snapshot, or crash."""

    kind: str  # "deliver" | "dup" | "snap" | "crash"
    index: int = -1


@dataclass(frozen=True)
class Scope:
    """The message universe one schedule family ranges over."""

    streams: tuple[str, ...]
    #: submission order; item i is (stream, stream_seq) with seq == i.
    messages: tuple[tuple[str, int], ...]


def small_scope(per_stream: tuple[int, ...] = (2, 1)) -> Scope:
    """``per_stream[k]`` batches for stream k, interleaved round-robin."""
    streams = tuple(f"s{i}" for i in range(len(per_stream)))
    counters = [0] * len(per_stream)
    messages: list[tuple[str, int]] = []
    remaining = sum(per_stream)
    while remaining:
        for i, stream in enumerate(streams):
            if counters[i] < per_stream[i]:
                messages.append((stream, counters[i]))
                counters[i] += 1
                remaining -= 1
    return Scope(streams=streams, messages=tuple(messages))


def enumerate_schedules(scope: Scope,
                        snapshot_cadences: tuple[int, ...] = (0, 1, 2),
                        adjacent_dups_only: bool = False,
                        with_crash: bool = True
                        ) -> Iterator[tuple[_Step, ...]]:
    """Every small-scope schedule: permutations x dups x snaps x crash.

    A schedule delivers each scope message exactly once in some order,
    optionally re-delivers one of them (a transport duplicate), takes a
    snapshot after every ``cadence`` deliveries (0 = never), and — when
    ``with_crash`` — kills and restores the worker at one point
    (including before the first delivery and after the last).
    """
    n = len(scope.messages)
    deliveries: list[tuple[_Step, ...]] = []
    for perm in itertools.permutations(range(n)):
        base = tuple(_Step("deliver", i) for i in perm)
        deliveries.append(base)
        for pos in range(n):
            last = pos + 2 if adjacent_dups_only else n + 1
            for insert in range(pos + 1, last):
                dup = _Step("dup", perm[pos])
                deliveries.append(
                    base[:insert] + (dup,) + base[insert:])
    for delivery in deliveries:
        for cadence in snapshot_cadences:
            steps: list[_Step] = []
            since = 0
            for step in delivery:
                steps.append(step)
                since += 1
                if cadence and since >= cadence:
                    steps.append(_Step("snap"))
                    since = 0
            yield tuple(steps)
            if not with_crash:
                continue
            for at in range(len(steps) + 1):
                yield (tuple(steps[:at]) + (_Step("crash"),)
                       + tuple(steps[at:]))


def describe_schedule(scope: Scope, steps: tuple[_Step, ...]) -> str:
    """A compact human label, e.g. ``s0.0 s1.0 !snap !crash s0.1``."""
    parts: list[str] = []
    for step in steps:
        if step.kind in ("deliver", "dup"):
            stream, stream_seq = scope.messages[step.index]
            tag = "+" if step.kind == "dup" else ""
            parts.append(f"{tag}{stream}.{stream_seq}")
        else:
            parts.append(f"!{step.kind}")
    return " ".join(parts)


# -- the model interpreter ----------------------------------------------------


class ProtocolModelError(Exception):
    """The spec cannot be executed (missing rule / unknown action)."""


@dataclass
class _ModelSnapshot:
    """In-memory stand-in for one durable snapshot generation."""

    seen_through: int
    stream_seqs: dict[str, int]
    stash: dict[str, dict[int, int]]
    applied_units: dict[str, int]


class WorkerAdapter(Protocol):
    """What the explorer needs from a worker (model or real)."""

    def deliver(self, seq: int, stream: str,
                stream_seq: int) -> tuple[tuple[str, int], ...]: ...

    def snapshot(self) -> int: ...

    def crash_restore(self) -> int: ...

    def cursors(self) -> dict[str, int]: ...

    def seen_through(self) -> int: ...

    def stash_sizes(self) -> dict[str, int]: ...

    def digest(self) -> tuple[tuple[str, int, int], ...]: ...


class _ModelWorker:
    """Pure-Python interpreter over a :class:`ProtocolSpec`.

    State mirrors :class:`~repro.serve.worker.ShardWorker`: per-stream
    cursors, a stash of early arrivals, the contiguous delivery
    high-water mark, and in-memory snapshots.  ``applied_units`` tracks
    how many payload units each stream absorbed (the model's stand-in
    for the real lane's sample counter), so digests detect
    double-application exactly like the real worker's stats do.
    """

    def __init__(self, spec: ProtocolSpec,
                 streams: tuple[str, ...]) -> None:
        self._rules = {(r.message, r.guard): r for r in spec.rules}
        self.streams = streams
        self.stream_seqs: dict[str, int] = {s: 0 for s in streams}
        self.stash: dict[str, dict[int, int]] = {}
        self.high_water = -1
        self._seen_ahead: set[int] = set()
        self.applied_units: dict[str, int] = {s: 0 for s in streams}
        self._snapshots: list[_ModelSnapshot] = []

    def _note_seq(self, seq: int) -> None:
        if seq <= self.high_water:
            return
        self._seen_ahead.add(seq)
        while self.high_water + 1 in self._seen_ahead:
            self.high_water += 1
            self._seen_ahead.discard(self.high_water)

    def _apply(self, stream: str, stream_seq: int) -> tuple[str, int]:
        self.applied_units[stream] += stream_seq + 1
        self.stream_seqs[stream] = stream_seq + 1
        return (stream, stream_seq)

    def deliver(self, seq: int, stream: str,
                stream_seq: int) -> tuple[tuple[str, int], ...]:
        self._note_seq(seq)
        expected = self.stream_seqs.get(stream, 0)
        if stream_seq < expected:
            guard = "duplicate"
        elif stream_seq > expected:
            guard = "early"
        else:
            guard = "expected"
        rule = self._rules.get(("Batch", guard))
        if rule is None:
            raise ProtocolModelError(f"no rule for (Batch, {guard})")
        if rule.action == "ack-empty":
            return ()
        if rule.action == "stash":
            self.stash.setdefault(stream, {})[stream_seq] = stream_seq
            return ()
        if rule.action == "apply-drain":
            applied = [self._apply(stream, stream_seq)]
            parked = self.stash.get(stream)
            while parked:
                up_next = self.stream_seqs[stream]
                if up_next not in parked:
                    break
                applied.append(self._apply(stream, parked.pop(up_next)))
            return tuple(applied)
        raise ProtocolModelError(f"unknown action {rule.action!r}")

    def snapshot(self) -> int:
        self._snapshots.append(_ModelSnapshot(
            seen_through=self.high_water,
            stream_seqs=dict(self.stream_seqs),
            stash={s: dict(parked)
                   for s, parked in self.stash.items() if parked},
            applied_units=dict(self.applied_units)))
        return self.high_water

    def crash_restore(self) -> int:
        if self._snapshots:
            state = self._snapshots[-1]
            self.high_water = state.seen_through
            self.stream_seqs = dict(state.stream_seqs)
            self.stash = {s: dict(parked)
                          for s, parked in state.stash.items()}
            self.applied_units = dict(state.applied_units)
        else:
            self.high_water = -1
            self.stream_seqs = {s: 0 for s in self.streams}
            self.stash = {}
            self.applied_units = {s: 0 for s in self.streams}
        self._seen_ahead = set()
        return self.high_water

    def seen_through(self) -> int:
        return self.high_water

    def cursors(self) -> dict[str, int]:
        return dict(self.stream_seqs)

    def stash_sizes(self) -> dict[str, int]:
        return {s: len(parked) for s, parked in self.stash.items()
                if parked}

    def digest(self) -> tuple[tuple[str, int, int], ...]:
        return tuple((s, self.stream_seqs[s], self.applied_units[s])
                     for s in self.streams)


# -- the explorer -------------------------------------------------------------


@dataclass
class _Trace:
    """What one schedule run produced, in invariant-checkable form."""

    scope: Scope
    #: surviving-timeline apply log per stream (truncated on restore).
    applied: dict[str, list[int]] = field(default_factory=dict)
    #: per ack: (incarnation, seq, applied skeleton, marks after).
    acks: list[tuple[int, int, tuple[tuple[str, int], ...],
                     int, tuple[int, ...]]] = field(default_factory=list)
    #: per crash: (newest durable snapshot seq or -1, restored seq).
    restores: list[tuple[int, int]] = field(default_factory=list)
    final_digest: tuple[tuple[str, int, int], ...] = ()
    final_cursors: dict[str, int] = field(default_factory=dict)
    final_stash: dict[str, int] = field(default_factory=dict)
    error: str | None = None


def _run_schedule(adapter: WorkerAdapter, scope: Scope,
                  steps: tuple[_Step, ...]) -> _Trace:
    """Drive one schedule; crashes replay the journal like recovery does.

    The journal holds every scope message from the start (the
    supervisor journals on submit, before delivery), so a crash at any
    point replays all entries past the restored seq — and the rest of
    the schedule still arrives afterwards, modelling stale in-flight
    messages overlapping the replay.
    """
    trace = _Trace(scope=scope,
                   applied={s: [] for s in scope.streams})
    incarnation = 0
    last_snapshot_seq = -1

    def note_ack(seq: int,
                 applied: tuple[tuple[str, int], ...]) -> None:
        for stream, stream_seq in applied:
            trace.applied[stream].append(stream_seq)
        marks = tuple(adapter.cursors()[s] for s in scope.streams)
        trace.acks.append(
            (incarnation, seq, applied, adapter.seen_through(), marks))

    try:
        for step in steps:
            if step.kind == "snap":
                last_snapshot_seq = adapter.snapshot()
            elif step.kind == "crash":
                restored = adapter.crash_restore()
                trace.restores.append((last_snapshot_seq, restored))
                incarnation += 1
                for cursor in trace.applied.values():
                    del cursor[:]
                restored_cursors = adapter.cursors()
                for stream in scope.streams:
                    trace.applied[stream] = list(
                        range(restored_cursors.get(stream, 0)))
                for seq, (stream, stream_seq) in enumerate(
                        scope.messages):
                    if seq > restored:
                        note_ack(seq, adapter.deliver(seq, stream,
                                                      stream_seq))
            else:
                seq = step.index
                stream, stream_seq = scope.messages[seq]
                note_ack(seq, adapter.deliver(seq, stream, stream_seq))
    except ProtocolModelError as exc:
        trace.error = str(exc)
        return trace
    trace.final_digest = adapter.digest()
    trace.final_cursors = adapter.cursors()
    trace.final_stash = adapter.stash_sizes()
    return trace


def _reference_trace(make_adapter: Callable[[], WorkerAdapter],
                     scope: Scope) -> _Trace:
    """The crash-free in-order run every other run must converge to."""
    steps = tuple(_Step("deliver", i)
                  for i in range(len(scope.messages)))
    return _run_schedule(make_adapter(), scope, steps)


def _check_invariants(scope: Scope, steps: tuple[_Step, ...],
                      trace: _Trace, reference: _Trace,
                      where: str) -> list[Finding]:
    """Evaluate the four named invariants on one finished run."""
    violations: list[tuple[str, str]] = []
    expected = {stream: sum(1 for s, _ in scope.messages if s == stream)
                for stream in scope.streams}

    if trace.error is not None:
        return [Finding(
            rule="protocol-spec-incomplete", severity=Severity.ERROR,
            path=PROTOCOL_PATH, line=0,
            message=f"{where}: schedule "
                    f"[{describe_schedule(scope, steps)}] is not "
                    f"executable: {trace.error}")]

    for stream in scope.streams:
        log = trace.applied[stream]
        want = list(range(expected[stream]))
        if sorted(set(log)) != want \
                or trace.final_cursors.get(stream, 0) != expected[stream]:
            violations.append((
                "no-sample-loss",
                f"stream {stream} applied {log} of {want} (final "
                f"cursor {trace.final_cursors.get(stream, 0)})"))
            break
    if trace.final_stash:
        violations.append((
            "no-sample-loss",
            f"stash not drained at end of run: {trace.final_stash}"))

    for stream in scope.streams:
        log = trace.applied[stream]
        if len(set(log)) != len(log) \
                or any(b <= a for a, b in zip(log, log[1:])):
            violations.append((
                "no-double-application",
                f"stream {stream} apply log {log} repeats or regresses "
                f"on the surviving timeline"))
            break

    last: dict[int, tuple[int, tuple[int, ...]]] = {}
    for incarnation, seq, _, seen, marks in trace.acks:
        prev = last.get(incarnation)
        if prev is not None and (seen < prev[0]
                                 or any(m < p for m, p
                                        in zip(marks, prev[1]))):
            violations.append((
                "ack-monotonicity",
                f"incarnation {incarnation}: high-water mark/cursors "
                f"regressed from {prev} to {(seen, marks)} within a "
                f"single life"))
            break
        last[incarnation] = (seen, marks)
    for snapshot_seq, restored in trace.restores:
        if restored != snapshot_seq:
            violations.append((
                "ack-monotonicity",
                f"restore landed on seq {restored}, but the newest "
                f"durable snapshot covers seq {snapshot_seq}"))
            break

    if trace.final_digest != reference.final_digest:
        violations.append((
            "replay-idempotence",
            f"final digest {trace.final_digest} != crash-free "
            f"reference {reference.final_digest}"))

    label = describe_schedule(scope, steps)
    return [Finding(
        rule="protocol-invariant", severity=Severity.ERROR,
        path=PROTOCOL_PATH, line=0,
        message=f"invariant '{invariant}' violated ({where}, schedule "
                f"[{label}]): {detail}")
        for invariant, detail in violations]


def explore_model(spec: ProtocolSpec, scope: Scope,
                  snapshot_cadences: tuple[int, ...] = (0, 1, 2),
                  adjacent_dups_only: bool = False,
                  max_findings: int = 5) -> list[Finding]:
    """Run every small-scope schedule through the model interpreter."""
    findings: list[Finding] = []
    reference = _reference_trace(
        lambda: _ModelWorker(spec, scope.streams), scope)
    for steps in enumerate_schedules(scope, snapshot_cadences,
                                     adjacent_dups_only):
        trace = _run_schedule(_ModelWorker(spec, scope.streams), scope,
                              steps)
        findings.extend(_check_invariants(scope, steps, trace,
                                          reference, "model"))
        if len(findings) >= max_findings:
            break
    return findings[:max_findings]


# -- the real-worker cross-check ----------------------------------------------


class _RealWorkerAdapter:
    """Drives a real :class:`~repro.serve.worker.ShardWorker`.

    Payload batches are small integer arrays, one distinct value run
    per (stream, stream_seq), sized so no interval ever closes — the
    lane's sample counter then measures exactly which batches were fed,
    which is what the digests compare.  ``crash_restore`` abandons the
    worker object and builds a fresh one over the same snapshot store,
    precisely what ``worker_main`` does on respawn.
    """

    def __init__(self, streams: tuple[str, ...], snapshot_dir: str,
                 worker_factory: Callable[..., Any]) -> None:
        from repro.serve.config import ServeConfig
        from repro.serve.snapshot import SnapshotStore

        self.streams = streams
        # snapshot_every is huge so cadence stays schedule-controlled.
        self._config = ServeConfig(n_shards=1, snapshot_every=10**9)
        self._store = SnapshotStore(snapshot_dir, 0)
        self._factory = worker_factory
        self._worker: Any = worker_factory(0, streams, self._config,
                                           self._store)

    def _samples(self, stream: str, stream_seq: int) -> np.ndarray:
        width = stream_seq + 1  # distinct sample counts per batch
        return np.full(width, 1000 + width, dtype=np.int64)

    def deliver(self, seq: int, stream: str,
                stream_seq: int) -> tuple[tuple[str, int], ...]:
        from repro.serve.messages import Batch

        ack = self._worker.handle_batch(Batch(
            seq=seq, stream=stream, stream_seq=stream_seq,
            samples=self._samples(stream, stream_seq)))
        return tuple((entry.stream, entry.stream_seq)
                     for entry in ack.applied)

    def snapshot(self) -> int:
        written = self._worker.take_snapshot()
        return int(written.seq)

    def crash_restore(self) -> int:
        self._worker = self._factory(0, self.streams, self._config,
                                     self._store)
        return int(self._worker.restored_seq)

    def cursors(self) -> dict[str, int]:
        return dict(self._worker.stream_seqs)

    def seen_through(self) -> int:
        return int(self._worker.seen_through)

    def stash_sizes(self) -> dict[str, int]:
        return {stream: len(parked) for stream, parked
                in self._worker.stash.items() if parked}

    def digest(self) -> tuple[tuple[str, int, int], ...]:
        session = self._worker.session
        out: list[tuple[str, int, int]] = []
        for i, stream in enumerate(self.streams):
            lane = session.lanes[i]
            out.append((stream,
                        self._worker.stream_seqs[stream],
                        int(lane.stats.samples)))
        return tuple(out)


def cross_check_worker(spec: ProtocolSpec, scope: Scope,
                       snapshot_cadences: tuple[int, ...] = (0, 1),
                       worker_factory: Callable[..., Any] | None = None,
                       max_findings: int = 5) -> list[Finding]:
    """Replay the schedule space through the shipped ``ShardWorker``.

    Each schedule runs on the real worker (tempdir snapshot store) and
    on the model; the four invariants are evaluated on the *real* trace
    and every ack skeleton plus the final cursors must match the model
    (``protocol-impl-divergence``).  Digests are compared against the
    real worker's own crash-free reference run, so the check is
    meaningful even when a custom ``worker_factory`` is under test.
    """
    import tempfile

    from repro.serve.worker import ShardWorker

    factory: Callable[..., Any] = worker_factory or ShardWorker
    findings: list[Finding] = []

    def real_adapter(base: str, tag: str) -> _RealWorkerAdapter:
        path = Path(base) / tag
        path.mkdir(parents=True, exist_ok=True)
        return _RealWorkerAdapter(scope.streams, str(path), factory)

    with tempfile.TemporaryDirectory() as base:
        reference = _reference_trace(
            lambda: real_adapter(base, "ref"), scope)
        for run, steps in enumerate(enumerate_schedules(
                scope, snapshot_cadences, adjacent_dups_only=True)):
            real = _run_schedule(real_adapter(base, f"run{run}"),
                                 scope, steps)
            findings.extend(_check_invariants(scope, steps, real,
                                              reference, "worker"))
            model = _run_schedule(_ModelWorker(spec, scope.streams),
                                  scope, steps)
            if model.error is None:
                real_skeleton = [(seq, applied) for _, seq, applied,
                                 _, _ in real.acks]
                model_skeleton = [(seq, applied) for _, seq, applied,
                                  _, _ in model.acks]
                if real_skeleton != model_skeleton \
                        or real.final_cursors != model.final_cursors:
                    findings.append(Finding(
                        rule="protocol-impl-divergence",
                        severity=Severity.ERROR,
                        path=_WORKER, line=0,
                        message=f"ShardWorker diverges from the "
                                f"protocol model on schedule "
                                f"[{describe_schedule(scope, steps)}]: "
                                f"acks {real_skeleton} vs model "
                                f"{model_skeleton}, cursors "
                                f"{real.final_cursors} vs "
                                f"{model.final_cursors}"))
            if len(findings) >= max_findings:
                break
    return findings[:max_findings]


# -- the repro-check pass -----------------------------------------------------


def _default_root() -> Path:
    return Path(__file__).resolve().parents[3]


def run_protocol_checker(root: Path | None = None,
                         spec: ProtocolSpec | None = None,
                         worker_factory: Callable[..., Any] | None = None,
                         cross_check: bool = True) -> list[Finding]:
    """The full protocol pass: spec, audits, exploration, cross-check."""
    root = root or _default_root()
    spec = spec or serve_protocol_spec()
    findings = check_spec(spec)
    structural = bool(findings)
    findings += audit_message_surface(spec, root)
    findings += audit_anchors(spec, root)
    if structural:
        return findings  # an ill-formed spec cannot be explored
    findings += explore_model(spec, small_scope((2, 1)))
    findings += explore_model(spec, small_scope((2, 2)),
                              snapshot_cadences=(0, 2),
                              adjacent_dups_only=True)
    if cross_check:
        findings += cross_check_worker(spec, small_scope((2, 1)),
                                       worker_factory=worker_factory)
    return findings


def mutate_rule(spec: ProtocolSpec, guard: str,
                action: str) -> ProtocolSpec:
    """A copy of *spec* with the Batch/*guard* rule's action replaced
    (the mutation-test hook: corrupt one transition, rerun the checker,
    and the violated invariant must be reported by name)."""
    rules = tuple(
        replace(rule, action=action)
        if rule.message == "Batch" and rule.guard == guard else rule
        for rule in spec.rules)
    return replace(spec, rules=rules)


def drop_rule(spec: ProtocolSpec, guard: str) -> ProtocolSpec:
    """A copy of *spec* without the Batch/*guard* rule."""
    rules = tuple(rule for rule in spec.rules
                  if not (rule.message == "Batch"
                          and rule.guard == guard))
    return replace(spec, rules=rules)
