"""Concurrency/IPC lint: AST rules over the fleet-serving layers.

The ``serve`` and ``telemetry`` packages are the only parts of the repo
that cross process boundaries, and the defect classes that break them
are statically recognizable.  Six rules:

``fork-unsafe-global``
    Module-level mutable state (a dict/list/set binding, or a
    constructor call) is silently duplicated into every forked worker;
    mutations after the fork diverge between processes.  Literal
    bindings under CONSTANT_CASE names are exempt (convention: never
    mutated); anything else needs an ``allow`` with a justification of
    its fork story.
``queue-no-timeout``
    A blocking ``.put``/``.get`` on a queue without a ``timeout=``
    deadlocks forever when the peer process is dead.  The rule keys on
    queue-named receivers (``in_q``, ``out_q``, ``*queue*``);
    ``put_nowait``/``get_nowait`` are explicitly non-blocking and fine.
``message-field-unpicklable``
    A wire-message dataclass field annotated with a callable, lock,
    queue, process or file handle cannot cross a ``multiprocessing``
    pipe (or does so by accident, dragging live state along).
``message-schema-drift``
    Every message dataclass must appear in the module's
    ``MESSAGE_SCHEMA`` registry with exactly its field tuple, and the
    module must carry an integer ``PROTOCOL_VERSION`` — unversioned
    messages make rolling restarts silently unpickle stale layouts.
``signal-handler-blocking``
    A handler registered via ``signal.signal`` runs between any two
    bytecodes; calling anything blocking (sleep/join/acquire/queue ops)
    inside it can deadlock the interpreter.  Handlers should set a flag
    and return (exactly what ``worker_main`` does).
``unreaped-worker``
    A module that spawns ``Process`` workers must also contain the
    reaping ladder — ``join`` plus ``terminate``/``kill`` — somewhere
    in its shutdown paths, or dead children linger and interpreter
    exit can hang on them.
"""

from __future__ import annotations

import ast
import re

from repro.checks.findings import Finding, Severity

__all__ = ["ConcurrencyLint", "lint_concurrency", "audit_messages",
           "CONCURRENCY_PATHS"]

#: Package prefixes (repo-relative) the lint applies to.
CONCURRENCY_PATHS = ("src/repro/serve/", "src/repro/telemetry/")

#: Receivers that look like queues; dict/attribute ``.get`` elsewhere
#: is out of scope (the rule aims at IPC endpoints, not mappings).
_QUEUE_NAME = re.compile(r"(^|_)(in_q|out_q|q|queue)$|queue", re.IGNORECASE)

#: CONSTANT_CASE module bindings are read-only by convention.
_CONSTANT_NAME = re.compile(r"^_?[A-Z][A-Z0-9_]*$")

#: Constructor calls whose results are mutable containers.
_MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "deque", "defaultdict", "OrderedDict",
    "Counter",
})

#: Constructors whose results are immutable (or effectively so) and
#: safe as CONSTANT_CASE module bindings.
_IMMUTABLE_CONSTRUCTORS = frozenset({
    "frozenset", "tuple", "namedtuple", "MappingProxyType", "Struct",
    "compile",
})

#: Annotation identifiers that cannot (or must not) cross a pipe.
_UNPICKLABLE_TYPES = frozenset({
    "Callable", "Lock", "RLock", "Condition", "Semaphore", "Event",
    "Queue", "SimpleQueue", "JoinableQueue", "Thread", "Process",
    "Pool", "Connection", "IO", "TextIO", "BinaryIO", "Generator",
    "Iterator", "Iterable",
})

#: Blocking call names forbidden inside signal handlers.
_BLOCKING_IN_HANDLER = frozenset({
    "sleep", "join", "acquire", "wait", "get", "put", "recv", "send",
    "select", "open", "flush",
})


def _receiver_name(func: ast.expr) -> str | None:
    """The attribute/name a method is called on, e.g. ``out_q``."""
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return None


class ConcurrencyLint(ast.NodeVisitor):
    """One-file AST walk emitting concurrency findings."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: list[Finding] = []
        self._depth = 0  # >0 inside a function/class body
        self._handler_names: set[str] = set()
        self._spawn_nodes: list[ast.Call] = []
        self._reap_calls: set[str] = set()

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            rule=rule, severity=Severity.ERROR, path=self.path,
            line=getattr(node, "lineno", 0), message=message))

    # -- fork-unsafe module state ---------------------------------------------

    def _check_module_binding(self, node: ast.stmt, target: ast.expr,
                              value: ast.expr | None) -> None:
        if not isinstance(target, ast.Name) or value is None:
            return
        name = target.id
        if name.startswith("__") and name.endswith("__"):
            return  # dunders (__all__ et al.) are interpreter surface
        literal = isinstance(value, (ast.Dict, ast.List, ast.Set,
                                     ast.DictComp, ast.ListComp,
                                     ast.SetComp))
        call = isinstance(value, ast.Call)
        if not literal and not call:
            return
        if literal and _CONSTANT_NAME.match(name):
            return  # convention: CONSTANT_CASE literals are never mutated
        if call:
            func = value.func
            callee = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else "")
            if callee not in _MUTABLE_CONSTRUCTORS \
                    and not callee[:1].isupper():
                return  # factory functions returning immutables
            if _CONSTANT_NAME.match(name) \
                    and callee in _IMMUTABLE_CONSTRUCTORS:
                return
        self._emit(
            "fork-unsafe-global", node,
            f"module-level mutable binding {name!r} is duplicated into "
            f"every forked worker; move it into an object owned by one "
            f"process, or annotate its fork story")

    # -- visitors --------------------------------------------------------------

    def visit_Module(self, node: ast.Module) -> None:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    self._check_module_binding(stmt, target, stmt.value)
            elif isinstance(stmt, ast.AnnAssign):
                self._check_module_binding(stmt, stmt.target, stmt.value)
        self.generic_visit(node)

    def _enter_scope(self, node: ast.AST) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_scope(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._enter_scope(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # signal.signal(SIG, handler) registration
        if isinstance(func, ast.Attribute) and func.attr == "signal" \
                and isinstance(func.value, ast.Name) \
                and func.value.id == "signal" and len(node.args) == 2:
            handler = node.args[1]
            if isinstance(handler, ast.Name):
                self._handler_names.add(handler.id)
        if isinstance(func, ast.Attribute):
            if func.attr in ("put", "get"):
                receiver = _receiver_name(func)
                if receiver is not None and _QUEUE_NAME.search(receiver):
                    has_timeout = any(kw.arg == "timeout"
                                      for kw in node.keywords)
                    has_block_flag = any(kw.arg == "block"
                                         for kw in node.keywords)
                    if not has_timeout and not has_block_flag:
                        self._emit(
                            "queue-no-timeout", node,
                            f"blocking .{func.attr}() on {receiver!r} "
                            f"without a timeout deadlocks when the peer "
                            f"process dies; pass timeout= (or use "
                            f"{func.attr}_nowait and justify with an "
                            f"allow comment why blocking is safe)")
            if func.attr == "Process":
                self._spawn_nodes.append(node)
            if func.attr in ("join", "terminate", "kill"):
                self._reap_calls.add(func.attr)
        elif isinstance(func, ast.Name) and func.id == "Process":
            self._spawn_nodes.append(node)
        self.generic_visit(node)

    def finish(self, tree: ast.Module) -> None:
        """Whole-file rules that need the completed walk."""
        if self._spawn_nodes:
            if "join" not in self._reap_calls or not (
                    {"terminate", "kill"} & self._reap_calls):
                self._emit(
                    "unreaped-worker", self._spawn_nodes[0],
                    "this module spawns worker processes but lacks the "
                    "reaping ladder (join plus terminate/kill); dead "
                    "children will wedge interpreter exit")
        if self._handler_names:
            for node in ast.walk(tree):
                if isinstance(node, ast.FunctionDef) \
                        and node.name in self._handler_names:
                    self._check_handler(node)

    def _check_handler(self, handler: ast.FunctionDef) -> None:
        for node in ast.walk(handler):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else "")
            if name in _BLOCKING_IN_HANDLER:
                self._emit(
                    "signal-handler-blocking", node,
                    f"signal handler {handler.name!r} calls blocking "
                    f"{name}(); handlers must only set a flag and "
                    f"return")


def lint_concurrency(path: str, source: str) -> list[Finding]:
    """Run the concurrency rules over one file's source."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return []  # the determinism lint already reports parse-error
    lint = ConcurrencyLint(path)
    lint.visit(tree)
    lint.finish(tree)
    return lint.findings


# -- the message-module audit -------------------------------------------------


def _annotation_names(node: ast.expr) -> set[str]:
    names: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
        elif isinstance(child, ast.Attribute):
            names.add(child.attr)
        elif isinstance(child, ast.Constant) \
                and isinstance(child.value, str):
            # string annotations ("Callable[...]") still carry names
            names.update(re.findall(r"[A-Za-z_][A-Za-z0-9_]*",
                                    child.value))
    return names


def audit_messages(path: str, source: str) -> list[Finding]:
    """Picklability + schema-registry rules for ``serve/messages.py``."""
    findings: list[Finding] = []
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return []

    version_ok = False
    schema: dict[str, tuple[str, ...]] | None = None
    schema_line = 0
    messages: dict[str, tuple[ast.ClassDef, tuple[str, ...]]] = {}

    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            is_dataclass = any(
                (isinstance(dec, ast.Name) and dec.id == "dataclass")
                or (isinstance(dec, ast.Call)
                    and isinstance(dec.func, ast.Name)
                    and dec.func.id == "dataclass")
                for dec in node.decorator_list)
            if not is_dataclass:
                continue
            fields: list[str] = []
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) \
                        and isinstance(stmt.target, ast.Name):
                    fields.append(stmt.target.id)
                    bad = _annotation_names(stmt.annotation) \
                        & _UNPICKLABLE_TYPES
                    if bad:
                        findings.append(Finding(
                            rule="message-field-unpicklable",
                            severity=Severity.ERROR, path=path,
                            line=stmt.lineno,
                            message=f"{node.name}.{stmt.target.id} is "
                                    f"annotated with "
                                    f"{', '.join(sorted(bad))}, which "
                                    f"cannot safely cross a process "
                                    f"boundary"))
            messages[node.name] = (node, tuple(fields))
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            if isinstance(node, ast.Assign):
                targets = [t.id for t in node.targets
                           if isinstance(t, ast.Name)]
                value = node.value
            else:
                targets = ([node.target.id]
                           if isinstance(node.target, ast.Name) else [])
                value = node.value
            if "PROTOCOL_VERSION" in targets \
                    and isinstance(value, ast.Constant) \
                    and isinstance(value.value, int):
                version_ok = True
            if "MESSAGE_SCHEMA" in targets \
                    and isinstance(value, ast.Dict):
                schema = {}
                schema_line = node.lineno
                for key, entry in zip(value.keys, value.values):
                    if isinstance(key, ast.Constant) \
                            and isinstance(key.value, str) \
                            and isinstance(entry, ast.Tuple):
                        schema[key.value] = tuple(
                            e.value for e in entry.elts
                            if isinstance(e, ast.Constant)
                            and isinstance(e.value, str))

    if not messages:
        return findings
    if not version_ok:
        findings.append(Finding(
            rule="message-schema-drift", severity=Severity.ERROR,
            path=path, line=0,
            message="message module has no integer PROTOCOL_VERSION; "
                    "the wire protocol is unversioned"))
    if schema is None:
        findings.append(Finding(
            rule="message-schema-drift", severity=Severity.ERROR,
            path=path, line=0,
            message="message module has no MESSAGE_SCHEMA registry; "
                    "receivers cannot validate payload layouts"))
        return findings
    for name, (node, fields) in sorted(messages.items()):
        declared = schema.get(name)
        if declared is None:
            findings.append(Finding(
                rule="message-schema-drift", severity=Severity.ERROR,
                path=path, line=node.lineno,
                message=f"message {name} missing from MESSAGE_SCHEMA"))
        elif declared != fields:
            findings.append(Finding(
                rule="message-schema-drift", severity=Severity.ERROR,
                path=path, line=node.lineno,
                message=f"MESSAGE_SCHEMA[{name!r}] {declared} drifted "
                        f"from the dataclass fields {fields}; update "
                        f"both and bump PROTOCOL_VERSION"))
    for name in sorted(set(schema) - set(messages)):
        findings.append(Finding(
            rule="message-schema-drift", severity=Severity.ERROR,
            path=path, line=schema_line,
            message=f"MESSAGE_SCHEMA entry {name!r} has no message "
                    f"dataclass; remove the stale entry"))
    return findings
