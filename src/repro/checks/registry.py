"""Pass registry and repo-level driver for ``repro-check``.

Three pass families run by default:

* the per-file determinism lint (:mod:`repro.checks.determinism`) over
  every ``.py`` file under the scanned paths;
* the cache-key audit (:mod:`repro.checks.cachekeys`) over the cache,
  simulation-helper and fault-model modules;
* the state-machine model checker (:mod:`repro.checks.statemachine`)
  over the declarative LPD/GPD tables and their implementations.

Inline ``# repro: allow[rule]`` suppressions are applied to every
file-anchored finding; suppressions that never fire are reported
(``unused-suppression``).
"""

from __future__ import annotations

from pathlib import Path

from repro.checks.baseline import Baseline
from repro.checks.cachekeys import audit_cache_keys
from repro.checks.determinism import lint_source
from repro.checks.findings import Finding, sort_findings
from repro.checks.statemachine import run_model_checker
from repro.checks.suppress import SuppressionIndex

__all__ = ["ALL_RULES", "DEFAULT_PATHS", "CheckReport", "run_checks"]

#: Every rule id a default run can emit (``repro-check --list-rules``).
ALL_RULES: dict[str, str] = {
    "unseeded-rng": "module-level or OS-entropy RNG use",
    "wall-clock": "time.time/datetime.now in simulation paths",
    "unordered-iter": "iteration over a set in hash order",
    "float-equality": "exact == against a non-integral float literal",
    "parse-error": "file could not be parsed",
    "unused-suppression": "allow[...] comment that suppresses nothing",
    "cache-key-field": "simulation input missing from its cache key",
    "cache-key-no-faults": "cache key without fault-plan discrimination",
    "fault-token-incomplete": "FaultSpec.token() omitting a field",
    "fault-kind-collision": "two FaultSpecs sharing a kind tag",
    "snapshot-field-drift": "ShardSnapshot out of sync with SNAPSHOT_FIELDS",
    "fsm-incomplete": "transition table missing a (state, input) pair",
    "fsm-nondeterministic": "duplicate rules for a (state, input) pair",
    "fsm-unreachable-state": "state unreachable from the initial state",
    "fsm-unknown-state": "rule references an undeclared state/input",
    "fsm-phase-change-label": "phase_change flag contradicts the boundary",
    "fsm-divergence": "implementation disagrees with the declarative table",
}

#: Directories scanned by default, relative to the repo root.
DEFAULT_PATHS = ("src", "scripts")


class CheckReport:
    """Everything one ``repro-check`` run produced."""

    def __init__(self, findings: list[Finding], baseline: Baseline) -> None:
        self.findings = findings
        self.new, self.accepted, self.stale = baseline.split(findings)

    @property
    def clean(self) -> bool:
        """Whether the run should pass (no non-baselined findings)."""
        return not self.new

    def to_json(self) -> dict:
        """The ``--format json`` payload."""
        return {
            "new": [f.to_json() for f in self.new],
            "accepted": [f.to_json() for f in self.accepted],
            "stale_baseline_entries": sorted(self.stale),
            "counts": {
                "new": len(self.new),
                "accepted": len(self.accepted),
                "stale": len(self.stale),
            },
        }


def _python_files(root: Path, paths: tuple[str, ...]) -> list[Path]:
    files: list[Path] = []
    for entry in paths:
        target = root / entry
        if target.is_file() and target.suffix == ".py":
            files.append(target)
        elif target.is_dir():
            files.extend(p for p in sorted(target.rglob("*.py"))
                         if not any(part.startswith(".")
                                    for part in p.parts))
    return files


def run_checks(root: Path, paths: tuple[str, ...] = DEFAULT_PATHS,
               rules: set[str] | None = None,
               model_checker: bool = True) -> list[Finding]:
    """Run every pass; return suppression-filtered, sorted findings."""
    findings: list[Finding] = []
    indexes: dict[str, SuppressionIndex] = {}

    for file_path in _python_files(root, paths):
        rel = file_path.relative_to(root).as_posix()
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError:
            continue
        indexes[rel] = SuppressionIndex.from_source(rel, source)
        findings.extend(lint_source(rel, source))

    findings.extend(audit_cache_keys(root))
    if model_checker:
        findings.extend(run_model_checker())

    kept: list[Finding] = []
    for finding in findings:
        index = indexes.get(finding.path)
        if index is not None and index.is_suppressed(finding.rule,
                                                     finding.line):
            continue
        kept.append(finding)
    for rel in sorted(indexes):
        kept.extend(indexes[rel].unused_findings())

    if rules is not None:
        kept = [f for f in kept if f.rule in rules]
    return sort_findings(kept)
