"""Pass registry and repo-level driver for ``repro-check``.

Six pass families run by default:

* the per-file determinism lint (:mod:`repro.checks.determinism`) over
  every ``.py`` file under the scanned paths;
* the cache-key audit (:mod:`repro.checks.cachekeys`) over the cache,
  simulation-helper and fault-model modules;
* the state-machine model checker (:mod:`repro.checks.statemachine`)
  over the declarative LPD/GPD tables and their implementations;
* the protocol model checker (:mod:`repro.checks.protocol`) over the
  fleet-serving delivery discipline, including small-scope schedule
  exploration against the real ``ShardWorker``;
* the concurrency/IPC lint (:mod:`repro.checks.concurrency`) over the
  ``serve`` and ``telemetry`` packages;
* the kernel-twin contract audit (:mod:`repro.checks.twins`) over
  ``batch/compiled/``.

Rules are grouped into families (``repro-check --rules protocol``
enables a whole family; individual rule ids still work).  A ``--rules``
filter also *skips* passes that cannot produce any requested rule, so
``--rules twins`` does not pay for schedule exploration.

Inline ``# repro: allow[rule]`` suppressions are applied to every
file-anchored finding; suppressions that never fire are reported
(``unused-suppression``) — but only when every rule a suppression names
was active in the run, so a filtered run cannot mistake a dormant
suppression for a stale one.
"""

from __future__ import annotations

from pathlib import Path

from repro.checks.baseline import Baseline
from repro.checks.cachekeys import audit_cache_keys
from repro.checks.concurrency import (CONCURRENCY_PATHS, audit_messages,
                                      lint_concurrency)
from repro.checks.determinism import lint_source
from repro.checks.findings import Finding, sort_findings
from repro.checks.protocol import run_protocol_checker
from repro.checks.statemachine import run_model_checker
from repro.checks.suppress import SuppressionIndex
from repro.checks.twins import audit_twins

__all__ = ["ALL_RULES", "RULE_FAMILIES", "DEFAULT_PATHS", "CheckReport",
           "expand_rules", "run_checks"]

#: Every rule id a default run can emit (``repro-check --list-rules``).
ALL_RULES: dict[str, str] = {
    "unseeded-rng": "module-level or OS-entropy RNG use",
    "wall-clock": "time.time/datetime.now in simulation paths",
    "unordered-iter": "iteration over a set in hash order",
    "float-equality": "exact == against a non-integral float literal",
    "parse-error": "file could not be parsed",
    "unused-suppression": "allow[...] comment that suppresses nothing",
    "cache-key-field": "simulation input missing from its cache key",
    "cache-key-no-faults": "cache key without fault-plan discrimination",
    "fault-token-incomplete": "FaultSpec.token() omitting a field",
    "fault-kind-collision": "two FaultSpecs sharing a kind tag",
    "cpd-token-incomplete": "CpdThresholds token() missing or omitting a field",
    "trace-token-incomplete": "TraceIdentity token() missing or omitting a field",
    "snapshot-field-drift": "ShardSnapshot out of sync with SNAPSHOT_FIELDS",
    "fsm-incomplete": "transition table missing a (state, input) pair",
    "fsm-nondeterministic": "duplicate rules for a (state, input) pair",
    "fsm-unreachable-state": "state unreachable from the initial state",
    "fsm-unknown-state": "rule references an undeclared state/input",
    "fsm-phase-change-label": "phase_change flag contradicts the boundary",
    "fsm-divergence": "implementation disagrees with the declarative table",
    "protocol-spec-incomplete": "ProtocolSpec is ill-formed or inexecutable",
    "protocol-surface-drift": "spec message surface out of sync with serve/messages.py",
    "protocol-anchor-missing": "spec transition no longer maps onto shipped code",
    "protocol-invariant": "a delivery-protocol safety invariant is violated",
    "protocol-impl-divergence": "ShardWorker disagrees with the protocol model",
    "fork-unsafe-global": "module-level mutable state reachable post-fork",
    "queue-no-timeout": "blocking queue put/get without a timeout",
    "message-field-unpicklable": "wire-message field that cannot cross a pipe",
    "message-schema-drift": "message dataclasses out of sync with MESSAGE_SCHEMA",
    "signal-handler-blocking": "blocking call inside a signal handler",
    "unreaped-worker": "process spawner without a join+terminate ladder",
    "twin-missing": "kernel present in only one backend",
    "twin-signature-mismatch": "JIT and reference twins disagree on parameters",
    "twin-export-gap": "kernel absent from the backend selection block",
    "twin-probe-gap": "kernel not covered by the import-time probe",
    "twin-dtype-implicit": "kernel allocation without an explicit dtype",
    "twin-accumulation-order": "sequential loop reduction in a JIT kernel",
}

#: Family name -> rule ids; ``--rules <family>`` enables all of them.
RULE_FAMILIES: dict[str, frozenset[str]] = {
    "determinism": frozenset({
        "unseeded-rng", "wall-clock", "unordered-iter", "float-equality",
        "parse-error", "unused-suppression"}),
    "cachekeys": frozenset({
        "cache-key-field", "cache-key-no-faults",
        "fault-token-incomplete", "fault-kind-collision",
        "cpd-token-incomplete", "trace-token-incomplete",
        "snapshot-field-drift"}),
    "statemachine": frozenset({
        "fsm-incomplete", "fsm-nondeterministic", "fsm-unreachable-state",
        "fsm-unknown-state", "fsm-phase-change-label", "fsm-divergence"}),
    "protocol": frozenset({
        "protocol-spec-incomplete", "protocol-surface-drift",
        "protocol-anchor-missing", "protocol-invariant",
        "protocol-impl-divergence"}),
    "concurrency": frozenset({
        "fork-unsafe-global", "queue-no-timeout",
        "message-field-unpicklable", "message-schema-drift",
        "signal-handler-blocking", "unreaped-worker"}),
    "twins": frozenset({
        "twin-missing", "twin-signature-mismatch", "twin-export-gap",
        "twin-probe-gap", "twin-dtype-implicit",
        "twin-accumulation-order"}),
}

#: Directories scanned by default, relative to the repo root.
DEFAULT_PATHS = ("src", "scripts")

#: Repo-relative path of the wire-message module.
_MESSAGES_REL = "src/repro/serve/messages.py"


def expand_rules(requested: set[str]) -> set[str]:
    """Resolve family names to rule ids; unknown names pass through
    (the CLI validates against ``ALL_RULES`` | ``RULE_FAMILIES``)."""
    expanded: set[str] = set()
    for name in requested:
        expanded |= RULE_FAMILIES.get(name, {name})
    return expanded


class CheckReport:
    """Everything one ``repro-check`` run produced."""

    def __init__(self, findings: list[Finding], baseline: Baseline) -> None:
        self.findings = findings
        self.new, self.accepted, self.stale = baseline.split(findings)

    @property
    def clean(self) -> bool:
        """Whether the run should pass (no non-baselined findings)."""
        return not self.new

    def to_json(self) -> dict:
        """The ``--format json`` payload."""
        return {
            "new": [f.to_json() for f in self.new],
            "accepted": [f.to_json() for f in self.accepted],
            "stale_baseline_entries": sorted(self.stale),
            "counts": {
                "new": len(self.new),
                "accepted": len(self.accepted),
                "stale": len(self.stale),
            },
        }


def _python_files(root: Path, paths: tuple[str, ...]) -> list[Path]:
    files: list[Path] = []
    for entry in paths:
        target = root / entry
        if target.is_file() and target.suffix == ".py":
            files.append(target)
        elif target.is_dir():
            files.extend(p for p in sorted(target.rglob("*.py"))
                         if not any(part.startswith(".")
                                    for part in p.parts))
    return files


def run_checks(root: Path, paths: tuple[str, ...] = DEFAULT_PATHS,
               rules: set[str] | None = None,
               model_checker: bool = True) -> list[Finding]:
    """Run every pass; return suppression-filtered, sorted findings.

    ``rules`` may hold rule ids and/or family names; passes whose rule
    sets are disjoint from the request are skipped entirely.
    """
    active = expand_rules(rules) if rules is not None else set(ALL_RULES)

    def wants(family: str) -> bool:
        return bool(RULE_FAMILIES[family] & active)

    findings: list[Finding] = []
    indexes: dict[str, SuppressionIndex] = {}

    for file_path in _python_files(root, paths):
        rel = file_path.relative_to(root).as_posix()
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError:
            continue
        indexes[rel] = SuppressionIndex.from_source(rel, source)
        if wants("determinism"):
            findings.extend(lint_source(rel, source))
        if wants("concurrency") \
                and rel.startswith(CONCURRENCY_PATHS):
            findings.extend(lint_concurrency(rel, source))
            if rel == _MESSAGES_REL:
                findings.extend(audit_messages(rel, source))

    if wants("cachekeys"):
        findings.extend(audit_cache_keys(root))
    if wants("twins"):
        findings.extend(audit_twins(root))
    if model_checker and wants("statemachine"):
        findings.extend(run_model_checker())
    if model_checker and wants("protocol"):
        findings.extend(run_protocol_checker(root))

    kept: list[Finding] = []
    for finding in findings:
        index = indexes.get(finding.path)
        if index is not None and index.is_suppressed(finding.rule,
                                                     finding.line):
            continue
        kept.append(finding)
    unrestricted = rules is None
    for rel in sorted(indexes):
        kept.extend(indexes[rel].unused_findings(
            active_rules=None if unrestricted else active))

    kept = [f for f in kept if f.rule in active]
    return sort_findings(kept)
