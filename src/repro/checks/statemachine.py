"""Model checker for the LPD (Fig 12) and GPD (Fig 1) state machines.

The declarative ground truth lives in :mod:`repro.core.states`
(:func:`~repro.core.states.lpd_machine_spec`,
:func:`~repro.core.states.gpd_machine_spec`).  This module proves four
properties about each table and then checks the *implementations* against
them:

* **completeness** — every (state, input-class) pair has exactly one rule
  and every target state exists (``fsm-incomplete`` / ``fsm-unknown-state``);
* **determinism** — no (state, input-class) pair has two rules
  (``fsm-nondeterministic``);
* **reachability** — every state is reachable from the initial state
  (``fsm-unreachable-state``);
* **phase-change labeling** — a rule is marked ``phase_change`` exactly
  when it crosses the machine's stable/unstable boundary
  (``fsm-phase-change-label``);
* **equivalence** — driving the real ``LocalPhaseDetector`` /
  ``GlobalPhaseDetector`` through synthesized inputs reproduces the
  table edge for edge (``fsm-divergence``).

Equivalence is checked two ways.  Exhaustively: for every reachable
(state, input) pair a fresh detector is steered into ``state`` along a
shortest input path and fed one probe input, comparing next state, the
emitted phase-change event, and (LPD) the stable-set update/freeze
behavior.  End to end: whole synthetic centroid trajectories are run
through the GPD black-box, each interval's observation is classified back
into an input class, and the spec's replay must match the observed state
sequence step for step.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

import numpy as np

from repro.checks.findings import Finding, Severity
from repro.core.centroid import BandOfStability
from repro.core.gpd import GlobalPhaseDetector
from repro.core.lpd import LocalPhaseDetector
from repro.core.states import (GPD_NO_BAND, LPD_DISSIMILAR, LPD_SIMILAR,
                               MachineSpec, PhaseState, classify_gpd_input,
                               gpd_machine_spec, lpd_machine_spec)
from repro.core.thresholds import GpdThresholds, LpdThresholds

__all__ = ["check_spec", "check_lpd_equivalence", "check_gpd_equivalence",
           "check_gpd_trajectories", "run_model_checker",
           "LPD_IMPL_PATH", "GPD_IMPL_PATH"]

LPD_IMPL_PATH = "src/repro/core/lpd.py"
GPD_IMPL_PATH = "src/repro/core/gpd.py"
SPEC_PATH = "src/repro/core/states.py"


def _finding(rule: str, path: str, message: str) -> Finding:
    return Finding(rule=rule, severity=Severity.ERROR, path=path, line=0,
                   message=message)


# ---------------------------------------------------------------------------
# Table-level properties
# ---------------------------------------------------------------------------

def check_spec(spec: MachineSpec, path: str = SPEC_PATH) -> list[Finding]:
    """Completeness, determinism, reachability, phase-change labeling."""
    findings: list[Finding] = []
    known = set(spec.states)

    seen: dict[tuple[str, str], int] = {}
    for rule in spec.rules:
        pair = (rule.state, rule.input)
        seen[pair] = seen.get(pair, 0) + 1
        if rule.state not in known:
            findings.append(_finding(
                "fsm-unknown-state", path,
                f"{spec.name}: rule source state '{rule.state}' is not a "
                f"declared state"))
        if rule.next_state not in known:
            findings.append(_finding(
                "fsm-unknown-state", path,
                f"{spec.name}: rule ({rule.state}, {rule.input}) targets "
                f"undeclared state '{rule.next_state}'"))
        if rule.input not in spec.inputs:
            findings.append(_finding(
                "fsm-unknown-state", path,
                f"{spec.name}: rule on undeclared input '{rule.input}'"))

    for pair, count in seen.items():
        if count > 1:
            findings.append(_finding(
                "fsm-nondeterministic", path,
                f"{spec.name}: {count} rules for (state={pair[0]}, "
                f"input={pair[1]}); a machine must be deterministic"))

    for state in spec.states:
        for input_class in spec.inputs:
            if (state, input_class) not in seen:
                findings.append(_finding(
                    "fsm-incomplete", path,
                    f"{spec.name}: no rule for (state={state}, "
                    f"input={input_class})"))

    table = spec.table()
    reached = {spec.initial}
    frontier = deque([spec.initial])
    while frontier:
        state = frontier.popleft()
        for input_class in spec.inputs:
            rule = table.get((state, input_class))
            if rule is None or not rule.reachable:
                continue
            if rule.next_state in known and rule.next_state not in reached:
                reached.add(rule.next_state)
                frontier.append(rule.next_state)
    for state in spec.states:
        if state not in reached:
            findings.append(_finding(
                "fsm-unreachable-state", path,
                f"{spec.name}: state '{state}' is unreachable from "
                f"'{spec.initial}'"))

    for rule in spec.rules:
        if rule.state not in known or rule.next_state not in known:
            continue
        crosses = spec.is_stable(rule.state) != spec.is_stable(rule.next_state)
        if rule.phase_change != crosses:
            expected = "crosses" if crosses else "does not cross"
            findings.append(_finding(
                "fsm-phase-change-label", path,
                f"{spec.name}: rule ({rule.state}, {rule.input}) -> "
                f"{rule.next_state} {expected} the stable boundary but is "
                f"marked phase_change={rule.phase_change}"))
    return findings


def _shortest_paths(spec: MachineSpec) -> dict[str, list[str]]:
    """Shortest input sequence from the initial state to each state."""
    table = spec.table()
    paths: dict[str, list[str]] = {spec.initial: []}
    frontier = deque([spec.initial])
    while frontier:
        state = frontier.popleft()
        for input_class in spec.inputs:
            rule = table.get((state, input_class))
            if rule is None or not rule.reachable:
                continue
            if rule.next_state not in paths:
                paths[rule.next_state] = paths[state] + [input_class]
                frontier.append(rule.next_state)
    return paths


# ---------------------------------------------------------------------------
# LPD equivalence (black-box, scripted similarity measure)
# ---------------------------------------------------------------------------

class _ScriptedMeasure:
    """Similarity measure returning a pre-programmed score per interval."""

    name = "scripted"

    def __init__(self, scores: Iterable[float]) -> None:
        self._scores: deque[float] = deque(scores)

    def __call__(self, stable: np.ndarray, current: np.ndarray) -> float:
        return self._scores.popleft()


def _lpd_histogram(step: int, slots: int = 4) -> np.ndarray:
    """A distinct, non-empty histogram per step (stable-set tracking)."""
    return np.arange(1.0, slots + 1.0) + float(step)


def check_lpd_equivalence(
        spec: MachineSpec | None = None,
        thresholds: LpdThresholds | None = None) -> list[Finding]:
    """Exhaustive (state, input) probe of ``LocalPhaseDetector``."""
    spec = spec or lpd_machine_spec()
    thresholds = thresholds or LpdThresholds()
    r_hi = min(1.0, thresholds.r_threshold + 0.05)
    r_lo = max(-1.0, thresholds.r_threshold - 0.5)
    score_of = {LPD_SIMILAR: r_hi, LPD_DISSIMILAR: r_lo}
    table = spec.table()
    findings: list[Finding] = []

    for state, path in sorted(_shortest_paths(spec).items()):
        for probe in spec.inputs:
            rule = table.get((state, probe))
            if rule is None or not rule.reachable:
                continue
            inputs = path + [probe]
            measure = _ScriptedMeasure(score_of[i] for i in inputs)
            det = LocalPhaseDetector(n_instructions=4,
                                     thresholds=thresholds, measure=measure)
            # Priming interval: establishes the first stable set, no step.
            expected_set = _lpd_histogram(0)
            det.observe(expected_set, interval_index=0)
            if det.state.value != spec.initial:
                findings.append(_finding(
                    "fsm-divergence", LPD_IMPL_PATH,
                    f"lpd: implementation starts in '{det.state.value}' "
                    f"but the table's initial state is '{spec.initial}'"))
                return findings

            model_state = spec.initial
            diverged = False
            for step, input_class in enumerate(inputs, start=1):
                step_rule = table[(model_state, input_class)]
                model_state = step_rule.next_state
                counts = _lpd_histogram(step)
                event = det.observe(counts, interval_index=step)
                if step_rule.updates_stable_set:
                    expected_set = counts
                where = (f"after path {inputs[:step]} from initial "
                         f"(probing ({state}, {probe}))")
                if det.state.value != step_rule.next_state:
                    findings.append(_finding(
                        "fsm-divergence", LPD_IMPL_PATH,
                        f"lpd: implementation reached '{det.state.value}' "
                        f"but the table says '{step_rule.next_state}' "
                        f"{where}"))
                    diverged = True
                if (event is not None) != step_rule.phase_change:
                    findings.append(_finding(
                        "fsm-divergence", LPD_IMPL_PATH,
                        f"lpd: implementation "
                        f"{'emitted' if event else 'did not emit'} a phase "
                        f"change but the table says phase_change="
                        f"{step_rule.phase_change} {where}"))
                    diverged = True
                actual_set = det.stable_set()
                if (actual_set is None
                        or not np.array_equal(actual_set, expected_set)):
                    findings.append(_finding(
                        "fsm-divergence", LPD_IMPL_PATH,
                        f"lpd: stable set does not match the table's "
                        f"update/freeze behavior {where}"))
                    diverged = True
                if diverged:
                    break  # downstream steps would only repeat the report
            if diverged and len(findings) > 20:
                return findings
    return findings


# ---------------------------------------------------------------------------
# GPD equivalence (exhaustive per-step probes + trajectory replay)
# ---------------------------------------------------------------------------

def _gpd_ratio_samples(bucket: str, th: GpdThresholds) -> list[float]:
    """Representative drift ratios per bucket: midpoint and upper edge."""
    if bucket == "tight":
        return [0.0, th.th1 / 2.0, th.th1]
    if bucket == "tolerable":
        return [(th.th1 + th.th2) / 2.0, th.th2]
    if bucket == "moderate":
        return [(th.th2 + th.th3) / 2.0, th.th3]
    if bucket == "large":
        return [(th.th3 + th.th4) / 2.0, th.th4]
    return [th.th4 * 2.0, float("inf")]


def _gpd_band(thickness: str, th: GpdThresholds) -> BandOfStability:
    expectation = 1000.0
    limit = expectation / th.thickness_divisor
    sd = limit * (0.5 if thickness == "thin" else 2.0)
    return BandOfStability(expectation=expectation, sd=sd)


def _set_gpd_state(det: GlobalPhaseDetector, spec: MachineSpec,
                   state: str) -> None:
    phase = spec.phase_state(state)
    det._state = phase
    det._declared_stable = spec.is_stable(state)
    if "@" in state:
        det._timer = int(state.split("@", 1)[1])


def _gpd_model_state(det: GlobalPhaseDetector) -> str:
    if det.state is PhaseState.LESS_STABLE:
        return f"{det.state.value}@{det._timer}"
    return det.state.value


def check_gpd_equivalence(
        spec: MachineSpec | None = None,
        thresholds: GpdThresholds | None = None) -> list[Finding]:
    """Exhaustive (state, input) probe of ``GlobalPhaseDetector._step``.

    Each reachable pair is probed with several concrete drift ratios per
    bucket (midpoint and threshold edge) and both band thicknesses, so
    off-by-one threshold comparisons (``<`` vs ``<=``) cannot hide.
    """
    thresholds = thresholds or GpdThresholds()
    spec = spec or gpd_machine_spec(thresholds.dwell_intervals)
    table = spec.table()
    findings: list[Finding] = []

    for (state, input_class), rule in sorted(table.items()):
        if not rule.reachable:
            continue
        if input_class == GPD_NO_BAND:
            probes: list[tuple[BandOfStability | None, float]] = [
                (None, float("inf"))]
        else:
            bucket, thickness = input_class.rsplit("_", 1)
            band = _gpd_band(thickness, thresholds)
            probes = [(band, ratio)
                      for ratio in _gpd_ratio_samples(bucket, thresholds)]
        for band, ratio in probes:
            det = GlobalPhaseDetector(thresholds)
            _set_gpd_state(det, spec, state)
            event = det._step(band, ratio)
            reached = _gpd_model_state(det)
            where = (f"(state={state}, input={input_class}, "
                     f"ratio={ratio:g})")
            if reached != rule.next_state:
                findings.append(_finding(
                    "fsm-divergence", GPD_IMPL_PATH,
                    f"gpd: implementation reached '{reached}' but the "
                    f"table says '{rule.next_state}' at {where}"))
            if (event is not None) != rule.phase_change:
                findings.append(_finding(
                    "fsm-divergence", GPD_IMPL_PATH,
                    f"gpd: implementation "
                    f"{'emitted' if event else 'did not emit'} a phase "
                    f"change but the table says phase_change="
                    f"{rule.phase_change} at {where}"))
            if det.in_stable_phase != spec.is_stable(rule.next_state):
                findings.append(_finding(
                    "fsm-divergence", GPD_IMPL_PATH,
                    f"gpd: declared-stable flag is {det.in_stable_phase} "
                    f"but '{rule.next_state}' is "
                    f"{'stable' if spec.is_stable(rule.next_state) else 'unstable'}"
                    f" at {where}"))
    return findings


def _trajectory_sequences(th: GpdThresholds) -> list[list[float]]:
    """Synthetic centroid trajectories covering the interesting edges."""
    base = 1000.0
    sequences = [
        # Settle into stability, then collapse far out of band.
        [base] * (th.history_length + th.dwell_intervals + 4)
        + [base * 4.0] * 3,
        # Settle, take a moderate excursion (grace state), recover.
        [base] * (th.history_length + th.dwell_intervals + 4)
        + [base * (1.0 + th.th3)] + [base] * 4,
        # Settle, two consecutive moderate excursions (revocation).
        [base] * (th.history_length + th.dwell_intervals + 4)
        + [base * (1.0 + th.th3)] * 2 + [base] * 4,
        # Never settles: alternating far-apart centroids (thick band).
        [base, base * 2.0] * 8,
    ]
    rng = np.random.default_rng(20060325)
    for scale in (0.001, 0.02, 0.2):
        walk = base * (1.0 + scale * rng.standard_normal(60)).cumprod()
        sequences.append([float(v) for v in np.abs(walk) + 1.0])
    return sequences


def check_gpd_trajectories(
        spec: MachineSpec | None = None,
        thresholds: GpdThresholds | None = None,
        sequences: Sequence[Sequence[float]] | None = None) -> list[Finding]:
    """Black-box replay: run centroid trajectories through the detector,
    classify each interval's observation into an input class, and require
    the spec's walk to match the observed state sequence step for step."""
    thresholds = thresholds or GpdThresholds()
    spec = spec or gpd_machine_spec(thresholds.dwell_intervals)
    table = spec.table()
    findings: list[Finding] = []

    for seq_index, sequence in enumerate(
            sequences or _trajectory_sequences(thresholds)):
        det = GlobalPhaseDetector(thresholds)
        for value in sequence:
            det.observe_centroid(value)
        model_state = spec.initial
        for obs in det.observations:
            has_band = obs.band is not None
            thin = (has_band
                    and not obs.band.is_too_thick(thresholds.thickness_divisor))
            input_class = classify_gpd_input(
                obs.drift_ratio, thin, thresholds.th1, thresholds.th2,
                thresholds.th3, thresholds.th4, has_band=has_band)
            rule = table.get((model_state, input_class))
            if rule is None:
                findings.append(_finding(
                    "fsm-incomplete", SPEC_PATH,
                    f"gpd: trajectory {seq_index} interval "
                    f"{obs.interval_index} hit uncovered pair "
                    f"(state={model_state}, input={input_class})"))
                break
            model_state = rule.next_state
            where = (f"trajectory {seq_index} interval "
                     f"{obs.interval_index} (input={input_class})")
            if spec.phase_state(model_state) is not obs.state:
                findings.append(_finding(
                    "fsm-divergence", GPD_IMPL_PATH,
                    f"gpd: implementation in '{obs.state.value}' but the "
                    f"table says '{model_state}' at {where}"))
                break
            if (obs.event is not None) != rule.phase_change:
                findings.append(_finding(
                    "fsm-divergence", GPD_IMPL_PATH,
                    f"gpd: event mismatch (table phase_change="
                    f"{rule.phase_change}) at {where}"))
                break
    return findings


def run_model_checker(
        lpd_spec: MachineSpec | None = None,
        gpd_spec: MachineSpec | None = None) -> list[Finding]:
    """All model-checker passes over both machines."""
    lpd = lpd_spec or lpd_machine_spec()
    gpd = gpd_spec or gpd_machine_spec(GpdThresholds().dwell_intervals)
    findings = check_spec(lpd) + check_spec(gpd)
    # Property violations in a table make equivalence noise; still run the
    # drivers (mutation tests rely on divergence being reported) but guard
    # against tables too broken to walk.
    try:
        findings += check_lpd_equivalence(lpd)
    except KeyError as exc:
        findings.append(_finding(
            "fsm-incomplete", SPEC_PATH,
            f"lpd: equivalence walk aborted on uncovered pair {exc}"))
    try:
        findings += check_gpd_equivalence(gpd)
        findings += check_gpd_trajectories(gpd)
    except KeyError as exc:
        findings.append(_finding(
            "fsm-incomplete", SPEC_PATH,
            f"gpd: equivalence walk aborted on uncovered pair {exc}"))
    return findings
