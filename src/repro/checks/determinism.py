"""Determinism lint: AST rules guarding the bit-identical guarantee.

The repo's contract is that every figure is a pure function of
``(benchmark, scale, period, seed, ...)``.  Four statically detectable
defect classes break that contract; each is a rule here:

``unseeded-rng``
    Module-level ``random.*`` / ``numpy.random.*`` draws share hidden
    global state, and ``np.random.default_rng()`` / ``random.Random()``
    without a seed pull OS entropy.  Simulation code must thread an
    explicit seeded generator.
``wall-clock``
    ``time.time``, ``datetime.now`` and friends make output depend on
    when the run happened.  Progress diagnostics are legitimate — annotate
    them ``# repro: allow[wall-clock] <reason>``.
``unordered-iter``
    Iterating a set (literal, ``set()``/``frozenset()`` call, set
    comprehension, or a set-algebra expression such as
    ``a.keys() | b.keys()``) feeds hash-order into whatever consumes the
    loop.  Wrap in ``sorted(...)`` to pin the order.
``float-equality``
    ``==``/``!=`` against a non-integral float literal (``r == 0.8``) is
    almost always a rounding bug in detector code; integral sentinels
    (``0.0``, ``1.0``) are exactly representable and exempt.

The analysis is intraprocedural and alias-aware for imports
(``import numpy as np``, ``from time import time``); it does not do type
inference, so a set bound to a variable and iterated later is out of
scope — the rules aim at the idioms that actually appear in this codebase.
"""

from __future__ import annotations

import ast

from repro.checks.findings import Finding, Severity

__all__ = ["DeterminismLint", "lint_source"]

#: Legacy/global numpy.random entry points that are deterministic-safe to
#: reference (constructors that take an explicit seed, and typing names).
_NUMPY_RANDOM_SAFE = frozenset({
    "Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox",
    "MT19937", "SFC64",
})

#: Wall-clock callables by resolved dotted path.
_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Iteration-consuming builtins whose output exposes element order.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "iter"})

#: Set-algebra method names that yield sets.
_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})


class _ImportTable:
    """Resolve names/attribute chains to dotted module paths."""

    def __init__(self) -> None:
        self._aliases: dict[str, str] = {}

    def add_import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0])

    def add_import_from(self, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:
            return  # relative imports never target stdlib random/time
        for alias in node.names:
            self._aliases[alias.asname or alias.name] = (
                f"{node.module}.{alias.name}")

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted path of a Name/Attribute chain, or ``None``."""
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = self._aliases.get(current.id, current.id)
        parts.append(base)
        return ".".join(reversed(parts))


class DeterminismLint(ast.NodeVisitor):
    """One-file AST walk emitting determinism findings."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: list[Finding] = []
        self._imports = _ImportTable()

    # -- helpers -----------------------------------------------------------

    def _emit(self, rule: str, severity: Severity, node: ast.AST,
              message: str) -> None:
        self.findings.append(Finding(
            rule=rule, severity=severity, path=self.path,
            line=getattr(node, "lineno", 0), message=message))

    def _is_set_expression(self, node: ast.expr) -> bool:
        """Whether *node* statically evaluates to a set."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
                return self._is_setlike_operand(func.value) or any(
                    self._is_setlike_operand(arg) for arg in node.args)
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
            return (self._is_setlike_operand(node.left)
                    and self._is_setlike_operand(node.right))
        return False

    def _is_setlike_operand(self, node: ast.expr) -> bool:
        """Set expression, or a ``.keys()`` view (set-like under ``|&^-``)."""
        if self._is_set_expression(node):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "keys"
                and not node.args and not node.keywords)

    def _check_iteration(self, iterable: ast.expr, context: str) -> None:
        if self._is_set_expression(iterable):
            self._emit(
                "unordered-iter", Severity.ERROR, iterable,
                f"{context} iterates a set in hash order; "
                f"wrap it in sorted(...) to pin the order")

    # -- visitors ----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        self._imports.add_import(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self._imports.add_import_from(node)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, "for loop")
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration(node.iter, "for loop")
        self.generic_visit(node)

    def _visit_comprehension_node(self, node: ast.AST) -> None:
        for comp in getattr(node, "generators", []):
            self._check_iteration(comp.iter, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension_node
    visit_DictComp = _visit_comprehension_node
    visit_GeneratorExp = _visit_comprehension_node

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a set from a set keeps it unordered but harmless;
        # only iteration that *materializes an order* is flagged.
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self._check_call_rng(node)
        self._check_call_wall_clock(node)
        self._check_call_ordering(node)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        for op, comparator in zip(node.ops, node.comparators):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (node.left, comparator):
                if (isinstance(side, ast.Constant)
                        and isinstance(side.value, float)
                        and not side.value.is_integer()):
                    self._emit(
                        "float-equality", Severity.WARNING, node,
                        f"exact comparison against float literal "
                        f"{side.value!r}; use a threshold comparison "
                        f"or math.isclose")
                    break
        self.generic_visit(node)

    # -- rule bodies -------------------------------------------------------

    def _check_call_rng(self, node: ast.Call) -> None:
        path = self._imports.resolve(node.func)
        if path is None:
            return
        if path.startswith("numpy.random."):
            func = path.removeprefix("numpy.random.")
            if func == "default_rng":
                if not node.args and not node.keywords:
                    self._emit(
                        "unseeded-rng", Severity.ERROR, node,
                        "np.random.default_rng() without a seed draws OS "
                        "entropy; pass an explicit seed")
            elif func == "RandomState":
                if not node.args and not node.keywords:
                    self._emit(
                        "unseeded-rng", Severity.ERROR, node,
                        "np.random.RandomState() without a seed draws OS "
                        "entropy; pass an explicit seed")
            elif func not in _NUMPY_RANDOM_SAFE and "." not in func:
                self._emit(
                    "unseeded-rng", Severity.ERROR, node,
                    f"numpy.random.{func} uses the hidden global RNG; "
                    f"thread a np.random.default_rng(seed) generator")
        elif path == "random.Random":
            if not node.args and not node.keywords:
                self._emit(
                    "unseeded-rng", Severity.ERROR, node,
                    "random.Random() without a seed draws OS entropy; "
                    "pass an explicit seed")
        elif path.startswith("random.") and "." not in path.removeprefix(
                "random."):
            self._emit(
                "unseeded-rng", Severity.ERROR, node,
                f"{path} uses the hidden global RNG; "
                f"use random.Random(seed) or a numpy generator")

    def _check_call_wall_clock(self, node: ast.Call) -> None:
        path = self._imports.resolve(node.func)
        if path in _WALL_CLOCK:
            self._emit(
                "wall-clock", Severity.ERROR, node,
                f"{path}() makes output depend on when the run happened; "
                f"derive times from the simulation, or annotate "
                f"diagnostics with '# repro: allow[wall-clock] <reason>'")

    def _check_call_ordering(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _ORDER_SENSITIVE_CALLS:
            if node.args and self._is_set_expression(node.args[0]):
                self._check_iteration(node.args[0], f"{func.id}()")
        elif (isinstance(func, ast.Attribute) and func.attr == "join"
                and node.args and self._is_set_expression(node.args[0])):
            self._check_iteration(node.args[0], "str.join")


def lint_source(path: str, source: str) -> list[Finding]:
    """Run the determinism lint over one file's source text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(
            rule="parse-error", severity=Severity.ERROR, path=path,
            line=exc.lineno or 0, message=f"cannot parse: {exc.msg}")]
    lint = DeterminismLint(path)
    lint.visit(tree)
    return lint.findings
