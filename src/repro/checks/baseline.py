"""Baseline file support: grandfathering pre-existing findings.

The baseline is a JSON file (``repro-check-baseline.json`` at the repo
root by convention) listing fingerprints of accepted findings.  A run
fails only on findings *not* in the baseline; baselined findings that no
longer occur are reported as stale so the file shrinks monotonically.
``repro-check --write-baseline`` regenerates it from the current findings.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.checks.findings import Finding
from repro.errors import ConfigError

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """The accepted-findings ledger.

    Attributes
    ----------
    entries:
        ``fingerprint -> short description`` of each accepted finding
        (the description is informational; matching is by fingerprint).
    """

    entries: dict[str, str] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"unreadable baseline file {path}: {exc}")
        if data.get("version") != BASELINE_VERSION:
            raise ConfigError(
                f"baseline file {path} has unsupported version "
                f"{data.get('version')!r} (expected {BASELINE_VERSION})")
        entries = data.get("findings", {})
        if not isinstance(entries, dict):
            raise ConfigError(f"baseline file {path}: 'findings' must be "
                              f"a fingerprint -> description object")
        return cls(entries=dict(entries))

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        """Build a baseline accepting exactly the given findings."""
        return cls(entries={
            f.fingerprint(): f.render() for f in findings})

    def write(self, path: Path) -> None:
        """Serialize, keys sorted so the file diffs cleanly."""
        payload = {
            "version": BASELINE_VERSION,
            "findings": dict(sorted(self.entries.items())),
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=False)
                        + "\n", encoding="utf-8")

    def split(self, findings: list[Finding]) -> tuple[
            list[Finding], list[Finding], list[str]]:
        """Partition *findings* against the baseline.

        Returns ``(new, accepted, stale)``: findings not in the baseline,
        findings the baseline grandfathers, and baseline fingerprints that
        matched nothing (candidates for removal).
        """
        new: list[Finding] = []
        accepted: list[Finding] = []
        seen: set[str] = set()
        for finding in findings:
            fp = finding.fingerprint()
            if fp in self.entries:
                accepted.append(finding)
                seen.add(fp)
            else:
                new.append(finding)
        stale = [fp for fp in self.entries if fp not in seen]
        return new, accepted, stale
