"""The ``repro-check`` command-line entry point.

Usage::

    repro-check                         # lint src/ and scripts/, all passes
    repro-check --format json           # machine-readable findings
    repro-check --write-baseline        # grandfather the current findings
    repro-check --rules unseeded-rng,wall-clock src/repro/faults
    repro-check --list-rules

Exit status: 0 when no *new* (non-baselined, non-suppressed) findings
exist, 1 when there are new findings, 2 on a configuration error.  Stale
baseline entries are reported but do not fail the run — remove them with
``--write-baseline``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.checks.baseline import Baseline
from repro.checks.registry import (ALL_RULES, DEFAULT_PATHS, RULE_FAMILIES,
                                   CheckReport, run_checks)
from repro.errors import ConfigError

DEFAULT_BASELINE = "repro-check-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="Static-analysis suite guarding the repo's "
                    "bit-identical reproduction contract.")
    parser.add_argument(
        "paths", nargs="*", default=None,
        help=f"files or directories to scan (default: "
             f"{' '.join(DEFAULT_PATHS)})")
    parser.add_argument(
        "--root", default=".",
        help="repository root the scan is relative to (default: cwd)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)")
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline file of grandfathered findings "
             f"(default: {DEFAULT_BASELINE} at the root, if present)")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept all current findings into the baseline file and exit")
    parser.add_argument(
        "--rules", default=None, metavar="R1,R2",
        help="comma-separated rule ids and/or families "
             f"({', '.join(sorted(RULE_FAMILIES))}) to restrict the run to")
    parser.add_argument(
        "--no-model-checker", action="store_true",
        help="skip the state-machine and protocol model checkers")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule id with a one-line description and exit")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    out = sys.stdout

    if args.list_rules:
        width = max(len(rule) for rule in ALL_RULES)
        for family in sorted(RULE_FAMILIES):
            print(f"[{family}]", file=out)
            for rule in sorted(RULE_FAMILIES[family]):
                print(f"  {rule:<{width}}  {ALL_RULES[rule]}", file=out)
        return 0

    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"repro-check: root {args.root!r} is not a directory",
              file=sys.stderr)
        return 2

    rules: set[str] | None = None
    if args.rules:
        rules = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = rules - set(ALL_RULES) - set(RULE_FAMILIES)
        if unknown:
            print(f"repro-check: unknown rule(s) {sorted(unknown)}; "
                  f"see --list-rules", file=sys.stderr)
            return 2

    paths = tuple(args.paths) if args.paths else DEFAULT_PATHS
    baseline_path = root / (args.baseline or DEFAULT_BASELINE)

    try:
        findings = run_checks(root, paths=paths, rules=rules,
                              model_checker=not args.no_model_checker)
    except ConfigError as exc:
        print(f"repro-check: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(findings).write(baseline_path)
        print(f"repro-check: wrote {len(findings)} finding(s) to "
              f"{baseline_path}", file=out)
        return 0

    try:
        baseline = Baseline.load(baseline_path)
    except ConfigError as exc:
        print(f"repro-check: {exc}", file=sys.stderr)
        return 2
    report = CheckReport(findings, baseline)

    if args.format == "json":
        json.dump(report.to_json(), out, indent=2)
        out.write("\n")
    else:
        for finding in report.new:
            print(finding.render(), file=out)
        if report.accepted:
            print(f"repro-check: {len(report.accepted)} baselined "
                  f"finding(s) suppressed", file=out)
        if report.stale:
            print(f"repro-check: {len(report.stale)} stale baseline "
                  f"entr{'y' if len(report.stale) == 1 else 'ies'} — "
                  f"refresh with --write-baseline", file=out)
        verdict = "clean" if report.clean else (
            f"{len(report.new)} new finding(s)")
        print(f"repro-check: {verdict}", file=out)

    return 0 if report.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
