"""Structured findings emitted by ``repro-check`` passes.

Every pass reports :class:`Finding` records — rule id, severity,
``file:line`` anchor, message — which the CLI renders as text or JSON and
matches against the baseline file.  A finding's :meth:`Finding.fingerprint`
deliberately excludes the line number, so unrelated edits above a
grandfathered finding do not resurrect it.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Any


class Severity(enum.Enum):
    """How bad a finding is; the CLI fails the build on ``ERROR``."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class Finding:
    """One defect reported by a pass.

    Attributes
    ----------
    rule:
        Stable rule identifier, e.g. ``"unseeded-rng"``.
    severity:
        :class:`Severity` of the finding.
    path:
        Repo-relative path of the offending file (or a symbolic location
        such as ``"<lpd machine>"`` for model-checker findings).
    line:
        1-based line number; 0 when the finding has no line anchor.
    message:
        Human-readable description of the defect.
    """

    rule: str
    severity: Severity
    path: str
    line: int
    message: str

    def fingerprint(self) -> str:
        """Line-independent identity used for baseline matching."""
        payload = f"{self.rule}\x00{self.path}\x00{self.message}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def location(self) -> str:
        """``path:line`` (or just ``path`` for anchorless findings)."""
        return f"{self.path}:{self.line}" if self.line else self.path

    def render(self) -> str:
        """One text line: ``path:line: severity [rule] message``."""
        return f"{self.location()}: {self.severity} [{self.rule}] {self.message}"

    def to_json(self) -> dict[str, Any]:
        """JSON-serializable form (the ``--format json`` record)."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Canonical report order: by path, line, rule, message."""
    return sorted(findings,
                  key=lambda f: (f.path, f.line, f.rule, f.message))
