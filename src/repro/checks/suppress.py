"""Inline suppression comments: ``# repro: allow[rule]``.

A finding is suppressed when the flagged line (or the line directly above
it, for statements too long to annotate in place) carries an allow comment
naming the finding's rule — or ``allow[*]`` for any rule.  Everything after
the closing bracket is free-form justification and is encouraged::

    started = time.time()  # repro: allow[wall-clock] progress diagnostics

Suppressions that never fire are themselves reported (rule
``unused-suppression``) so stale annotations cannot accumulate.
"""

from __future__ import annotations

import io
import re
import tokenize

from repro.checks.findings import Finding, Severity

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")


def _comment_lines(source: str) -> list[tuple[int, str]]:
    """(line, text) of every real comment token — docstrings that merely
    *mention* the allow syntax must not register as suppressions."""
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        return [(tok.start[0], tok.string) for tok in tokens
                if tok.type == tokenize.COMMENT]
    except (tokenize.TokenizeError, SyntaxError, IndentationError):
        # Unparseable file: fall back to raw lines (the lint will report
        # a parse-error finding for it anyway).
        return list(enumerate(source.splitlines(), start=1))


class SuppressionIndex:
    """Per-file index of ``# repro: allow[...]`` comments."""

    def __init__(self, path: str) -> None:
        self.path = path
        #: line -> set of allowed rule names ("*" allows everything)
        self._allows: dict[int, set[str]] = {}
        self._used: set[int] = set()

    @classmethod
    def from_source(cls, path: str, source: str) -> "SuppressionIndex":
        """Scan *source* for allow comments, one index per file."""
        index = cls(path)
        for lineno, text in _comment_lines(source):
            match = _ALLOW_RE.search(text)
            if match is None:
                continue
            rules = {part.strip() for part in match.group(1).split(",")
                     if part.strip()}
            if rules:
                index._allows[lineno] = rules
        return index

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether a finding of *rule* at *line* is allowed (and mark the
        suppression as used)."""
        for candidate in (line, line - 1):
            rules = self._allows.get(candidate)
            if rules is not None and (rule in rules or "*" in rules):
                self._used.add(candidate)
                return True
        return False

    def unused_findings(self, active_rules: set[str] | None = None) \
            -> list[Finding]:
        """A ``unused-suppression`` warning per allow that never fired.

        When *active_rules* is given (a rule-filtered run), only
        suppressions whose named rules were **all** active can be judged
        unused — an allow for a rule that never ran this time is dormant,
        not stale.  ``allow[*]`` is only judged in unrestricted runs.
        """
        findings: list[Finding] = []
        for lineno in sorted(self._allows):
            if lineno in self._used:
                continue
            named = self._allows[lineno]
            if active_rules is not None and \
                    ("*" in named or not named <= active_rules):
                continue
            rules = ",".join(sorted(named))
            findings.append(Finding(
                rule="unused-suppression",
                severity=Severity.WARNING,
                path=self.path,
                line=lineno,
                message=f"allow[{rules}] suppresses nothing on this line",
            ))
        return findings
