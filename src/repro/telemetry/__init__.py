"""Telemetry: structured tracing and metrics for the online pipeline.

The subsystem has four layers (see ``docs/architecture.md`` §Telemetry):

* :mod:`repro.telemetry.events` — frozen dataclass events carrying
  virtual time only (interval ids, cumulative sample counts);
* :mod:`repro.telemetry.bus` — the :class:`EventBus` instrumented
  components emit into, disabled (zero-overhead) by default;
* :mod:`repro.telemetry.sinks` / :mod:`repro.telemetry.metrics` —
  pluggable consumers: null, in-memory, schema-versioned JSONL, and a
  metrics registry with Prometheus-style text exposition;
* :mod:`repro.telemetry.cli` — the ``repro-trace`` inspection CLI
  (``summary``, ``timeline``, ``regions``, ``validate``).

Telemetry is result-inert by contract: with the default
:class:`NullSink`, every figure and cache key is bit-identical to an
uninstrumented run, and enabling a sink only *observes* the pipeline.
"""

from repro.telemetry.bus import EventBus, capture, get_bus
from repro.telemetry.events import (EVENT_TYPES, SCHEMA_VERSION, CacheHit,
                                    CacheMiss, Deoptimization,
                                    IntervalClosed, PhaseChange,
                                    RegionBlacklisted, RegionFormed,
                                    RegionQuarantined, SampleBatch,
                                    StableSetFrozen, StableSetUpdated,
                                    StateTransition, TelemetryEvent)
from repro.telemetry.metrics import (Counter, Gauge, Histogram,
                                     MetricsRegistry)
from repro.telemetry.sinks import (InMemorySink, JsonlTraceSink,
                                   MetricsSink, NullSink, Sink)
from repro.telemetry.trace import (from_record, read_trace, to_record,
                                   validate_trace)

__all__ = [
    "EventBus", "get_bus", "capture",
    "TelemetryEvent", "SampleBatch", "IntervalClosed", "StateTransition",
    "PhaseChange", "StableSetFrozen", "StableSetUpdated", "RegionFormed",
    "RegionQuarantined", "RegionBlacklisted", "Deoptimization", "CacheHit",
    "CacheMiss", "EVENT_TYPES", "SCHEMA_VERSION",
    "Sink", "NullSink", "InMemorySink", "JsonlTraceSink", "MetricsSink",
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "to_record", "from_record", "read_trace", "validate_trace",
]
