"""JSONL trace schema: encode, decode, read and validate.

A trace file is line-delimited JSON.  The first record is a header::

    {"etype": "trace_header", "schema": "repro-trace", "seq": 0, "v": 1}

and every later record is one event::

    {"etype": "state_transition", "seq": 17, "v": 1, "interval_index": 4,
     "detector": "lpd", "rid": 2, "state_from": "unstable",
     "state_to": "less_unstable", "metric": 0.93}

``seq`` is a per-file monotonic counter (virtual ordering, not time);
``v`` is the schema version.  Keys are sorted and NaN/inf are rejected at
write time, so every record is strict JSON and the decoder round-trips
events exactly (`tests/telemetry/test_trace_roundtrip.py`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator

from repro.telemetry.events import (EVENT_TYPES, SCHEMA_VERSION,
                                    TelemetryEvent, event_fields)

__all__ = ["HEADER_ETYPE", "header_record", "to_record", "from_record",
           "read_trace", "validate_trace"]

#: Wire tag of the per-file header record.
HEADER_ETYPE = "trace_header"


def header_record() -> dict:
    """The trace file's first record."""
    return {"etype": HEADER_ETYPE, "schema": "repro-trace", "seq": 0,
            "v": SCHEMA_VERSION}


def to_record(event: TelemetryEvent, seq: int) -> dict:
    """Encode one event as a JSON-ready record."""
    record: dict = {"etype": event.etype, "seq": seq, "v": SCHEMA_VERSION}
    for name in event_fields(type(event)):
        record[name] = getattr(event, name)
    return record


def from_record(record: dict) -> TelemetryEvent:
    """Decode one record back into its event dataclass.

    Raises ``ValueError`` on an unknown ``etype`` or a field mismatch —
    :func:`validate_trace` reports the same problems without raising.
    """
    problems = _record_problems(record)
    if problems:
        raise ValueError("; ".join(problems))
    cls = EVENT_TYPES[record["etype"]]
    kwargs = {name: ftype(record[name])
              for name, ftype in event_fields(cls).items()}
    return cls(**kwargs)


def _record_problems(record: dict) -> list[str]:
    """Schema problems of one event record (empty list: conforming)."""
    etype = record.get("etype")
    cls = EVENT_TYPES.get(etype) if isinstance(etype, str) else None
    if cls is None:
        return [f"unknown etype {etype!r}"]
    problems: list[str] = []
    if record.get("v") != SCHEMA_VERSION:
        problems.append(f"schema version {record.get('v')!r}, "
                        f"expected {SCHEMA_VERSION}")
    if not isinstance(record.get("seq"), int):
        problems.append("missing or non-integer seq")
    expected = event_fields(cls)
    for name, ftype in expected.items():
        if name not in record:
            problems.append(f"{etype}: missing field {name!r}")
        elif ftype is float:
            if not isinstance(record[name], (int, float)) \
                    or isinstance(record[name], bool):
                problems.append(f"{etype}: field {name!r} is not a number")
        elif not isinstance(record[name], ftype) \
                or isinstance(record[name], bool):
            problems.append(f"{etype}: field {name!r} is not "
                            f"{ftype.__name__}")
    extras = set(record) - set(expected) - {"etype", "seq", "v"}
    for name in sorted(extras):
        problems.append(f"{etype}: unexpected field {name!r}")
    return problems


def read_trace(path: str | Path) -> Iterator[TelemetryEvent]:
    """Yield every event of a trace file, skipping the header.

    Raises ``ValueError`` on malformed input; use :func:`validate_trace`
    first when the file is untrusted.
    """
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            record = json.loads(line)
            if lineno == 1 and record.get("etype") == HEADER_ETYPE:
                continue
            yield from_record(record)


def validate_trace(path: str | Path) -> list[str]:
    """Structurally validate a trace file; returns problem strings.

    Checks: parseable strict JSON per line, a version-matched header
    record first, known event types, exact per-type field sets and scalar
    types, and a strictly increasing ``seq``.  An empty list means the
    trace conforms to schema version :data:`SCHEMA_VERSION`.
    """
    problems: list[str] = []
    last_seq = -1
    saw_header = False
    try:
        handle = open(path, encoding="utf-8")
    except OSError as exc:
        return [f"cannot open trace: {exc}"]
    with handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                problems.append(f"line {lineno}: blank line")
                continue
            if not line.endswith("\n"):
                problems.append(f"line {lineno}: truncated record "
                                f"(no trailing newline)")
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                problems.append(f"line {lineno}: invalid JSON ({exc.msg})")
                continue
            if not isinstance(record, dict):
                problems.append(f"line {lineno}: record is not an object")
                continue
            if lineno == 1:
                if record.get("etype") != HEADER_ETYPE:
                    problems.append("line 1: missing trace_header record")
                elif record.get("v") != SCHEMA_VERSION:
                    problems.append(
                        f"line 1: header schema version "
                        f"{record.get('v')!r}, expected {SCHEMA_VERSION}")
                else:
                    saw_header = True
                    last_seq = 0
                continue
            for problem in _record_problems(record):
                problems.append(f"line {lineno}: {problem}")
            seq = record.get("seq")
            if isinstance(seq, int):
                if seq <= last_seq:
                    problems.append(f"line {lineno}: seq {seq} is not "
                                    f"greater than previous {last_seq}")
                last_seq = seq
    if not saw_header and not problems:
        problems.append("empty trace (no header record)")
    return problems
