"""Event sinks: where emitted telemetry goes.

The sink contract is three methods — :meth:`Sink.emit`, :meth:`Sink.flush`,
:meth:`Sink.close` — all of which must be observation-only: a sink never
mutates pipeline state, never raises on well-formed events, and never
consults wall clock.  Four implementations:

* :class:`NullSink` — drops everything; the default.  A bus holding only
  null sinks reports ``enabled = False``, so instrumentation sites skip
  event construction entirely (the zero-overhead fast path).
* :class:`InMemorySink` — accumulates events in a list (tests, ad-hoc
  inspection).
* :class:`JsonlTraceSink` — schema-versioned JSONL writer for the
  ``repro-trace`` CLI; strict JSON (NaN/inf rejected), one record per
  line, flushed line-atomically so a partial trace is still valid.
* :class:`MetricsSink` — folds the event stream into a
  :class:`~repro.telemetry.metrics.MetricsRegistry` (counters, gauges,
  bounded histograms with per-region / per-detector labels).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry.events import (CacheHit, CacheMiss, Deoptimization,
                                    IntervalClosed, PhaseChange, RegionFormed,
                                    SampleBatch, StateTransition,
                                    TelemetryEvent)
from repro.telemetry.metrics import (DEFAULT_FRACTION_BUCKETS,
                                     DEFAULT_R_VALUE_BUCKETS,
                                     MetricsRegistry)
from repro.telemetry.trace import header_record, to_record

__all__ = ["Sink", "NullSink", "InMemorySink", "JsonlTraceSink",
           "MetricsSink"]


class Sink:
    """Base sink: the interface every sink implements."""

    def emit(self, event: TelemetryEvent) -> None:
        """Consume one event (must not mutate it)."""
        raise NotImplementedError

    def flush(self) -> None:
        """Push any buffered output to durable storage (no-op default)."""

    def close(self) -> None:
        """Flush and release resources; idempotent (no-op default)."""


class NullSink(Sink):
    """Drops every event.  Holding only null sinks keeps a bus disabled."""

    def emit(self, event: TelemetryEvent) -> None:
        pass


class InMemorySink(Sink):
    """Accumulates events in order; the test and inspection sink."""

    def __init__(self) -> None:
        self.events: list[TelemetryEvent] = []

    def emit(self, event: TelemetryEvent) -> None:
        self.events.append(event)

    def by_type(self, event_cls: type) -> list[TelemetryEvent]:
        """Every captured event of one class, in emission order."""
        return [e for e in self.events if isinstance(e, event_cls)]

    def clear(self) -> None:
        self.events.clear()


class JsonlTraceSink(Sink):
    """Writes a schema-versioned JSONL trace file.

    The header record is written on construction; every event appends one
    sorted-key strict-JSON line (``allow_nan=False`` — events are required
    to carry finite numbers, see the virtual-time rule).  Each record is
    written with a single ``write`` call ending in a newline, so flushing
    at any point yields a valid trace prefix — the runner relies on this
    to leave a readable partial trace behind a failed figure.

    I/O failure never propagates into the detector hot path: a write
    that raises (disk full, closed descriptor, revoked handle) only
    increments :attr:`records_dropped` and the
    ``repro_trace_dropped_total`` counter in :attr:`metrics` — the sink
    contract says observability must degrade, not take the pipeline
    down with it.  Construction still raises (an unopenable trace file
    is a configuration error the caller must see); only the per-event
    path degrades.
    """

    def __init__(self, path: str | Path,
                 metrics: MetricsRegistry | None = None) -> None:
        self.path = Path(path)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._file = open(self.path, "w", encoding="utf-8")
        self._seq = 0
        self.records_written = 0
        self.records_dropped = 0
        self._file.write(json.dumps(header_record(), sort_keys=True,
                                    allow_nan=False) + "\n")

    def _count_drop(self, exc: Exception) -> None:
        self.records_dropped += 1
        self.metrics.counter("repro_trace_dropped_total",
                             "trace records lost to sink I/O failure",
                             error=type(exc).__name__).inc()

    def emit(self, event: TelemetryEvent) -> None:
        self._seq += 1
        line = json.dumps(to_record(event, self._seq), sort_keys=True,
                          allow_nan=False)
        try:
            self._file.write(line + "\n")
        except (OSError, ValueError) as exc:
            # ValueError covers writes on a closed file object.
            self._count_drop(exc)
            return
        self.records_written += 1

    def flush(self) -> None:
        try:
            if not self._file.closed:
                self._file.flush()
        except (OSError, ValueError) as exc:
            self._count_drop(exc)

    def close(self) -> None:
        try:
            if not self._file.closed:
                self._file.flush()
                self._file.close()
        except (OSError, ValueError) as exc:
            self._count_drop(exc)


class MetricsSink(Sink):
    """Derives registry metrics from the event stream.

    Keeping aggregation in a sink means instrumentation sites emit events
    once and every consumer (JSONL trace, metrics, tests) sees the same
    stream.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry()

    def emit(self, event: TelemetryEvent) -> None:
        registry = self.registry
        registry.counter("repro_events_total",
                         "telemetry events by type",
                         etype=event.etype).inc()
        if isinstance(event, StateTransition):
            registry.counter("repro_state_transitions_total",
                             "detector machine steps",
                             detector=event.detector,
                             rid=str(event.rid)).inc()
            if event.detector == "lpd":
                registry.histogram("repro_lpd_r_value",
                                   "per-interval Pearson r",
                                   bounds=DEFAULT_R_VALUE_BUCKETS,
                                   rid=str(event.rid)).observe(event.metric)
        elif isinstance(event, PhaseChange):
            registry.counter("repro_phase_changes_total",
                             "stable/unstable boundary crossings",
                             detector=event.detector, rid=str(event.rid),
                             kind=event.kind).inc()
        elif isinstance(event, IntervalClosed):
            registry.counter("repro_intervals_total",
                             "buffer-overflow intervals processed").inc()
            registry.gauge("repro_regions_live",
                           "monitored regions after the latest interval"
                           ).set(event.n_regions)
            if event.ucr_fraction >= 0.0:
                registry.histogram("repro_ucr_fraction",
                                   "per-interval unmonitored sample share",
                                   bounds=DEFAULT_FRACTION_BUCKETS
                                   ).observe(event.ucr_fraction)
        elif isinstance(event, SampleBatch):
            registry.counter("repro_samples_total",
                             "PMU samples delivered").inc(event.batch_size)
        elif isinstance(event, Deoptimization):
            registry.counter("repro_deoptimizations_total",
                             "optimizations withdrawn",
                             reason=event.reason, action=event.action).inc()
        elif isinstance(event, RegionFormed):
            registry.counter("repro_regions_formed_total",
                             "regions entering the monitored set",
                             kind=event.kind).inc()
        elif isinstance(event, (CacheHit, CacheMiss)):
            outcome = "hit" if isinstance(event, CacheHit) else "miss"
            registry.counter("repro_cache_requests_total",
                             "simulation-cache lookups",
                             kind=event.kind, outcome=outcome).inc()
