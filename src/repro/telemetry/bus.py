"""The event bus: fan-out of telemetry events to attached sinks.

Hot-path contract
-----------------
Instrumentation sites guard every emission with a single attribute read::

    bus = self._telemetry
    if bus.enabled:
        bus.emit(StateTransition(...))

``enabled`` is a plain bool attribute recomputed on attach/detach — it is
``True`` only while at least one *non-null* sink is attached, so the
default state (one :class:`~repro.telemetry.sinks.NullSink`) costs one
attribute load and a falsy branch per site and constructs no event
objects.  The overhead gate in ``scripts/bench_compare.py`` holds this
path to within 2% of the pre-telemetry baseline.

Determinism
-----------
The bus adds no state of its own to events (sinks keep their own sequence
counters), emission order is the pipeline's deterministic execution
order, and nothing consults the clock — an instrumented run's artifacts
are bit-identical to an uninstrumented one (pinned by
``tests/property/test_telemetry_inert.py``).

Process model
-------------
One process-wide bus (:func:`get_bus`), mirroring
:data:`~repro.experiments.cache.GLOBAL_CACHE`.  Components accept an
optional ``telemetry=`` bus for isolated capture in tests; parallel warm
workers hold their own (disabled) bus, which is why the runner's
``--trace`` mode computes serially.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.telemetry.events import TelemetryEvent
from repro.telemetry.sinks import NullSink, Sink

__all__ = ["EventBus", "get_bus", "capture"]


class EventBus:
    """Dispatches events to attached sinks; disabled while all are null."""

    def __init__(self, sinks: list[Sink] | None = None) -> None:
        self._sinks: list[Sink] = list(sinks) if sinks else [NullSink()]
        self.enabled: bool = False
        self._recompute_enabled()

    def _recompute_enabled(self) -> None:
        self.enabled = any(not isinstance(sink, NullSink)
                           for sink in self._sinks)

    @property
    def sinks(self) -> tuple[Sink, ...]:
        """The attached sinks (read-only view)."""
        return tuple(self._sinks)

    def attach(self, sink: Sink) -> Sink:
        """Add a sink; returns it for chaining."""
        self._sinks.append(sink)
        self._recompute_enabled()
        return sink

    def detach(self, sink: Sink) -> None:
        """Remove a previously attached sink (no-op if absent)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass
        self._recompute_enabled()

    def emit(self, event: TelemetryEvent) -> None:
        """Deliver one event to every sink, in attachment order."""
        for sink in self._sinks:
            sink.emit(event)

    def flush(self) -> None:
        """Flush every sink (partial traces stay valid)."""
        for sink in self._sinks:
            sink.flush()

    def close(self) -> None:
        """Flush and close every sink; the bus stays usable (disabled)."""
        for sink in self._sinks:
            sink.close()
        self._sinks = [NullSink()]
        self._recompute_enabled()


#: The per-process bus every instrumented component defaults to.
#: Fork story: each forked worker inherits a *copy*, which is exactly
#: the intended per-process semantics — and shard workers never use it
#: anyway (``build_shard_session`` hands every session its own bus so
#: snapshots stay picklable).
_GLOBAL_BUS = EventBus()  # repro: allow[fork-unsafe-global] per-process by design


def get_bus() -> EventBus:
    """The process-wide :class:`EventBus`."""
    return _GLOBAL_BUS


@contextmanager
def capture(sink: Sink, bus: EventBus | None = None) -> Iterator[Sink]:
    """Attach *sink* for the duration of a block, then detach it.

    The test idiom::

        with capture(InMemorySink()) as sink:
            monitor.process_stream(stream)
        assert sink.by_type(PhaseChange)
    """
    target = bus if bus is not None else _GLOBAL_BUS
    target.attach(sink)
    try:
        yield sink
    finally:
        target.detach(sink)
