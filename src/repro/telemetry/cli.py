"""The ``repro-trace`` command-line entry point.

Render and validate JSONL traces written by
:class:`~repro.telemetry.sinks.JsonlTraceSink`::

    repro-trace validate trace.jsonl        # schema + sequencing check
    repro-trace summary trace.jsonl         # event/region/cache overview
    repro-trace summary trace.jsonl --prometheus
    repro-trace timeline trace.jsonl        # per-region phase timelines
    repro-trace timeline trace.jsonl --detector gpd
    repro-trace regions trace.jsonl --rid 3 # transition matrix + audit

Exit status: 0 on success, 1 when ``validate`` finds problems, 2 on a
usage/IO error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.telemetry.events import (Deoptimization, IntervalClosed,
                                    PhaseChange, RegionBlacklisted,
                                    RegionFormed, RegionQuarantined,
                                    SampleBatch, StableSetFrozen,
                                    StableSetUpdated, StateTransition,
                                    TelemetryEvent)
from repro.telemetry.sinks import MetricsSink
from repro.telemetry.trace import read_trace, validate_trace

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Inspect JSONL telemetry traces of the online "
                    "phase-detection pipeline.")
    sub = parser.add_subparsers(dest="command", required=True)

    validate = sub.add_parser(
        "validate", help="check schema, field types and sequencing")
    validate.add_argument("trace", help="trace file (JSONL)")

    summary = sub.add_parser(
        "summary", help="event counts, per-region totals, cache hit rate")
    summary.add_argument("trace", help="trace file (JSONL)")
    summary.add_argument("--prometheus", action="store_true",
                         help="print the metrics-registry text exposition "
                              "instead of the table")

    timeline = sub.add_parser(
        "timeline", help="per-region (or GPD) phase-state timeline")
    timeline.add_argument("trace", help="trace file (JSONL)")
    timeline.add_argument("--detector", choices=("lpd", "gpd"),
                          default="lpd",
                          help="which detector's transitions to render")
    timeline.add_argument("--rid", type=int, default=None,
                          help="restrict to one region id")

    regions = sub.add_parser(
        "regions", help="per-region formation, transition matrix, "
                        "stable-set and watchdog audit")
    regions.add_argument("trace", help="trace file (JSONL)")
    regions.add_argument("--rid", type=int, default=None,
                         help="restrict to one region id")
    return parser


def _load(path: str) -> list[TelemetryEvent]:
    problems = validate_trace(path)
    if problems:
        lines = "\n  ".join(problems[:10])
        raise SystemExit(f"repro-trace: {path} is not a valid trace:\n"
                         f"  {lines}")
    return list(read_trace(path))


# -- summary -----------------------------------------------------------------

def cmd_summary(events: list[TelemetryEvent], prometheus: bool,
                out) -> int:
    if prometheus:
        sink = MetricsSink()
        for event in events:
            sink.emit(event)
        out.write(sink.registry.to_text())
        return 0

    by_type: dict[str, int] = {}
    for event in events:
        by_type[event.etype] = by_type.get(event.etype, 0) + 1
    print(f"{len(events)} events", file=out)
    for etype in sorted(by_type):
        print(f"  {etype:<22} {by_type[etype]}", file=out)

    intervals = [e for e in events if isinstance(e, IntervalClosed)]
    samples = sum(e.batch_size for e in events
                  if isinstance(e, SampleBatch))
    if intervals:
        print(f"intervals: {len(intervals)} "
              f"(last index {intervals[-1].interval_index})", file=out)
    if samples:
        print(f"samples delivered: {samples}", file=out)

    per_region: dict[int, dict[str, int]] = {}
    for event in events:
        if isinstance(event, StateTransition) and event.detector == "lpd":
            row = per_region.setdefault(
                event.rid, {"transitions": 0, "changes": 0})
            row["transitions"] += 1
        elif isinstance(event, PhaseChange) and event.detector == "lpd":
            row = per_region.setdefault(
                event.rid, {"transitions": 0, "changes": 0})
            row["changes"] += 1
    if per_region:
        print("per-region (lpd):", file=out)
        print(f"  {'rid':>5}  {'transitions':>11}  {'changes':>7}",
              file=out)
        for rid in sorted(per_region):
            row = per_region[rid]
            print(f"  {rid:>5}  {row['transitions']:>11}  "
                  f"{row['changes']:>7}", file=out)

    gpd_changes = sum(1 for e in events if isinstance(e, PhaseChange)
                      and e.detector == "gpd")
    gpd_steps = sum(1 for e in events if isinstance(e, StateTransition)
                    and e.detector == "gpd")
    if gpd_steps:
        print(f"gpd: {gpd_steps} transitions, {gpd_changes} phase changes",
              file=out)

    hits = by_type.get("cache_hit", 0)
    misses = by_type.get("cache_miss", 0)
    if hits or misses:
        rate = hits / (hits + misses)
        print(f"cache: {hits} hits / {misses} misses "
              f"({100.0 * rate:.1f}% hit rate)", file=out)

    deopts = [e for e in events if isinstance(e, Deoptimization)]
    if deopts:
        reasons: dict[str, int] = {}
        for event in deopts:
            tag = f"{event.reason}/{event.action}"
            reasons[tag] = reasons.get(tag, 0) + 1
        rendered = ", ".join(f"{tag}: {count}"
                             for tag, count in sorted(reasons.items()))
        print(f"deoptimizations: {len(deopts)} ({rendered})", file=out)
    return 0


# -- timeline ----------------------------------------------------------------

def _segments(transitions: list[StateTransition]
              ) -> list[tuple[int, int, str]]:
    """Collapse a transition list into (first, last, state) segments."""
    segments: list[tuple[int, int, str]] = []
    for event in transitions:
        if segments and segments[-1][2] == event.state_to:
            first, _, state = segments[-1]
            segments[-1] = (first, event.interval_index, state)
        else:
            segments.append((event.interval_index, event.interval_index,
                             event.state_to))
    return segments


def cmd_timeline(events: list[TelemetryEvent], detector: str,
                 rid: int | None, out) -> int:
    spans = {e.rid: e for e in events if isinstance(e, RegionFormed)}
    streams: dict[int, list[StateTransition]] = {}
    for event in events:
        if isinstance(event, StateTransition) \
                and event.detector == detector:
            streams.setdefault(event.rid, []).append(event)
    if rid is not None:
        streams = {rid: streams[rid]} if rid in streams else {}
    if not streams:
        scope = f"rid {rid}" if rid is not None else f"{detector} events"
        print(f"no transitions for {scope} in this trace", file=out)
        return 0
    for region_id in sorted(streams):
        formed = spans.get(region_id)
        label = (f"region {region_id} "
                 f"[{formed.start:#x}-{formed.end:#x}]" if formed
                 else ("gpd" if region_id < 0
                       else f"region {region_id}"))
        rendered = "  ".join(
            f"[{first}-{last}] {state}" if first != last
            else f"[{first}] {state}"
            for first, last, state in _segments(streams[region_id]))
        print(f"{label}: {rendered}", file=out)
    return 0


# -- regions -----------------------------------------------------------------

def cmd_regions(events: list[TelemetryEvent], rid: int | None,
                out) -> int:
    formed = {e.rid: e for e in events if isinstance(e, RegionFormed)}
    rids = sorted(formed)
    transitions: dict[int, list[StateTransition]] = {}
    for event in events:
        if isinstance(event, StateTransition) and event.detector == "lpd":
            transitions.setdefault(event.rid, []).append(event)
            if event.rid not in formed:
                rids = sorted(set(rids) | {event.rid})
    if rid is not None:
        rids = [rid] if rid in rids else []
    if not rids:
        print("no region events in this trace", file=out)
        return 0

    audits: dict[int, list[str]] = {}
    for event in events:
        if isinstance(event, Deoptimization) and event.rid >= 0:
            audits.setdefault(event.rid, []).append(
                f"interval {event.interval_index}: {event.action} "
                f"({event.reason})")
        elif isinstance(event, RegionQuarantined):
            audits.setdefault(event.rid, []).append(
                f"interval {event.interval_index}: quarantined "
                f"({event.reason})")
        elif isinstance(event, RegionBlacklisted):
            audits.setdefault(event.rid, []).append(
                f"interval {event.interval_index}: blacklisted "
                f"({event.reason})")

    for region_id in rids:
        info = formed.get(region_id)
        if info is not None:
            print(f"region {region_id}  [{info.start:#x}-{info.end:#x}]  "
                  f"kind={info.kind}  formed at interval "
                  f"{info.interval_index}", file=out)
        else:
            print(f"region {region_id}  (formation not in trace)",
                  file=out)
        steps = transitions.get(region_id, [])
        matrix: dict[tuple[str, str], int] = {}
        for event in steps:
            edge = (event.state_from, event.state_to)
            matrix[edge] = matrix.get(edge, 0) + 1
        if matrix:
            print("  transitions:", file=out)
            for (src, dst), count in sorted(matrix.items()):
                print(f"    {src:>13} -> {dst:<13} {count}", file=out)
        frozen = sum(1 for e in events if isinstance(e, StableSetFrozen)
                     and e.rid == region_id)
        updated = sum(1 for e in events
                      if isinstance(e, StableSetUpdated)
                      and e.rid == region_id)
        changes = sum(1 for e in events if isinstance(e, PhaseChange)
                      and e.detector == "lpd" and e.rid == region_id)
        print(f"  phase changes: {changes}; stable set: {frozen} "
              f"freeze(s), {updated} update(s)", file=out)
        for line in audits.get(region_id, []):
            print(f"  watchdog: {line}", file=out)
    return 0


# -- entry point -------------------------------------------------------------

def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    out = sys.stdout

    if args.command == "validate":
        if not Path(args.trace).exists():
            print(f"repro-trace: no such trace {args.trace!r}",
                  file=sys.stderr)
            return 2
        problems = validate_trace(args.trace)
        if problems:
            for problem in problems:
                print(problem, file=out)
            print(f"repro-trace: {len(problems)} problem(s)", file=out)
            return 1
        count = sum(1 for _ in read_trace(args.trace))
        print(f"repro-trace: valid ({count} event record(s))", file=out)
        return 0

    try:
        events = _load(args.trace)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2

    if args.command == "summary":
        return cmd_summary(events, args.prometheus, out)
    if args.command == "timeline":
        return cmd_timeline(events, args.detector, args.rid, out)
    return cmd_regions(events, args.rid, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
