"""Typed telemetry events for the online phase-detection pipeline.

Every event is a small frozen dataclass carrying **virtual time** only —
interval indexes and cumulative sample counts, never wall clock — so an
instrumented run stays a pure function of its configuration and the
determinism lint / bit-identical caching contracts hold with telemetry
enabled.  Field values are restricted to JSON scalars (``int``, ``float``,
``str``) so a trace record round-trips losslessly through the JSONL
schema in :mod:`repro.telemetry.trace`; detector states and region kinds
travel as their enum ``.value`` strings for the same reason.

The taxonomy mirrors what the paper's figures aggregate post-hoc:
per-interval sample delivery, every detector state transition, the
phase-change edges, stable-set freezes/updates, region lifecycle
(formation, quarantine, blacklist), deoptimizations, and simulation-cache
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar

__all__ = [
    "SCHEMA_VERSION", "NO_REGION", "TelemetryEvent", "SampleBatch",
    "IntervalClosed",
    "StateTransition", "PhaseChange", "StableSetFrozen", "StableSetUpdated",
    "RegionFormed", "RegionQuarantined", "RegionBlacklisted",
    "Deoptimization", "CacheHit", "CacheMiss", "EVENT_TYPES", "event_fields",
]

#: Version of the JSONL trace record layout; bumped on any incompatible
#: change to an event's field set.
SCHEMA_VERSION = 1

#: Sentinel for "no region" in events whose emitter has no region scope
#: (the global detector, whole-cache unpatches).
NO_REGION = -1


@dataclass(frozen=True, slots=True)
class TelemetryEvent:
    """Base class of every telemetry event (never emitted as-is).

    ``etype`` is the event's wire tag: the ``"etype"`` field of its JSONL
    record and the key of :data:`EVENT_TYPES`.
    """

    etype: ClassVar[str] = ""


@dataclass(frozen=True, slots=True)
class SampleBatch(TelemetryEvent):
    """A batch of PMU samples entered the pipeline.

    ``cumulative_samples`` is the session's running sample count *after*
    this batch — the finest-grained virtual clock the pipeline has.
    """

    etype: ClassVar[str] = "sample_batch"

    cumulative_samples: int
    batch_size: int


@dataclass(frozen=True, slots=True)
class IntervalClosed(TelemetryEvent):
    """One buffer-overflow interval finished processing.

    ``ucr_fraction`` is ``-1.0`` for GPD-only sessions (no region monitor,
    so no unmonitored-code-region accounting).
    """

    etype: ClassVar[str] = "interval_closed"

    interval_index: int
    n_samples: int
    ucr_fraction: float
    n_regions: int


@dataclass(frozen=True, slots=True)
class StateTransition(TelemetryEvent):
    """One detector machine step (including self-loops).

    ``detector`` is ``"lpd"`` or ``"gpd"``; ``rid`` is the region id for
    local detectors and ``-1`` for the global one.  ``metric`` is the
    r-value (LPD) or the drift ratio (GPD, clamped to ``-1.0`` when the
    band is degenerate and the true ratio is infinite: JSON has no inf).
    """

    etype: ClassVar[str] = "state_transition"

    interval_index: int
    detector: str
    rid: int
    state_from: str
    state_to: str
    metric: float


@dataclass(frozen=True, slots=True)
class PhaseChange(TelemetryEvent):
    """A stable/unstable boundary crossing (the paper's dotted edges)."""

    etype: ClassVar[str] = "phase_change"

    interval_index: int
    detector: str
    rid: int
    kind: str
    state_from: str
    state_to: str
    detail: str


@dataclass(frozen=True, slots=True)
class StableSetFrozen(TelemetryEvent):
    """A region's stable set froze (its phase stabilized)."""

    etype: ClassVar[str] = "stable_set_frozen"

    interval_index: int
    rid: int


@dataclass(frozen=True, slots=True)
class StableSetUpdated(TelemetryEvent):
    """A region's stable set was replaced with the current histogram."""

    etype: ClassVar[str] = "stable_set_updated"

    interval_index: int
    rid: int


@dataclass(frozen=True, slots=True)
class RegionFormed(TelemetryEvent):
    """A region entered the monitored set."""

    etype: ClassVar[str] = "region_formed"

    interval_index: int
    rid: int
    start: int
    end: int
    kind: str


@dataclass(frozen=True, slots=True)
class RegionQuarantined(TelemetryEvent):
    """The watchdog removed a region from the monitored set."""

    etype: ClassVar[str] = "region_quarantined"

    interval_index: int
    rid: int
    reason: str


@dataclass(frozen=True, slots=True)
class RegionBlacklisted(TelemetryEvent):
    """A region exhausted its watchdog retry budget."""

    etype: ClassVar[str] = "region_blacklisted"

    interval_index: int
    rid: int
    reason: str


@dataclass(frozen=True, slots=True)
class Deoptimization(TelemetryEvent):
    """A deployed optimization was withdrawn (or a region degraded).

    ``action`` distinguishes the emitters: ``"deoptimize"``/``"give_up"``
    from the watchdog, ``"unpatch"`` from the RTO's per-region policy,
    ``"unpatch_all"`` from the ORIG policy's global response (``rid`` is
    ``-1`` there).
    """

    etype: ClassVar[str] = "deoptimization"

    interval_index: int
    rid: int
    reason: str
    action: str


@dataclass(frozen=True, slots=True)
class CacheHit(TelemetryEvent):
    """The simulation cache served a stored artifact.

    Cache traffic is configuration-level, not interval-level, so these two
    events carry no virtual-time field — only the store ``kind``
    (``stream``/``gpd``/``monitor``) and the deterministic key repr.
    """

    etype: ClassVar[str] = "cache_hit"

    kind: str
    key: str


@dataclass(frozen=True, slots=True)
class CacheMiss(TelemetryEvent):
    """The simulation cache computed (and retained) a fresh artifact."""

    etype: ClassVar[str] = "cache_miss"

    kind: str
    key: str


#: Wire tag -> event class, for decoding and validating trace records.
EVENT_TYPES: dict[str, type[TelemetryEvent]] = {
    cls.etype: cls
    for cls in (
        SampleBatch, IntervalClosed, StateTransition, PhaseChange,
        StableSetFrozen, StableSetUpdated, RegionFormed, RegionQuarantined,
        RegionBlacklisted, Deoptimization, CacheHit, CacheMiss,
    )
}

#: JSON scalar types an event field may use (int before float: a bool is
#: an int in Python, but events never carry bools).
_FIELD_TYPES: dict[str, type] = {"int": int, "float": float, "str": str}


def event_fields(cls: type[TelemetryEvent]) -> dict[str, type]:
    """``field name -> python type`` for one event class.

    Annotations are strings (``from __future__ import annotations``), and
    events only ever use JSON scalars, so the lookup is a direct map.
    """
    return {f.name: _FIELD_TYPES[str(f.type)] for f in fields(cls)}
