"""Metrics registry: counters, gauges and bounded histograms.

A :class:`MetricsRegistry` is a deterministic, label-aware metric store
with a Prometheus-style text exposition (:meth:`MetricsRegistry.to_text`).
Labels carry the pipeline's two natural dimensions — per-region (``rid``)
and per-detector (``lpd``/``gpd``) — plus whatever the caller needs.

Determinism: metric identity is ``(name, sorted(labels))``, exposition
output is sorted, and histograms use fixed bucket bounds, so the rendered
text of a run is itself a reproducible artifact.  Nothing here reads the
clock; rate computation is the consumer's job (the virtual clock is the
interval index).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

__all__ = ["MetricKey", "Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_FRACTION_BUCKETS", "DEFAULT_R_VALUE_BUCKETS"]

#: Bucket upper bounds for fraction-valued observations (UCR share).
DEFAULT_FRACTION_BUCKETS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9,
                            1.0)

#: Bucket upper bounds for Pearson r observations (the LPD's metric).
DEFAULT_R_VALUE_BUCKETS = (-0.5, 0.0, 0.25, 0.5, 0.7, 0.8, 0.9, 0.95, 1.0)


@dataclass(frozen=True, slots=True)
class MetricKey:
    """Identity of one metric series: name plus sorted label pairs."""

    name: str
    labels: tuple[tuple[str, str], ...] = ()

    @classmethod
    def make(cls, name: str, labels: dict[str, str]) -> "MetricKey":
        return cls(name, tuple(sorted((str(k), str(v))
                                      for k, v in labels.items())))

    def render_labels(self) -> str:
        """The ``{k="v",...}`` exposition suffix (empty without labels)."""
        if not self.labels:
            return ""
        inner = ",".join(f'{k}="{v}"' for k, v in self.labels)
        return "{" + inner + "}"


@dataclass(slots=True)
class Counter:
    """Monotonically increasing count."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError("a counter can only increase")
        self.value += amount


@dataclass(slots=True)
class Gauge:
    """Point-in-time value (last write wins)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass(slots=True)
class Histogram:
    """Bounded histogram: fixed bucket bounds plus sum and count.

    ``bounds`` are inclusive upper edges; observations above the last
    bound land in the implicit overflow (``+Inf``) bucket, so memory is
    bounded regardless of the observed range.
    """

    bounds: tuple[float, ...] = DEFAULT_FRACTION_BUCKETS
    counts: list[int] = field(default_factory=list)
    overflow: int = 0
    total: float = 0.0
    n: int = 0

    def __post_init__(self) -> None:
        if not self.bounds or list(self.bounds) != sorted(self.bounds):
            raise ConfigError("histogram bounds must be sorted, non-empty")
        if not self.counts:
            self.counts = [0] * len(self.bounds)

    def observe(self, value: float) -> None:
        self.total += value
        self.n += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.overflow += 1

    def cumulative(self) -> list[tuple[str, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs."""
        pairs: list[tuple[str, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            pairs.append((f"{bound:g}", running))
        pairs.append(("+Inf", running + self.overflow))
        return pairs


class MetricsRegistry:
    """Create-or-get store of labelled counters, gauges and histograms."""

    def __init__(self) -> None:
        self._metrics: dict[MetricKey, Counter | Gauge | Histogram] = {}
        self._help: dict[str, str] = {}
        self._kinds: dict[str, str] = {}

    def _get(self, kind: str, factory, name: str, help_text: str,
             labels: dict[str, str]):
        known = self._kinds.get(name)
        if known is not None and known != kind:
            raise ConfigError(
                f"metric {name!r} already registered as a {known}")
        self._kinds[name] = kind
        if help_text:
            self._help.setdefault(name, help_text)
        key = MetricKey.make(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, help_text: str = "",
                **labels: str) -> Counter:
        """The counter series for ``(name, labels)``."""
        return self._get("counter", Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        """The gauge series for ``(name, labels)``."""
        return self._get("gauge", Gauge, name, help_text, labels)

    def histogram(self, name: str, help_text: str = "",
                  bounds: tuple[float, ...] = DEFAULT_FRACTION_BUCKETS,
                  **labels: str) -> Histogram:
        """The histogram series for ``(name, labels)``."""
        return self._get("histogram", lambda: Histogram(bounds=bounds),
                         name, help_text, labels)

    def series(self) -> list[tuple[MetricKey, Counter | Gauge | Histogram]]:
        """Every registered series in deterministic order."""
        return sorted(self._metrics.items(),
                      key=lambda item: (item[0].name, item[0].labels))

    def to_text(self) -> str:
        """Prometheus text-exposition dump of every series (sorted)."""
        lines: list[str] = []
        last_name = None
        for key, metric in self.series():
            if key.name != last_name:
                help_text = self._help.get(key.name)
                if help_text:
                    lines.append(f"# HELP {key.name} {help_text}")
                lines.append(f"# TYPE {key.name} {self._kinds[key.name]}")
                last_name = key.name
            suffix = key.render_labels()
            if isinstance(metric, Histogram):
                for le, count in metric.cumulative():
                    bucket_key = MetricKey.make(
                        key.name, dict(key.labels) | {"le": le})
                    lines.append(f"{key.name}_bucket"
                                 f"{bucket_key.render_labels()} {count}")
                lines.append(f"{key.name}_sum{suffix} {metric.total:g}")
                lines.append(f"{key.name}_count{suffix} {metric.n}")
            else:
                lines.append(f"{key.name}{suffix} {metric.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")
