"""Region charts: the stacked-area pictures of Figures 2, 5 and 9.

A region chart is an ``(intervals, regions)`` sample-count matrix plus an
optional global-phase line (high = unstable, 0 = stable).  The experiment
harness prints a numeric digest and an ASCII rendering; the underlying
series are exposed for anyone who wants to plot them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.gpd import GlobalPhaseDetector

__all__ = ["RegionChart", "phase_line"]

_SHADES = " .:-=+*#%@"


def phase_line(detector: GlobalPhaseDetector, high: int = 1) -> np.ndarray:
    """The paper's thick line: ``high`` while unstable, 0 while stable."""
    values = np.full(len(detector.observations), high, dtype=np.int64)
    from repro.core.states import PhaseState

    for index, observation in enumerate(detector.observations):
        if observation.state in (PhaseState.STABLE,
                                 PhaseState.LESS_UNSTABLE):
            values[index] = 0
    return values


@dataclass(frozen=True)
class RegionChart:
    """A stacked per-region sample chart over intervals.

    Attributes
    ----------
    region_names:
        Column labels.
    matrix:
        ``(intervals, regions)`` sample counts.  With overlapping regions
        the row sums exceed the buffer size, as the paper notes for its
        Figure 2.
    phase:
        Optional per-interval phase indicator (0 = stable).
    """

    region_names: tuple[str, ...]
    matrix: np.ndarray
    phase: np.ndarray | None = None

    @property
    def n_intervals(self) -> int:
        return int(self.matrix.shape[0])

    def top_regions(self, k: int) -> list[tuple[str, int]]:
        """The *k* regions with the most samples, with their totals."""
        totals = self.matrix.sum(axis=0)
        order = np.argsort(totals)[::-1][:k]
        return [(self.region_names[i], int(totals[i])) for i in order]

    def region_series(self, name: str) -> np.ndarray:
        """One region's per-interval sample counts."""
        try:
            column = self.region_names.index(name)
        except ValueError:
            raise KeyError(f"no region named {name!r} in chart") from None
        return self.matrix[:, column].copy()

    def downsampled(self, n_buckets: int) -> "RegionChart":
        """Average the chart into *n_buckets* time buckets for display."""
        if n_buckets < 1:
            raise ValueError("n_buckets must be positive")
        if self.n_intervals == 0:
            return self
        buckets = np.array_split(np.arange(self.n_intervals),
                                 min(n_buckets, self.n_intervals))
        matrix = np.stack([self.matrix[idx].mean(axis=0)
                           for idx in buckets])
        phase = None
        if self.phase is not None:
            phase = np.array([self.phase[idx].mean() for idx in buckets])
        return RegionChart(self.region_names, matrix, phase)

    def render_ascii(self, width: int = 72, top_k: int = 6) -> str:
        """Density strips per region plus the phase line, for terminals."""
        chart = self.downsampled(width)
        lines = []
        for name, _total in self.top_regions(top_k):
            series = chart.region_series(name)
            peak = series.max() or 1.0
            strip = "".join(
                _SHADES[min(int(value / peak * (len(_SHADES) - 1)),
                            len(_SHADES) - 1)]
                for value in series)
            lines.append(f"{name:>16} |{strip}|")
        if chart.phase is not None:
            strip = "".join("^" if value > 0.5 else "_"
                            for value in chart.phase)
            lines.append(f"{'phase unstable':>16} |{strip}|")
        return "\n".join(lines)
