"""Side-by-side comparison of every phase-detection scheme on one stream.

One call runs the centroid GPD, the composite (CPI/DPI) GPD, the two
related-work baselines (BBV, working set) and the region monitor's local
detection over the *same* sample stream, and returns a comparable row per
scheme — the "detector zoo" view used by the benchmarks and handy for
exploring new workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import run_gpd
from repro.core.baselines import (BasicBlockVectorDetector,
                                  WorkingSetDetector)
from repro.core.performance import CompositeGlobalDetector
from repro.core.thresholds import MonitorThresholds
from repro.monitor.region_monitor import RegionMonitor
from repro.program.binary import SyntheticBinary
from repro.sampling.events import SampleStream

__all__ = ["SchemeResult", "compare_detectors"]


@dataclass(frozen=True)
class SchemeResult:
    """One detection scheme's outcome on a stream.

    Attributes
    ----------
    scheme:
        ``"centroid"``, ``"composite"``, ``"bbv"``, ``"working_set"`` or
        ``"lpd"``.
    phase_changes:
        Total phase changes (for LPD: summed over regions).
    stable_fraction:
        Fraction of intervals in a stable phase (for LPD: mean over
        regions with samples).
    scope:
        ``"global"`` or ``"local"``.
    """

    scheme: str
    phase_changes: int
    stable_fraction: float
    scope: str


def compare_detectors(stream: SampleStream,
                      binary: SyntheticBinary | None = None,
                      buffer_size: int = 2032,
                      schemes: tuple[str, ...] = ("centroid", "composite",
                                                  "bbv", "working_set",
                                                  "lpd")
                      ) -> list[SchemeResult]:
    """Run the requested schemes over one stream.

    ``binary`` is required for the ``"lpd"`` scheme (region formation
    needs the program); omit it to compare only the global schemes.
    """
    results: list[SchemeResult] = []
    for scheme in schemes:
        if scheme == "centroid":
            detector = run_gpd(stream, buffer_size)
            results.append(SchemeResult(
                scheme, len(detector.events),
                detector.stable_time_fraction(), "global"))
        elif scheme == "composite":
            composite = CompositeGlobalDetector()
            composite.process_stream(stream, buffer_size)
            results.append(SchemeResult(
                scheme, composite.phase_change_count(),
                composite.stable_time_fraction(), "global"))
        elif scheme in ("bbv", "working_set"):
            baseline = (BasicBlockVectorDetector() if scheme == "bbv"
                        else WorkingSetDetector())
            for _index, window in stream.intervals(buffer_size):
                baseline.observe_buffer(stream.pcs[window])
            results.append(SchemeResult(
                scheme, baseline.phase_change_count(),
                baseline.stable_time_fraction(), "global"))
        elif scheme == "lpd":
            if binary is None:
                raise ValueError(
                    "the 'lpd' scheme needs the program binary for "
                    "region formation")
            monitor = RegionMonitor(
                binary, MonitorThresholds(buffer_size=buffer_size))
            monitor.process_stream(stream)
            fractions = [f for f in
                         monitor.stable_time_fractions().values()]
            mean_stable = (sum(fractions) / len(fractions)
                           if fractions else 0.0)
            results.append(SchemeResult(
                scheme, monitor.total_events(), mean_stable, "local"))
        else:
            raise ValueError(f"unknown scheme {scheme!r}")
    return results
