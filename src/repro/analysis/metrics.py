"""Metric extraction shared by the experiment harness.

Thin, well-named wrappers that turn detector/monitor runs into the
statistics the paper's figures report: phase-change counts, percent of
time in stable phase, per-region breakdowns, region selection.
"""

from __future__ import annotations

import numpy as np

from repro.core.gpd import GlobalPhaseDetector
from repro.core.thresholds import GpdThresholds
from repro.costs import CostLedger
from repro.monitor.region_monitor import RegionMonitor
from repro.sampling.events import SampleStream
from repro.telemetry.bus import EventBus

__all__ = [
    "run_gpd",
    "gpd_phase_changes",
    "gpd_stable_percentage",
    "lpd_region_breakdown",
    "select_top_regions",
]


def run_gpd(stream: SampleStream, buffer_size: int,
            thresholds: GpdThresholds | None = None,
            ledger: CostLedger | None = None,
            telemetry: EventBus | None = None) -> GlobalPhaseDetector:
    """Feed every interval centroid of a stream to a fresh GPD.

    *telemetry* (``None``: the process-wide bus) receives the detector's
    event stream; it never influences the run's result.
    """
    detector = GlobalPhaseDetector(thresholds, telemetry=telemetry)
    centroids = stream.centroids(buffer_size)
    for value in centroids:
        if ledger is not None:
            ledger.charge_gpd_interval(buffer_size)
        detector.observe_centroid(float(value))
    return detector


def gpd_phase_changes(stream: SampleStream, buffer_size: int,
                      thresholds: GpdThresholds | None = None) -> int:
    """Figure 3's statistic: GPD phase changes over a run."""
    return len(run_gpd(stream, buffer_size, thresholds).events)


def gpd_stable_percentage(stream: SampleStream, buffer_size: int,
                          thresholds: GpdThresholds | None = None) -> float:
    """Figure 4's statistic: % of intervals in a declared-stable phase."""
    return 100.0 * run_gpd(stream, buffer_size,
                           thresholds).stable_time_fraction()


def lpd_region_breakdown(monitor: RegionMonitor) -> list[dict]:
    """Per-region rows for Figures 13 and 14, largest regions first.

    Each row carries the region name, total samples, local phase-change
    count and stable-time percentage.
    """
    rows = []
    regions, matrix = monitor.region_sample_matrix()
    totals = matrix.sum(axis=0)
    for region, total in zip(regions, totals):
        detector = monitor.detector(region.rid)
        rows.append({
            "region": region.name,
            "rid": region.rid,
            "samples": int(total),
            "phase_changes": detector.phase_change_count(),
            "stable_pct": 100.0 * detector.stable_time_fraction(),
        })
    rows.sort(key=lambda row: row["samples"], reverse=True)
    return rows


def select_top_regions(monitor: RegionMonitor, k: int) -> list[str]:
    """Names of the *k* regions with the most samples (the paper's
    "regions 1, 2 etc. selected by the dynamic optimizer")."""
    return [row["region"] for row in lpd_region_breakdown(monitor)[:k]]


def ground_truth_region_matrix(stream: SampleStream,
                               buffer_size: int) -> tuple[list[str],
                                                          np.ndarray]:
    """(names, intervals x regions) sample-count matrix from simulator
    ground truth — the raw material of the paper's region charts."""
    n = stream.n_intervals(buffer_size)
    n_regions = len(stream.region_names)
    matrix = np.zeros((n, n_regions), dtype=np.int64)
    ids = stream.region_ids[:n * buffer_size].reshape(n, buffer_size)
    for interval in range(n):
        matrix[interval] = np.bincount(ids[interval],
                                       minlength=n_regions)
    return list(stream.region_names), matrix
