"""Exporting experiment results to JSON and CSV.

The experiment harness renders text tables for the terminal; downstream
users (plotting scripts, regression dashboards) want machine-readable
series.  One JSON document or CSV file per experiment result.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.base import ExperimentResult

__all__ = ["result_to_dict", "write_json", "write_csv", "export_results"]


def _plain(value: object) -> object:
    """Coerce numpy scalars and other exotics to JSON-safe values."""
    if hasattr(value, "item"):
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def result_to_dict(result: "ExperimentResult") -> dict:
    """A JSON-ready dictionary of one experiment result (extras dropped)."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [[_plain(cell) for cell in row] for row in result.rows],
        "notes": result.notes,
    }


def write_json(result: "ExperimentResult", path: str | Path) -> Path:
    """Write one result as a JSON document; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result_to_dict(result), indent=2) + "\n",
                    encoding="utf-8")
    return path


def write_csv(result: "ExperimentResult", path: str | Path) -> Path:
    """Write one result's rows as CSV; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(result.headers)
        for row in result.rows:
            writer.writerow([_plain(cell) for cell in row])
    return path


def export_results(results: Iterable["ExperimentResult"],
                   directory: str | Path,
                   formats: tuple[str, ...] = ("json", "csv")
                   ) -> list[Path]:
    """Export several results into *directory*; returns written paths.

    File names follow the experiment ids: ``fig03.json`` / ``fig03.csv``.
    """
    unknown = set(formats) - {"json", "csv"}
    if unknown:
        raise ValueError(f"unknown export formats {sorted(unknown)}; "
                         f"supported: json, csv")
    directory = Path(directory)
    written: list[Path] = []
    for result in results:
        if "json" in formats:
            written.append(write_json(
                result, directory / f"{result.experiment_id}.json"))
        if "csv" in formats:
            written.append(write_csv(
                result, directory / f"{result.experiment_id}.csv"))
    return written
