"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Sequence


def format_cell(value: object) -> str:
    """Render one cell: floats get 3 significant-ish decimals."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned monospace table.

    Numeric columns are right-aligned, text columns left-aligned.
    """
    rendered = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(headers)} "
                f"columns")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    numeric = []
    for column in range(len(headers)):
        numeric.append(all(
            isinstance(row[column], (int, float)) and
            not isinstance(row[column], bool)
            for row in rows) if rows else False)

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if numeric[index]:
                parts.append(cell.rjust(widths[index]))
            else:
                parts.append(cell.ljust(widths[index]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in rendered)
    return "\n".join(lines)
