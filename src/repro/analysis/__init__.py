"""Analysis helpers: metrics, charts, table rendering."""

from repro.analysis.charts import RegionChart, phase_line
from repro.analysis.comparison import SchemeResult, compare_detectors
from repro.analysis.export import export_results, write_csv, write_json
from repro.analysis.prediction import (MarkovPhasePredictor,
                                       PhaseClassifier, PredictionReport)
from repro.analysis.metrics import (gpd_phase_changes,
                                    gpd_stable_percentage,
                                    ground_truth_region_matrix,
                                    lpd_region_breakdown, run_gpd,
                                    select_top_regions)
from repro.analysis.tables import format_table

__all__ = [
    "RegionChart",
    "phase_line",
    "SchemeResult",
    "compare_detectors",
    "export_results",
    "write_csv",
    "write_json",
    "MarkovPhasePredictor",
    "PhaseClassifier",
    "PredictionReport",
    "gpd_phase_changes",
    "gpd_stable_percentage",
    "ground_truth_region_matrix",
    "lpd_region_breakdown",
    "run_gpd",
    "select_top_regions",
    "format_table",
]
