"""Phase classification and next-phase prediction.

The paper's footnote 1 sketches the payoff of knowing the *next* phase:
"with the help of compiler annotations, future dynamic optimization
systems may deploy inter-region optimizations, such as instruction cache
prefetching for the next incoming phase", and its related work covers
phase tracking *and prediction* (Sherwood et al. [6]).  This module
provides the two pieces that sit on top of the region monitor:

* :class:`PhaseClassifier` — assigns each interval a recurring **phase
  id** online, using leader clustering over the interval's normalized
  region-share vector (the software analogue of [6]'s signature table):
  an interval joins the first known phase whose signature is within a
  Manhattan-distance threshold, else it founds a new phase.
* :class:`MarkovPhasePredictor` — an order-*k* Markov predictor over the
  phase-id sequence with running accuracy, the structure [6] implements
  in hardware.

Together they answer "which recurring behavior is this interval, and
which one comes next?" — the hook a next-phase prefetcher would use.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["PhaseClassifier", "MarkovPhasePredictor", "PredictionReport"]


class PhaseClassifier:
    """Online leader clustering of interval signatures into phase ids.

    Parameters
    ----------
    distance_threshold:
        Maximum Manhattan distance (over normalized share vectors, so in
        [0, 2]) between an interval and a phase's signature for the
        interval to join that phase.
    max_phases:
        Safety cap on distinct phases; further outliers are assigned to
        the nearest existing phase.
    """

    def __init__(self, distance_threshold: float = 0.30,
                 max_phases: int = 64) -> None:
        if not 0.0 < distance_threshold < 2.0:
            raise ConfigError("distance_threshold must lie in (0, 2)")
        if max_phases < 1:
            raise ConfigError("max_phases must be positive")
        self.distance_threshold = distance_threshold
        self.max_phases = max_phases
        self._signatures: list[np.ndarray] = []
        self._members: list[int] = []
        self.assignments: list[int] = []

    @staticmethod
    def _normalize(vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64)
        total = vector.sum()
        if total <= 0.0:
            return np.zeros_like(vector)
        return vector / total

    def classify(self, shares: np.ndarray) -> int:
        """Assign one interval's region-share vector a phase id."""
        vector = self._normalize(shares)
        best_id, best_distance = -1, float("inf")
        for phase_id, signature in enumerate(self._signatures):
            if signature.size != vector.size:
                raise ConfigError(
                    f"share vector has {vector.size} entries, classifier "
                    f"was built with {signature.size}")
            distance = float(np.abs(signature - vector).sum())
            if distance < best_distance:
                best_id, best_distance = phase_id, distance
        if best_id >= 0 and (best_distance <= self.distance_threshold
                             or len(self._signatures) >= self.max_phases):
            # Update the phase signature as a running mean of its members.
            count = self._members[best_id]
            self._signatures[best_id] = (
                (self._signatures[best_id] * count + vector) / (count + 1))
            self._members[best_id] += 1
            self.assignments.append(best_id)
            return best_id
        self._signatures.append(vector.copy())
        self._members.append(1)
        phase_id = len(self._signatures) - 1
        self.assignments.append(phase_id)
        return phase_id

    def classify_matrix(self, matrix: np.ndarray) -> list[int]:
        """Classify every row of an (intervals x regions) share matrix."""
        return [self.classify(row) for row in np.asarray(matrix)]

    @property
    def n_phases(self) -> int:
        """Distinct phases discovered so far."""
        return len(self._signatures)

    def phase_signature(self, phase_id: int) -> np.ndarray:
        """The running-mean signature of one phase."""
        try:
            return self._signatures[phase_id].copy()
        except IndexError:
            raise ConfigError(f"no phase {phase_id}") from None


@dataclass(frozen=True)
class PredictionReport:
    """Accuracy summary of a predictor run.

    Attributes
    ----------
    predictions:
        Total predictions scored (intervals after warmup).
    correct:
        Predictions that matched the next phase id.
    """

    predictions: int
    correct: int

    @property
    def accuracy(self) -> float:
        """Fraction of correct predictions (0 with no predictions)."""
        if self.predictions == 0:
            return 0.0
        return self.correct / self.predictions


class MarkovPhasePredictor:
    """Order-*k* Markov predictor over a phase-id sequence.

    Parameters
    ----------
    order:
        History length: the prediction context is the last *order* phase
        ids.
    """

    def __init__(self, order: int = 1) -> None:
        if order < 1:
            raise ConfigError("order must be at least 1")
        self.order = order
        self._table: dict[tuple[int, ...], Counter] = {}
        self._history: list[int] = []
        self._predictions = 0
        self._correct = 0

    def predict(self) -> int | None:
        """Predict the next phase id, or ``None`` without enough history.

        Falls back to shorter contexts (down to order 1) when the full
        context has never been seen.
        """
        if not self._history:
            return None
        for span in range(min(self.order, len(self._history)), 0, -1):
            context = tuple(self._history[-span:])
            counter = self._table.get(context)
            if counter:
                return counter.most_common(1)[0][0]
        return self._history[-1]  # last-value fallback

    def observe(self, phase_id: int) -> None:
        """Score the pending prediction against *phase_id* and learn."""
        prediction = self.predict()
        if prediction is not None:
            self._predictions += 1
            if prediction == phase_id:
                self._correct += 1
        for span in range(1, self.order + 1):
            if len(self._history) >= span:
                context = tuple(self._history[-span:])
                self._table.setdefault(context, Counter())[phase_id] += 1
        self._history.append(phase_id)
        if len(self._history) > self.order:
            del self._history[:-self.order]

    def observe_sequence(self, phase_ids: list[int]) -> PredictionReport:
        """Feed a whole sequence; returns the accuracy report."""
        for phase_id in phase_ids:
            self.observe(phase_id)
        return self.report()

    def report(self) -> PredictionReport:
        """Accuracy so far."""
        return PredictionReport(predictions=self._predictions,
                                correct=self._correct)
