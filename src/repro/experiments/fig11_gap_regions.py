"""Figure 11: the two named 254.gap regions and their local stability.

Paper: "Initially, we see a value of 0 for both regions, as these regions
do not execute from the start.  Also the code region 7ba2c-7ba78 is more
stable than the other region [8d25c-8d314].  From this we can see that
some regions may be more stable than others, and isolating phase
detection for each code region can result in more stable phase
detection."  Also: "When no samples are obtained in an interval for a
region, the value of r returned is the same as during the last interval."
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import (ExperimentResult, benchmark_for,
                                    monitored_run)
from repro.experiments.config import (BASE_PERIOD, DEFAULT_CONFIG,
                                      ExperimentConfig)

EXPERIMENT_ID = "fig11"
TITLE = "254.gap regions 7ba2c-7ba78 vs 8d25c-8d314 (paper Figure 11)"

PAPER_REGIONS = ("gap_g1", "gap_g2")
N_BUCKETS = 10


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> ExperimentResult:
    """Bucketed r time series for the two regions."""
    model = benchmark_for("254.gap", config)
    monitor = monitored_run(model, BASE_PERIOD, config)
    series: dict[str, np.ndarray] = {}
    summaries: list[str] = []
    for workload_name in PAPER_REGIONS:
        region = monitor.region_by_name(model.monitored_name(workload_name))
        detector = monitor.detector(region.rid)
        r_trace = np.array([o.r_value for o in detector.observations])
        series[region.name] = r_trace
        summaries.append(
            f"{region.name}: {detector.phase_change_count()} changes, "
            f"{100 * detector.stable_time_fraction():.0f}% stable")
    n = max(trace.size for trace in series.values())
    buckets = np.array_split(np.arange(n), min(N_BUCKETS, max(n, 1)))
    headers = ["time bucket"] + [f"r({name})" for name in series]
    rows: list[list] = []
    for index, bucket in enumerate(buckets):
        row: list = [index]
        for trace in series.values():
            valid = bucket[bucket < trace.size]
            row.append(float(trace[valid].mean()) if valid.size else 0.0)
        rows.append(row)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, headers=headers,
        rows=rows,
        notes="; ".join(summaries) + "; r starts at 0 before first execution")


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
