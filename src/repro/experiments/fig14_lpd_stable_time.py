"""Figure 14: per-region % of time in a locally stable phase.

Paper: "the percentage of time spent in stable phase is quite high for
most benchmarks and all sampling periods.  Local phase detection minimizes
the dependency on sampling period, and can be more robust for dynamic
optimization."
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.config import (DEFAULT_CONFIG, GPD_PERIODS,
                                      ExperimentConfig)
# Figure 14 consumes exactly Figure 13's monitor runs, so re-exporting
# fig13's warm_targets lets the parallel runner share the precomputation.
from repro.experiments.fig13_lpd_phase_changes import (per_region_stat,
                                                       warm_targets)
from repro.program.spec2000 import FIG13_BENCHMARKS

EXPERIMENT_ID = "fig14"
TITLE = "LPD per-region % time in stable phase (paper Figure 14)"


def run(config: ExperimentConfig = DEFAULT_CONFIG,
        benchmarks: tuple[str, ...] = FIG13_BENCHMARKS) -> ExperimentResult:
    """One row per (benchmark, selected region)."""
    headers = (["benchmark", "region", "span"]
               + [f"stable% @{p // 1000}k" for p in GPD_PERIODS])
    rows = per_region_stat(config, "stable_pct", benchmarks)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, headers=headers,
        rows=rows,
        notes=("compare against Figure 4: the same programs that starve "
               "GPD keep >90% locally stable regions"))


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
