"""Figure 17: speedup of RTO_LPD over RTO_ORIG.

Paper: "Speedup of RTO_LPD over RTO_ORIG where the original RTO uses the
centroid scheme and unpatches traces when phase is unstable.  Three
sampling periods have been used viz. 100K, 800K and 1.5M
cycles/interrupt."  Key shapes: "for mcf, the speedup obtained from LPD
increases as sampling period is increased ... For gap the reverse is
true"; mgrid "does not show much performance difference".
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, benchmark_for
from repro.experiments.config import (DEFAULT_CONFIG, RTO_PERIODS,
                                      ExperimentConfig)
from repro.optimizer import compare_policies
from repro.program.spec2000 import FIG17_BENCHMARKS

EXPERIMENT_ID = "fig17"
TITLE = "Speedup of RTO_LPD over RTO_ORIG (paper Figure 17)"


def run(config: ExperimentConfig = DEFAULT_CONFIG,
        benchmarks: tuple[str, ...] = FIG17_BENCHMARKS,
        n_seeds: int = 3) -> ExperimentResult:
    """One row per benchmark; columns per sampling period.

    Coarse sampling periods yield few intervals per run, so the statistic
    is averaged over ``n_seeds`` PMU seeds (the paper averages over
    repeated hardware runs).
    """
    headers = (["benchmark"]
               + [f"speedup% @{p // 1000}k" for p in RTO_PERIODS]
               + [f"orig stable% @{p // 1000}k" for p in RTO_PERIODS])
    rows: list[list] = []
    results: dict[tuple[str, int], tuple] = {}
    for name in benchmarks:
        model = benchmark_for(name, config)
        speedups: list[float] = []
        stables: list[float] = []
        for period in RTO_PERIODS:
            total_speedup = 0.0
            total_stable = 0.0
            for offset in range(n_seeds):
                orig, lpd, speedup = compare_policies(
                    model.binary, model.regions, model.workload, period,
                    seed=config.seed + offset)
                total_speedup += speedup
                total_stable += orig.stable_fraction
            results[(name, period)] = (orig, lpd)
            speedups.append(100.0 * total_speedup / n_seeds)
            stables.append(100.0 * total_stable / n_seeds)
        rows.append([name] + speedups + stables)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, headers=headers,
        rows=rows,
        notes=("mcf's gain grows with the sampling period (GPD starves in "
               "the periodic tail), gap's shrinks, mgrid ~0 — the paper's "
               "three shapes.  Magnitudes are model-bound; the paper "
               "reports up to 23.8% (mcf @1.5M) and 9.5% (gap @100k)."),
        extras={"results": results})


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
