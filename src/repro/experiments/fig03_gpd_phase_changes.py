"""Figure 3: GPD phase changes across sampling periods.

Paper: "Number of phase changes for different sampling periods.  Three
sampling periods, 45K, 450K and 900K cycles/interrupt were used."  The
headline claim: "the number of phase changes was greatly increased at low
sampling periods" for a subset of the benchmarks (galgel, facerec, gap,
mcf, ...), while most programs sit near zero at every period.
"""

from __future__ import annotations

from repro.experiments.base import (ExperimentResult, benchmark_for,
                                    gpd_run)
from repro.experiments.cache import WarmTask
from repro.experiments.config import (DEFAULT_CONFIG, GPD_PERIODS,
                                      ExperimentConfig)
from repro.program.spec2000 import FIG3_BENCHMARKS

EXPERIMENT_ID = "fig03"
TITLE = "GPD phase changes vs. sampling period (paper Figure 3)"


def warm_targets(config: ExperimentConfig,
                 benchmarks: tuple[str, ...] = FIG3_BENCHMARKS
                 ) -> list[WarmTask]:
    """The (benchmark, period) runs the parallel runner can precompute."""
    return [WarmTask("gpd", name, period)
            for name in benchmarks for period in GPD_PERIODS]


def run(config: ExperimentConfig = DEFAULT_CONFIG,
        benchmarks: tuple[str, ...] = FIG3_BENCHMARKS) -> ExperimentResult:
    """Regenerate the figure's series; one row per benchmark."""
    headers = ["benchmark"] + [f"changes @{p // 1000}k" for p in GPD_PERIODS]
    rows: list[list] = []
    detectors: dict[tuple[str, int], object] = {}
    for name in benchmarks:
        model = benchmark_for(name, config)
        row: list = [name]
        for period in GPD_PERIODS:
            detector = gpd_run(model, period, config)
            detectors[(name, period)] = detector
            row.append(len(detector.events))
        rows.append(row)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, headers=headers,
        rows=rows,
        notes=("counts scale with modeled run length (scale="
               f"{config.scale}); the paper's claim is the shape: a few "
               "benchmarks explode at 45k and collapse at 450k/900k"),
        extras={"detectors": detectors})


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
