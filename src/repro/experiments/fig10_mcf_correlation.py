"""Figure 10: Pearson's r over time for the three mcf regions.

Paper: "in spite of changes in the fraction of execution time of regions,
the samples show very high correlation between intervals.  Thus, local
analysis suggests no phase changes in 181.mcf, whereas globally phase
changes are seen every time the distribution of samples across regions
changes."
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import run_gpd
from repro.experiments.base import (ExperimentResult, benchmark_for,
                                    monitored_run, stream_for)
from repro.experiments.config import (BASE_PERIOD, DEFAULT_CONFIG,
                                      ExperimentConfig)

EXPERIMENT_ID = "fig10"
TITLE = "Pearson r over time for the three mcf regions (paper Figure 10)"

PAPER_REGIONS = ("mcf_r1", "mcf_r2", "mcf_r3")


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> ExperimentResult:
    """Min/mean r per region plus the local-vs-global contrast."""
    model = benchmark_for("181.mcf", config)
    monitor = monitored_run(model, BASE_PERIOD, config)
    headers = ["region", "mean r", "min r (post-warmup)",
               "local phase changes", "stable%"]
    rows: list[list] = []
    for workload_name in PAPER_REGIONS:
        region = monitor.region_by_name(model.monitored_name(workload_name))
        detector = monitor.detector(region.rid)
        r_values = np.array([o.r_value for o in detector.observations
                             if o.had_samples][2:])
        rows.append([
            region.name,
            float(r_values.mean()) if r_values.size else 0.0,
            float(r_values.min()) if r_values.size else 0.0,
            detector.phase_change_count(),
            100.0 * detector.stable_time_fraction(),
        ])
    gpd = run_gpd(stream_for(model, BASE_PERIOD, config),
                  config.buffer_size)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, headers=headers,
        rows=rows,
        notes=(f"local r stays ~1 (no local phase changes) while GPD saw "
               f"{len(gpd.events)} global changes on the same run"))


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
