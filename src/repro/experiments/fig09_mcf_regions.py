"""Figure 9: the three named regions of 181.mcf over time.

Paper: "a region 146f0-14770 ... takes up a large fraction of execution
time in the beginning and it diminishes towards the end, whereas another
region (142c8-14318) initially takes a small fraction of execution but
later executes for a larger fraction."
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import ground_truth_region_matrix
from repro.experiments.base import (ExperimentResult, benchmark_for,
                                    stream_for)
from repro.experiments.config import (BASE_PERIOD, DEFAULT_CONFIG,
                                      ExperimentConfig)

EXPERIMENT_ID = "fig09"
TITLE = "181.mcf regions 146f0-14770 / 142c8-14318 / 13134-133d4 (Fig 9)"

PAPER_REGIONS = ("mcf_r1", "mcf_r2", "mcf_r3")
N_BUCKETS = 10


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> ExperimentResult:
    """Per-time-bucket sample share of the three paper regions."""
    model = benchmark_for("181.mcf", config)
    stream = stream_for(model, BASE_PERIOD, config)
    names, matrix = ground_truth_region_matrix(stream, config.buffer_size)
    columns = {workload_name: names.index(workload_name)
               for workload_name in PAPER_REGIONS}
    shares = matrix / np.maximum(matrix.sum(axis=1, keepdims=True), 1)
    buckets = np.array_split(np.arange(matrix.shape[0]),
                             min(N_BUCKETS, max(matrix.shape[0], 1)))
    headers = (["time bucket"]
               + [f"{model.monitored_name(n)} share%" for n in PAPER_REGIONS])
    rows: list[list] = []
    for index, bucket in enumerate(buckets):
        row: list = [index]
        for workload_name in PAPER_REGIONS:
            column = columns[workload_name]
            row.append(100.0 * float(shares[bucket, column].mean()))
        rows.append(row)
    first, last = rows[0], rows[-1]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, headers=headers,
        rows=rows,
        notes=(f"146f0-14770 share falls {first[1]:.0f}% -> {last[1]:.0f}%; "
               f"142c8-14318 rises {first[2]:.0f}% -> {last[2]:.0f}%"))


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
