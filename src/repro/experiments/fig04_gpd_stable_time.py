"""Figure 4: percentage of time spent in a GPD-stable phase.

Paper: "Percentage of time spent in stable phase for different sampling
periods" — with the observation that stable time does *not* correlate with
the number of phase changes (181.mcf has many changes *and* high stable
time at 45k thanks to fast response; 187.facerec is unstable most of the
time).
"""

from __future__ import annotations

from repro.experiments.base import (ExperimentResult, benchmark_for,
                                    gpd_run)
from repro.experiments.cache import WarmTask
from repro.experiments.config import (DEFAULT_CONFIG, GPD_PERIODS,
                                      ExperimentConfig)
from repro.program.spec2000 import FIG3_BENCHMARKS

EXPERIMENT_ID = "fig04"
TITLE = "% of intervals in GPD-stable phase (paper Figure 4)"


def warm_targets(config: ExperimentConfig,
                 benchmarks: tuple[str, ...] = FIG3_BENCHMARKS
                 ) -> list[WarmTask]:
    """The (benchmark, period) runs the parallel runner can precompute."""
    return [WarmTask("gpd", name, period)
            for name in benchmarks for period in GPD_PERIODS]


def run(config: ExperimentConfig = DEFAULT_CONFIG,
        benchmarks: tuple[str, ...] = FIG3_BENCHMARKS) -> ExperimentResult:
    """Regenerate the figure's series; one row per benchmark."""
    headers = ["benchmark"] + [f"stable% @{p // 1000}k" for p in GPD_PERIODS]
    rows: list[list] = []
    for name in benchmarks:
        model = benchmark_for(name, config)
        row: list = [name]
        for period in GPD_PERIODS:
            detector = gpd_run(model, period, config)
            row.append(100.0 * detector.stable_time_fraction())
        rows.append(row)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, headers=headers,
        rows=rows,
        notes=("mcf: many changes AND high stable% at 45k; facerec/galgel: "
               "mostly unstable — the paper's no-correlation observation"))


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
