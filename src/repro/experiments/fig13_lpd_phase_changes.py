"""Figure 13: per-region LPD phase changes across sampling periods.

Paper: "Sensitivity to sampling period for a selected set of benchmark
programs using local phase detection.  The graph shows selected benchmarks
that have a large number of phase changes at low sampling periods using
the centroid scheme."  Headline: "We observe that only a few regions
change phases repeatedly using local phase detection" — one short-lived
254.gap region (~120 changes) and 188.ammp's huge near-threshold region
are the exceptions.
"""

from __future__ import annotations

from repro.experiments.base import (ExperimentResult, benchmark_for,
                                    monitored_run)
from repro.experiments.cache import WarmTask
from repro.experiments.config import (DEFAULT_CONFIG, GPD_PERIODS,
                                      ExperimentConfig)
from repro.errors import RegionError
from repro.program.spec2000 import FIG13_BENCHMARKS

EXPERIMENT_ID = "fig13"
TITLE = "LPD per-region phase changes vs. sampling period (Figure 13)"


def warm_targets(config: ExperimentConfig,
                 benchmarks: tuple[str, ...] = FIG13_BENCHMARKS
                 ) -> list[WarmTask]:
    """The (benchmark, period) monitor runs shared with Figure 14."""
    return [WarmTask("monitor", name, period)
            for name in benchmarks for period in GPD_PERIODS]


def per_region_stat(config: ExperimentConfig, statistic: str,
                    benchmarks: tuple[str, ...]) -> list[list]:
    """Shared engine for Figures 13 (changes) and 14 (stable%)."""
    rows: list[list] = []
    for name in benchmarks:
        model = benchmark_for(name, config)
        monitors = {period: monitored_run(model, period, config)
                    for period in GPD_PERIODS}
        for rank, workload_name in enumerate(model.selected_region_names,
                                             start=1):
            row: list = [name, f"r{rank}",
                         model.monitored_name(workload_name)]
            for period in GPD_PERIODS:
                monitor = monitors[period]
                try:
                    region = monitor.region_by_name(
                        model.monitored_name(workload_name))
                    detector = monitor.detector(region.rid)
                except RegionError:
                    row.append(0 if statistic == "changes" else 0.0)
                    continue
                if statistic == "changes":
                    row.append(detector.phase_change_count())
                else:
                    row.append(100.0 * detector.stable_time_fraction())
            rows.append(row)
    return rows


def run(config: ExperimentConfig = DEFAULT_CONFIG,
        benchmarks: tuple[str, ...] = FIG13_BENCHMARKS) -> ExperimentResult:
    """One row per (benchmark, selected region)."""
    headers = (["benchmark", "region", "span"]
               + [f"changes @{p // 1000}k" for p in GPD_PERIODS])
    rows = per_region_stat(config, "changes", benchmarks)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, headers=headers,
        rows=rows,
        notes=("most regions: 0-3 changes at every period; gap's "
               "short-lived region and ammp's huge region are the "
               "paper's two exceptions"))


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
