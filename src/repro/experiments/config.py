"""Shared configuration for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.thresholds import DEFAULT_BUFFER_SIZE
from repro.errors import ConfigError

#: The paper's Figure 3/4/13/14 sampling-period sweep (cycles/interrupt).
GPD_PERIODS = (45_000, 450_000, 900_000)

#: The paper's Figure 17 sweep.
RTO_PERIODS = (100_000, 800_000, 1_500_000)

#: Sampling period used for the single-period figures (2, 5-11, 15, 16).
BASE_PERIOD = 45_000


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """Knobs every experiment accepts.

    Attributes
    ----------
    scale:
        Workload-duration multiplier.  1.0 reproduces the reported
        numbers; smaller values trade fidelity for speed (tests use
        ~0.05).
    seed:
        PMU seed.
    buffer_size:
        Samples per interval (the paper's 2032).
    """

    scale: float = 1.0
    seed: int = 7
    buffer_size: int = DEFAULT_BUFFER_SIZE

    def __post_init__(self) -> None:
        if self.scale <= 0.0:
            raise ConfigError("scale must be positive")
        if self.buffer_size < 2:
            raise ConfigError("buffer_size must be at least 2")


DEFAULT_CONFIG = ExperimentConfig()
