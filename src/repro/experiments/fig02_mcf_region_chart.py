"""Figure 2: 181.mcf region chart with the GPD phase line.

Paper: a stacked chart of per-region samples over 181.mcf's execution with
a thick line that is high while the phase is unstable; "phase detection
for 181.mcf is able to track changes in the pattern of execution.
However, we also find that the phase remains unstable for quite some time
towards the end of execution" (the periodic tail).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.charts import RegionChart, phase_line
from repro.analysis.metrics import ground_truth_region_matrix, run_gpd
from repro.experiments.base import (ExperimentResult, benchmark_for,
                                    stream_for)
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig

EXPERIMENT_ID = "fig02"
TITLE = "181.mcf region chart with GPD phase line (paper Figure 2)"

#: The paper's Figure 2 runs the prototype at its default sampling setup;
#: we use 450k, where the late periodic section aliases and the unstable
#: tail is visible.
PERIOD = 450_000

#: Time buckets the run is summarized into.
N_BUCKETS = 10


def build_chart(config: ExperimentConfig = DEFAULT_CONFIG,
                benchmark: str = "181.mcf",
                period: int = PERIOD) -> RegionChart:
    """The full-resolution chart object (for plotting or rendering)."""
    model = benchmark_for(benchmark, config)
    stream = stream_for(model, period, config)
    names, matrix = ground_truth_region_matrix(stream, config.buffer_size)
    detector = run_gpd(stream, config.buffer_size)
    # Label columns the way the paper does: by address range.
    labeled = tuple(model.monitored_name(name) if name in model.regions
                    else name for name in names)
    return RegionChart(labeled, matrix, phase_line(detector))


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> ExperimentResult:
    """Summarize the chart into time buckets: dominant region + phase."""
    chart = build_chart(config)
    bucketed = chart.downsampled(N_BUCKETS)
    headers = ["time bucket", "dominant region", "dominant share%",
               "2nd region", "unstable%"]
    rows: list[list] = []
    for index in range(bucketed.n_intervals):
        counts = bucketed.matrix[index]
        order = np.argsort(counts)[::-1]
        total = counts.sum() or 1.0
        rows.append([
            index,
            bucketed.region_names[order[0]],
            100.0 * counts[order[0]] / total,
            bucketed.region_names[order[1]],
            100.0 * float(bucketed.phase[index]),
        ])
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, headers=headers,
        rows=rows,
        notes=("146f0-14770 dominates early and fades; 142c8-14318 grows; "
               "the tail is periodic and GPD-unstable"),
        extras={"chart": chart})


def main() -> None:  # pragma: no cover - CLI convenience
    result = run()
    print(result.to_table())
    print()
    print(result.extras["chart"].render_ascii())


if __name__ == "__main__":  # pragma: no cover
    main()
