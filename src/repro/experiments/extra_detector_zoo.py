"""Bonus experiment: every detection scheme on the same streams.

Not a numbered paper figure — this regenerates the *comparison* the
paper's related-work section (§4) makes in prose: on a periodic program
(187.facerec) the frequency-sensitive global schemes (PC centroid,
Sherwood-style BBV) flap, the set-based working-set scheme is too coarse
to see anything, and per-region local detection is both calm and
accurate.  A stable program (171.swim) is the control.
"""

from __future__ import annotations

from repro.analysis.comparison import compare_detectors
from repro.experiments.base import (ExperimentResult, benchmark_for,
                                    stream_for)
from repro.experiments.config import (BASE_PERIOD, DEFAULT_CONFIG,
                                      ExperimentConfig)

EXPERIMENT_ID = "zoo"
TITLE = "Detector zoo: all schemes on identical streams (paper §4)"

BENCHMARKS = ("187.facerec", "171.swim")


def run(config: ExperimentConfig = DEFAULT_CONFIG,
        benchmarks: tuple[str, ...] = BENCHMARKS) -> ExperimentResult:
    """One row per (benchmark, scheme)."""
    headers = ["benchmark", "scheme", "scope", "phase changes", "stable%"]
    rows: list[list] = []
    for name in benchmarks:
        model = benchmark_for(name, config)
        stream = stream_for(model, BASE_PERIOD, config)
        for result in compare_detectors(stream, model.binary,
                                        buffer_size=config.buffer_size):
            rows.append([name, result.scheme, result.scope,
                         result.phase_changes,
                         100.0 * result.stable_fraction])
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, headers=headers,
        rows=rows,
        notes=("frequency-weighted global schemes flap on periodic "
               "working sets; membership-only working-set signatures are "
               "too coarse; local detection is calm on both programs"))


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
