"""Bonus experiment: detector robustness under injected PMU faults.

Not a numbered paper figure — it quantifies the robustness claim behind
the paper's deployment story: local (per-region) phase detection keeps
its verdicts under the sampling pathologies a real PMU stack exhibits
(lost interrupts, PC skid), while the centroid GPD — whose centroid
moves with every lost interval — reports spurious phase changes.

For each benchmark the sweep runs the same seed's stream through a
ladder of fault plans (clean, 10% drop, 20% drop, 20% drop + PC skid)
and reports, per detector, the *excess* phase changes relative to the
clean run (spurious changes caused purely by the faults) and the
stable-time delta.  Faulted runs share the PR-1 cache — the fault-plan
token is part of every cache key — and participate in the ``--jobs``
warm phase like any other run.
"""

from __future__ import annotations

from repro.experiments.base import (ExperimentResult, benchmark_for,
                                    gpd_run, monitored_run)
from repro.experiments.cache import WarmTask
from repro.experiments.config import (BASE_PERIOD, DEFAULT_CONFIG,
                                      ExperimentConfig)
from repro.faults import FaultPlan, PcSkid, SampleDrop
from repro.program.spec2000 import FIG13_BENCHMARKS

EXPERIMENT_ID = "faultsweep"
TITLE = "GPD vs LPD spurious phase changes under PMU faults"

#: The fault ladder, mildest first.  The clean plan anchors the deltas.
PLANS: tuple[tuple[str, FaultPlan], ...] = (
    ("clean", FaultPlan(())),
    ("drop10", FaultPlan((SampleDrop(rate=0.10, burst_mean=4.0),))),
    ("drop20", FaultPlan((SampleDrop(rate=0.20, burst_mean=4.0),))),
    ("drop20+skid", FaultPlan((SampleDrop(rate=0.20, burst_mean=4.0),
                               PcSkid(distribution="exponential",
                                      scale=2.0)))),
)


def warm_targets(config: ExperimentConfig,
                 benchmarks: tuple[str, ...] = FIG13_BENCHMARKS
                 ) -> list[WarmTask]:
    """Every (benchmark, plan) GPD + monitor run of the sweep."""
    tasks: list[WarmTask] = []
    for name in benchmarks:
        for _, plan in PLANS:
            token = () if plan.is_empty else plan.token()
            tasks.append(WarmTask("gpd", name, BASE_PERIOD, faults=token))
            tasks.append(WarmTask("monitor", name, BASE_PERIOD,
                                  faults=token))
    return tasks


def _lpd_stats(monitor) -> tuple[int, float]:
    """Total phase changes and mean stable% across monitored regions."""
    fractions = list(monitor.stable_time_fractions().values())
    mean_stable = (100.0 * sum(fractions) / len(fractions)
                   if fractions else 0.0)
    return monitor.total_events(), mean_stable


def run(config: ExperimentConfig = DEFAULT_CONFIG,
        benchmarks: tuple[str, ...] = FIG13_BENCHMARKS) -> ExperimentResult:
    """One row per (benchmark, fault plan); deltas are vs the clean run."""
    headers = ["benchmark", "faults", "GPD chg", "LPD chg",
               "GPD spurious", "LPD spurious",
               "GPD stable Δ%", "LPD stable Δ%"]
    rows: list[list] = []
    spurious: dict[str, dict[str, tuple[int, int]]] = {}
    for name in benchmarks:
        model = benchmark_for(name, config)
        base_gpd = gpd_run(model, BASE_PERIOD, config)
        base_monitor = monitored_run(model, BASE_PERIOD, config)
        base_gpd_changes = len(base_gpd.events)
        base_gpd_stable = 100.0 * base_gpd.stable_time_fraction()
        base_lpd_changes, base_lpd_stable = _lpd_stats(base_monitor)
        spurious[name] = {}
        for label, plan in PLANS:
            if plan.is_empty:
                gpd, monitor = base_gpd, base_monitor
            else:
                gpd = gpd_run(model, BASE_PERIOD, config, plan=plan)
                monitor = monitored_run(model, BASE_PERIOD, config,
                                        plan=plan)
            gpd_changes = len(gpd.events)
            gpd_stable = 100.0 * gpd.stable_time_fraction()
            lpd_changes, lpd_stable = _lpd_stats(monitor)
            gpd_spurious = max(0, gpd_changes - base_gpd_changes)
            lpd_spurious = max(0, lpd_changes - base_lpd_changes)
            spurious[name][label] = (gpd_spurious, lpd_spurious)
            rows.append([name, label, gpd_changes, lpd_changes,
                         gpd_spurious, lpd_spurious,
                         gpd_stable - base_gpd_stable,
                         lpd_stable - base_lpd_stable])
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, headers=headers,
        rows=rows,
        notes=("spurious = phase changes in excess of the same seed's "
               "clean run; the per-region detectors ride out drop/skid "
               "faults that swing the global centroid"),
        extras={"spurious": spurious})


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
