"""Cross-figure simulation/monitor cache (the perf engine's memo layer).

Several figures consume *identical* ``(benchmark, scale, period, seed)``
PMU streams — fig04 re-simulates every stream fig03 just produced, fig14
re-monitors fig13's runs, and fig06/fig15/fig16 share their list-monitor
runs — and everything downstream of a stream is a pure function of the
experiment configuration.  The :class:`SimulationCache` memoizes the three
expensive artifact kinds behind :mod:`repro.experiments.base`:

* raw :class:`~repro.sampling.SampleStream` simulations, keyed
  ``(benchmark, scale, period, seed)``;
* completed :class:`~repro.monitor.RegionMonitor` runs, keyed
  ``(benchmark, scale, period, seed, buffer_size, attribution)``;
* completed global-phase-detector runs, keyed
  ``(benchmark, scale, period, seed, buffer_size)``.

Cached monitors and detectors are shared objects: callers must treat them
as read-only summaries (every in-tree experiment does).

Process model: each process owns one :data:`GLOBAL_CACHE` guarded by an
``RLock`` (safe under threads and under nested ``monitored_run`` →
``stream_for`` lookups).  Worker processes of the parallel runner each
build their own cache and ship finished artifacts back to the parent,
which injects them via the ``put_*`` methods — results are therefore
bit-identical whether a key was computed here or in a worker, because
every computation is seeded by its key.  The cache is bounded LRU so
full-scale sweeps cannot grow memory without limit, and it can be
disabled globally (the runner's ``--no-cache``) or temporarily
(:func:`cache_disabled`).

Telemetry: every memoized lookup emits a
:class:`~repro.telemetry.events.CacheHit` or
:class:`~repro.telemetry.events.CacheMiss` on the process bus (nothing
when the cache is disabled — there is no lookup to report).  Telemetry is
deliberately *not* part of any cache key: it is result-inert, and a cache
hit therefore re-plays no pipeline events — the trace records the hit
itself instead.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.telemetry.bus import get_bus
from repro.telemetry.events import CacheHit, CacheMiss

__all__ = ["StreamKey", "MonitorKey", "GpdKey", "WarmTask", "CacheStats",
           "SimulationCache", "GLOBAL_CACHE", "get_cache", "set_enabled",
           "cache_disabled"]

T = TypeVar("T")


@dataclass(frozen=True, slots=True)
class StreamKey:
    """Identity of one simulated PMU stream.

    ``faults`` is the applied :meth:`~repro.faults.FaultPlan.token`
    (empty tuple: the ideal, un-faulted stream), so faulted and ideal
    artifacts of the same run never collide.  ``trace`` is the replay
    identity token of a recorded trace
    (:meth:`~repro.ingest.TraceIdentity.token` — content checksum plus
    replay parameters; empty tuple: a synthetic simulation), so two
    recordings replayed under the same name never collide either.
    """

    benchmark: str
    scale: float
    period: int
    seed: int
    faults: tuple = ()
    trace: tuple = ()


@dataclass(frozen=True, slots=True)
class MonitorKey:
    """Identity of one completed region-monitor run.

    ``backend`` is the *result-equivalence class* of the execution
    backend, not the backend itself: backends the conformance suite
    proves bit-identical map to the same token (see
    :func:`repro.experiments.base._backend_token`), so they share
    entries by construction.
    """

    benchmark: str
    scale: float
    period: int
    seed: int
    buffer_size: int
    attribution: str
    faults: tuple = ()
    backend: str = "scalar"
    trace: tuple = ()


@dataclass(frozen=True, slots=True)
class GpdKey:
    """Identity of one completed global-phase-detector run.

    ``backend`` follows the same equivalence-class rule as
    :class:`MonitorKey`.
    """

    benchmark: str
    scale: float
    period: int
    seed: int
    buffer_size: int
    faults: tuple = ()
    backend: str = "scalar"
    trace: tuple = ()


@dataclass(frozen=True, slots=True)
class WarmTask:
    """One unit of parallel pre-computation for the ``--jobs`` runner.

    ``kind`` selects the artifact: ``"stream"`` (simulation only),
    ``"gpd"`` (stream + global detector) or ``"monitor"`` (stream +
    region-monitor run with the given attribution strategy).  ``faults``
    carries a fault-plan token; workers rebuild the plan with
    :meth:`~repro.faults.FaultPlan.from_token`.
    """

    kind: str
    benchmark: str
    period: int
    attribution: str = "list"
    faults: tuple = ()


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters and store sizes for reporting."""

    hits: int
    misses: int
    streams: int
    monitors: int
    detectors: int

    def __str__(self) -> str:
        return (f"{self.hits} hits / {self.misses} misses "
                f"({self.streams} streams, {self.monitors} monitors, "
                f"{self.detectors} detectors held)")


class SimulationCache:
    """Bounded, lock-guarded memo store for experiment artifacts.

    Parameters
    ----------
    max_entries:
        Per-store LRU bound (streams, monitors and detectors are bounded
        independently).
    """

    def __init__(self, max_entries: int = 256) -> None:
        self.max_entries = max_entries
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self._lock = threading.RLock()
        self._streams: OrderedDict[StreamKey, object] = OrderedDict()
        self._monitors: OrderedDict[MonitorKey, object] = OrderedDict()
        self._detectors: OrderedDict[GpdKey, object] = OrderedDict()

    # -- generic memoization ------------------------------------------------

    def _memoize(self, store: OrderedDict, key, compute: Callable[[], T],
                 kind: str) -> T:
        if not self.enabled:
            return compute()
        with self._lock:
            bus = get_bus()
            if key in store:
                store.move_to_end(key)
                self.hits += 1
                if bus.enabled:
                    bus.emit(CacheHit(kind=kind, key=repr(key)))
                return store[key]
            self.misses += 1
            if bus.enabled:
                bus.emit(CacheMiss(kind=kind, key=repr(key)))
            value = compute()
            store[key] = value
            while len(store) > self.max_entries:
                store.popitem(last=False)
            return value

    def _put(self, store: OrderedDict, key, value) -> None:
        if not self.enabled:
            return
        with self._lock:
            store[key] = value
            store.move_to_end(key)
            while len(store) > self.max_entries:
                store.popitem(last=False)

    # -- typed entry points --------------------------------------------------

    def stream(self, key: StreamKey, compute: Callable[[], T]) -> T:
        """The stream for *key*, computing and retaining it on a miss."""
        return self._memoize(self._streams, key, compute, "stream")

    def monitor(self, key: MonitorKey, compute: Callable[[], T]) -> T:
        """The monitor run for *key*, computing and retaining on a miss."""
        return self._memoize(self._monitors, key, compute, "monitor")

    def detector(self, key: GpdKey, compute: Callable[[], T]) -> T:
        """The GPD run for *key*, computing and retaining on a miss."""
        return self._memoize(self._detectors, key, compute, "gpd")

    def put_stream(self, key: StreamKey, value) -> None:
        """Inject a stream computed elsewhere (a worker process)."""
        self._put(self._streams, key, value)

    def put_monitor(self, key: MonitorKey, value) -> None:
        """Inject a monitor run computed elsewhere."""
        self._put(self._monitors, key, value)

    def put_detector(self, key: GpdKey, value) -> None:
        """Inject a GPD run computed elsewhere."""
        self._put(self._detectors, key, value)

    # -- management -----------------------------------------------------------

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._streams.clear()
            self._monitors.clear()
            self._detectors.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> CacheStats:
        """Current counters and store sizes."""
        with self._lock:
            return CacheStats(hits=self.hits, misses=self.misses,
                              streams=len(self._streams),
                              monitors=len(self._monitors),
                              detectors=len(self._detectors))


#: The per-process cache every experiment helper routes through.
GLOBAL_CACHE = SimulationCache()


def get_cache() -> SimulationCache:
    """The process-wide :class:`SimulationCache`."""
    return GLOBAL_CACHE


def set_enabled(enabled: bool) -> None:
    """Globally enable or disable memoization (``--no-cache``)."""
    GLOBAL_CACHE.enabled = enabled


@contextmanager
def cache_disabled():
    """Temporarily bypass the cache (fresh computation guaranteed)."""
    previous = GLOBAL_CACHE.enabled
    GLOBAL_CACHE.enabled = False
    try:
        yield
    finally:
        GLOBAL_CACHE.enabled = previous
