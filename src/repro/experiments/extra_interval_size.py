"""Bonus experiment: GPD sensitivity to the interval (buffer) size.

Not a numbered paper figure — it quantifies the claim of §2.3 that the
centroid scheme "is sensitive to sampling period, interval size and
thresholds.  Interval size is usually determined by the sampling period,
but can be independently set."  At a fixed 45k sampling period, sweeping
the buffer size moves the interval duration exactly like sweeping the
period does, and the GPD's verdicts swing with it while per-region LPD
barely moves.
"""

from __future__ import annotations

from repro.analysis.metrics import run_gpd
from repro.core.thresholds import MonitorThresholds
from repro.experiments.base import (ExperimentResult, benchmark_for,
                                    stream_for)
from repro.experiments.config import (BASE_PERIOD, DEFAULT_CONFIG,
                                      ExperimentConfig)
from repro.monitor import RegionMonitor

EXPERIMENT_ID = "ivalsize"
TITLE = "GPD vs LPD sensitivity to interval size (paper §2.3)"

BUFFER_SIZES = (508, 1016, 2032, 4064, 8128)
BENCHMARK = "187.facerec"


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> ExperimentResult:
    """One row per buffer size on the flapper benchmark."""
    model = benchmark_for(BENCHMARK, config)
    stream = stream_for(model, BASE_PERIOD, config)
    headers = ["buffer size", "intervals", "GPD changes", "GPD stable%",
               "LPD changes (sum)", "LPD stable% (mean)"]
    rows: list[list] = []
    for buffer_size in BUFFER_SIZES:
        gpd = run_gpd(stream, buffer_size)
        monitor = RegionMonitor(
            model.binary, MonitorThresholds(buffer_size=buffer_size))
        monitor.process_stream(stream)
        fractions = list(monitor.stable_time_fractions().values())
        mean_stable = (100.0 * sum(fractions) / len(fractions)
                       if fractions else 0.0)
        rows.append([buffer_size, stream.n_intervals(buffer_size),
                     len(gpd.events),
                     100.0 * gpd.stable_time_fraction(),
                     monitor.total_events(), mean_stable])
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, headers=headers,
        rows=rows,
        notes=(f"{BENCHMARK} at the fixed {BASE_PERIOD // 1000}k period: "
               "the same run flips from flapping to averaged as the "
               "interval grows; the per-region counts stay flat"))


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
