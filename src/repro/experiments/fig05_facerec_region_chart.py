"""Figure 5: 187.facerec region chart.

Paper: "Facerec periodically executes switches between 2 sets of regions.
This causes frequent phase changes" even though "there are few actual
phase changes" — the working set is genuinely periodic, not changing.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.charts import RegionChart, phase_line
from repro.analysis.metrics import ground_truth_region_matrix, run_gpd
from repro.experiments.base import (ExperimentResult, benchmark_for,
                                    stream_for)
from repro.experiments.config import (BASE_PERIOD, DEFAULT_CONFIG,
                                      ExperimentConfig)

EXPERIMENT_ID = "fig05"
TITLE = "187.facerec region chart (paper Figure 5)"


def build_chart(config: ExperimentConfig = DEFAULT_CONFIG) -> RegionChart:
    """Full-resolution facerec chart at the 45k sampling period."""
    model = benchmark_for("187.facerec", config)
    stream = stream_for(model, BASE_PERIOD, config)
    names, matrix = ground_truth_region_matrix(stream, config.buffer_size)
    detector = run_gpd(stream, config.buffer_size)
    return RegionChart(tuple(names), matrix, phase_line(detector))


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> ExperimentResult:
    """Quantify the 2-set switching and the resulting GPD churn."""
    chart = build_chart(config)
    set_a = {"face_f1", "face_f2"}

    def dominant_set(row: np.ndarray) -> str:
        order = np.argsort(row)[::-1]
        name = chart.region_names[order[0]]
        return "A" if name in set_a else "B"

    sets = [dominant_set(chart.matrix[i]) for i in range(chart.n_intervals)]
    switches = sum(1 for a, b in zip(sets, sets[1:]) if a != b)
    unstable_pct = (100.0 * float(np.mean(chart.phase > 0))
                    if chart.phase is not None and chart.n_intervals
                    else 0.0)
    gpd_changes = 0
    if chart.phase is not None:
        flips = np.abs(np.diff((chart.phase > 0).astype(int)))
        gpd_changes = int(flips.sum())
    headers = ["metric", "value"]
    rows = [
        ["intervals", chart.n_intervals],
        ["working-set switches (ground truth)", switches],
        ["GPD phase changes", gpd_changes],
        ["% intervals GPD-unstable", unstable_pct],
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, headers=headers,
        rows=rows,
        notes=("every periodic set switch costs GPD a phase change; "
               "the program itself has essentially one phase"),
        extras={"chart": chart})


def main() -> None:  # pragma: no cover - CLI convenience
    result = run()
    print(result.to_table())
    print()
    print(result.extras["chart"].render_ascii())


if __name__ == "__main__":  # pragma: no cover
    main()
