"""Bonus experiment: multi-tenant fleet monitoring with the batch backend.

Not a paper figure — it demonstrates the scenario the batch backend
exists for: one optimizer process supervising *many* concurrent
application streams (a datacenter-style fleet), each with its own region
monitor, global detector, watchdog and fault exposure, all advanced in
lockstep by :class:`repro.batch.session.BatchSession`.

The sweep runs rungs of 64, 256 and 1024 concurrent streams.  Distinct
PMU seeds give every lane its own sample stream (drawn from a small pool
of simulated runs to keep setup affordable), and every fourth lane runs
behind a bursty sample-drop fault plan, so the fleet exercises the
ragged, partially-degraded mix the backend must handle.  On the smallest
rung a handful of lanes are re-run through the scalar
:class:`~repro.monitor.online.OnlineSession` and compared event-for-event
— the equivalence contract, spot-checked inside the experiment itself
(the full proof lives in ``tests/batch/``).

Statistics only — throughput is measured by
``benchmarks/test_batch_bench.py`` and gated by
``scripts/bench_compare.py``, never by wall-clock reads here.
"""

from __future__ import annotations

from repro.batch.session import BatchSession
from repro.experiments.base import ExperimentResult, benchmark_for
from repro.experiments.config import (BASE_PERIOD, DEFAULT_CONFIG,
                                      ExperimentConfig)
from repro.faults import FaultPlan, SampleDrop
from repro.faults.inject import inject
from repro.monitor.online import OnlineSession
from repro.sampling import simulate_sampling

EXPERIMENT_ID = "fleet"
TITLE = "Batch-backend fleet: concurrent monitored streams"

#: Fleet sizes swept (streams advanced in lockstep per rung).
RUNGS = (64, 256, 1024)

#: Distinct simulated streams; lanes draw from this pool round-robin.
STREAM_POOL = 16

#: Every Nth lane runs behind this fault plan (bursty interrupt loss).
FAULTED_EVERY = 4
FAULT_PLAN = FaultPlan((SampleDrop(rate=0.20, burst_mean=4.0),))

#: Intervals each lane contributes (streams shorter than this just end
#: early — the ragged case).
INTERVALS_PER_LANE = 12

#: Lanes of the smallest rung replayed through the scalar session.
CONFORMANCE_LANES = 3


def _stream_pool(model, config: ExperimentConfig, n: int):
    """*n* distinct streams of the same benchmark (different PMU seeds)."""
    return [simulate_sampling(model.regions, model.workload, BASE_PERIOD,
                              seed=config.seed + i) for i in range(n)]


def _lane_samples(stream, config: ExperimentConfig):
    """The slice of *stream* one lane feeds (caps per-lane work)."""
    return stream.pcs[:INTERVALS_PER_LANE * config.buffer_size]


def _run_fleet(model, streams, config: ExperimentConfig, n_lanes: int):
    """One rung: *n_lanes* monitored lanes advanced in lockstep."""
    session = BatchSession(binary=model.binary)
    for lane_index in range(n_lanes):
        stream = streams[lane_index % len(streams)]
        plan = (FAULT_PLAN if lane_index % FAULTED_EVERY == FAULTED_EVERY - 1
                else None)
        lane = session.add_lane(plan=plan, seed=config.seed + lane_index,
                                name=f"lane{lane_index}")
        if plan is not None:
            stream = inject(stream, plan, seed=config.seed + lane_index)
        samples = _lane_samples(stream, config)
        if samples.size:
            lane.feed_many(samples)
    session.process_ready()
    return session


def _conformance_check(model, streams, config: ExperimentConfig,
                       session: BatchSession) -> bool:
    """Replay sampled lanes through scalar sessions; compare verdicts."""
    for lane_index in range(0, CONFORMANCE_LANES):
        lane = session.lanes[lane_index]
        stream = streams[lane_index % len(streams)]
        plan = (FAULT_PLAN if lane_index % FAULTED_EVERY == FAULTED_EVERY - 1
                else None)
        if plan is not None:
            stream = inject(stream, plan, seed=config.seed + lane_index)
        samples = _lane_samples(stream, config)
        if not samples.size:
            continue
        scalar = OnlineSession(binary=model.binary)
        scalar.feed_many(samples)
        if scalar.stats.intervals != lane.stats.intervals:
            return False
        if scalar.stats.global_events != lane.stats.global_events:
            return False
        if scalar.stats.local_events != lane.stats.local_events:
            return False
        for a, b in zip(scalar.reports, lane.reports):
            if a.events != b.events or a.region_samples != b.region_samples:
                return False
        if scalar.gpd.events != lane.gpd.events:
            return False
    return True


def run(config: ExperimentConfig = DEFAULT_CONFIG,
        benchmark: str = "181.mcf",
        rungs: tuple[int, ...] = RUNGS) -> ExperimentResult:
    """One row per fleet size; conformance is spot-checked on the first."""
    model = benchmark_for(benchmark, config)
    streams = _stream_pool(model, config, STREAM_POOL)
    headers = ["streams", "intervals", "global chg", "local chg",
               "faulted lanes", "conformance"]
    rows: list[list] = []
    totals: dict[int, dict] = {}
    for rung_index, n_lanes in enumerate(rungs):
        session = _run_fleet(model, streams, config, n_lanes)
        intervals = sum(lane.stats.intervals for lane in session.lanes)
        global_events = sum(lane.stats.global_events
                            for lane in session.lanes)
        local_events = sum(lane.stats.local_events
                           for lane in session.lanes)
        faulted = sum(1 for i in range(n_lanes)
                      if i % FAULTED_EVERY == FAULTED_EVERY - 1)
        if rung_index == 0:
            verdict = ("bit-identical"
                       if _conformance_check(model, streams, config, session)
                       else "MISMATCH")
        else:
            verdict = "—"
        totals[n_lanes] = {"intervals": intervals,
                           "global_events": global_events,
                           "local_events": local_events}
        rows.append([n_lanes, intervals, global_events, local_events,
                     faulted, verdict])
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, headers=headers,
        rows=rows,
        notes=("all lanes advanced in lockstep by the vectorized batch "
               "backend; every 4th lane runs behind a 20% bursty drop "
               "plan; conformance replays sampled lanes through the "
               "scalar OnlineSession"),
        extras={"totals": totals})


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(ExperimentConfig(scale=0.05, seed=7)).to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
