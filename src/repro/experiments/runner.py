"""CLI runner: regenerate any or all of the paper's figures.

Usage::

    repro-experiments --list
    repro-experiments fig03 fig04
    repro-experiments all --scale 0.25 --seed 7 --jobs 4
    repro-experiments fig15 --no-cache --profile

The performance engine behind the runner:

* every figure's simulation/monitor runs are memoized in the process-wide
  :class:`~repro.experiments.cache.SimulationCache`, so figures sharing
  runs (fig03/fig04, fig13/fig14, fig06/fig15/fig16) compute each one
  once (``--no-cache`` restores fresh computation);
* with ``--jobs N`` the deduplicated (benchmark, period) work-list of the
  selected figures is fanned out over a ``ProcessPoolExecutor`` first and
  the finished runs are injected into the cache, so the serial figure
  assembly that follows is pure lookups.  Every task is seeded by its key
  (benchmark, scale, period, seed), so results are bit-identical to a
  serial run at any job count;
* ``--profile`` prints a cProfile top-20 cumulative table for the figure
  phase, so hot-path work is measured rather than guessed;
* ``--trace FILE`` attaches a JSONL trace sink to the process telemetry
  bus for the whole run, so every detector transition, phase change,
  region event and cache lookup of the selected figures lands in FILE
  (inspect with ``repro-trace``).  Tracing disables the parallel warm
  phase: worker processes have their own (disabled) bus, and a trace
  that silently omitted the warmed runs' events would be misleading.
  The sink is flushed after every figure — including failed ones — so a
  partial trace is always valid JSONL up to its last record.
"""

from __future__ import annotations

import argparse
import signal
import sys
import time
from typing import Callable

from repro.errors import ExperimentError
from repro.experiments import (extra_chaos, extra_cpd, extra_detector_zoo,
                               extra_fault_sweep,
                               extra_fleet, extra_interval_size,
                               extra_realtrace,
                               fig02_mcf_region_chart,
                               fig03_gpd_phase_changes,
                               fig04_gpd_stable_time,
                               fig05_facerec_region_chart, fig06_ucr_median,
                               fig07_ucr_over_time,
                               fig08_pearson_properties, fig09_mcf_regions,
                               fig10_mcf_correlation, fig11_gap_regions,
                               fig13_lpd_phase_changes,
                               fig14_lpd_stable_time, fig15_cost,
                               fig16_interval_tree, fig17_speedup)
from repro.experiments import base, cache
from repro.experiments.cache import WarmTask
from repro.experiments.config import ExperimentConfig

_MODULES = (
    fig02_mcf_region_chart, fig03_gpd_phase_changes,
    fig04_gpd_stable_time, fig05_facerec_region_chart,
    fig06_ucr_median, fig07_ucr_over_time, fig08_pearson_properties,
    fig09_mcf_regions, fig10_mcf_correlation, fig11_gap_regions,
    fig13_lpd_phase_changes, fig14_lpd_stable_time, fig15_cost,
    fig16_interval_tree, fig17_speedup, extra_chaos, extra_cpd,
    extra_detector_zoo, extra_fault_sweep, extra_fleet,
    extra_interval_size, extra_realtrace,
)

#: Registry of every reproducible figure (Figures 1 and 12 are state
#: diagrams, reproduced as code in repro.core.gpd / repro.core.lpd).
EXPERIMENTS: dict[str, Callable] = {
    module.EXPERIMENT_ID: module.run for module in _MODULES
}

TITLES: dict[str, str] = {
    module.EXPERIMENT_ID: module.TITLE for module in _MODULES
}

MODULES: dict[str, object] = {
    module.EXPERIMENT_ID: module for module in _MODULES
}

#: The figure experiments run by default ('all'); the extras ('zoo',
#: 'ivalsize') run only when named explicitly.
DEFAULT_SET = tuple(sorted(eid for eid in EXPERIMENTS
                           if eid.startswith("fig")))


def run_experiment(experiment_id: str,
                   config: ExperimentConfig):
    """Run one figure's experiment by id."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}") from None
    return runner(config)


def collect_warm_tasks(experiment_ids: list[str],
                       config: ExperimentConfig) -> list[WarmTask]:
    """Deduplicated precomputation work-list for the selected figures.

    Only full-suite figures declare ``warm_targets``; tasks shared
    between figures (fig03/fig04's streams, fig13/fig14's monitors,
    fig06/fig15/fig16's list monitors) appear once.
    """
    tasks: list[WarmTask] = []
    seen: set[WarmTask] = set()
    for experiment_id in experiment_ids:
        module = MODULES.get(experiment_id)
        warm = getattr(module, "warm_targets", None)
        if warm is None:
            continue
        for task in warm(config):
            if task not in seen:
                seen.add(task)
                tasks.append(task)
    return tasks


def _warm_worker(payload: tuple[WarmTask, ExperimentConfig]):
    """Compute one warm task in a worker process.

    Returns every artifact the task produced (the ideal stream, the
    faulted stream for fault-carrying tasks, and the derived
    detector/monitor) so the parent can seed its cache with all of
    them.  Determinism: everything is derived from (benchmark, scale,
    period, seed, faults), so a worker's result is bit-identical to
    what the parent would have computed serially.
    """
    task, config = payload
    model = base.benchmark_for(task.benchmark, config)
    plan = None
    if task.faults:
        from repro.faults import FaultPlan

        plan = FaultPlan.from_token(task.faults)
    streams = {(): base.stream_for(model, task.period, config)}
    if plan is not None:
        streams[task.faults] = base.stream_for(model, task.period, config,
                                               plan=plan)
    detector = None
    monitor = None
    if task.kind == "gpd":
        detector = base.gpd_run(model, task.period, config, plan=plan)
    elif task.kind == "monitor":
        monitor = base.monitored_run(model, task.period, config,
                                     attribution=task.attribution,
                                     plan=plan)
    return task, streams, detector, monitor


def warm_cache_parallel(tasks: list[WarmTask], config: ExperimentConfig,
                        jobs: int) -> int:
    """Fan the warm work-list out over *jobs* processes; seed the cache.

    Returns the number of tasks computed.  Falls back to in-process
    computation when there is nothing to parallelize.
    """
    if not tasks:
        return 0
    store = cache.get_cache()
    if jobs <= 1 or len(tasks) == 1:
        for task, streams, detector, monitor in map(
                _warm_worker, ((t, config) for t in tasks)):
            _seed_cache(store, config, task, streams, detector, monitor)
        return len(tasks)
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        for task, streams, detector, monitor in pool.map(
                _warm_worker, ((t, config) for t in tasks), chunksize=1):
            _seed_cache(store, config, task, streams, detector, monitor)
    return len(tasks)


def _seed_cache(store: cache.SimulationCache, config: ExperimentConfig,
                task: WarmTask, streams: dict, detector, monitor) -> None:
    """Inject one warm task's artifacts into the parent cache."""
    for faults, stream in streams.items():
        store.put_stream(
            cache.StreamKey(task.benchmark, config.scale, task.period,
                            config.seed, faults), stream)
    if detector is not None:
        store.put_detector(
            cache.GpdKey(task.benchmark, config.scale, task.period,
                         config.seed, config.buffer_size, task.faults),
            detector)
    if monitor is not None:
        store.put_monitor(
            cache.MonitorKey(task.benchmark, config.scale, task.period,
                             config.seed, config.buffer_size,
                             task.attribution, task.faults), monitor)


class _GracefulExit(Exception):
    """SIGTERM/SIGINT arrived: stop between figures, flush, exit clean."""

    def __init__(self, signum: int) -> None:
        super().__init__(signum)
        self.signum = signum


def _install_signal_handlers() -> dict:
    """Route SIGTERM/SIGINT into the runner's orderly-stop path.

    An interrupted run must still flush its trace sink (leaving a valid
    JSONL prefix) and print the partial failure summary; only *real*
    failures exit nonzero.  Handlers are installed best-effort — inside
    a non-main thread (embedding test harnesses) signal installation
    raises and the default behavior is kept.  Returns the previous
    handlers so an embedding caller can be left untouched.
    """

    def _handler(signum, frame):
        raise _GracefulExit(signum)

    previous: dict = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _handler)
        except ValueError:
            pass  # not the main thread; leave default handling in place
    return previous


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-experiments`` script."""
    previous = _install_signal_handlers()
    try:
        return _run_cli(argv)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def _run_cli(argv: list[str] | None) -> int:
    """The runner body (signal handlers already installed)."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*", default=["all"],
                        help="figure ids (fig02..fig17) or 'all'")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload duration multiplier (default 1.0)")
    parser.add_argument("--seed", type=int, default=7,
                        help="PMU seed (default 7)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the shared "
                             "(benchmark, period) runs (default 1: serial; "
                             "same seed => identical figures at any N)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the cross-figure simulation cache")
    parser.add_argument("--profile", action="store_true",
                        help="print a cProfile top-20 cumulative table "
                             "for the figure phase")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--out", type=str, default=None, metavar="DIR",
                        help="also export results (JSON + CSV) into DIR")
    parser.add_argument("--trace", type=str, default=None, metavar="FILE",
                        help="write a JSONL telemetry trace of the run to "
                             "FILE (disables the parallel warm phase; "
                             "inspect with repro-trace)")
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in sorted(EXPERIMENTS):
            print(f"{experiment_id}  {TITLES[experiment_id]}")
        return 0
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")

    if args.no_cache:
        cache.set_enabled(False)

    config = ExperimentConfig(scale=args.scale, seed=args.seed)
    requested = args.experiments
    if requested == ["all"] or requested == []:
        requested = list(DEFAULT_SET)

    trace_sink = None
    if args.trace is not None:
        from repro.telemetry.bus import get_bus
        from repro.telemetry.sinks import JsonlTraceSink

        trace_sink = JsonlTraceSink(args.trace)
        get_bus().attach(trace_sink)
        if args.jobs > 1:
            print("tracing: parallel warm phase disabled (worker "
                  "processes would not contribute to the trace)",
                  file=sys.stderr)
            args.jobs = 1

    started_total = time.time()  # repro: allow[wall-clock] progress timer
    if args.jobs > 1 and not args.no_cache:
        tasks = collect_warm_tasks(requested, config)
        if tasks:
            warm_started = time.time()  # repro: allow[wall-clock] progress timer
            try:
                warmed = warm_cache_parallel(tasks, config, args.jobs)
            except Exception as exc:  # degrade to serial, don't abort
                print(f"warm phase failed ({type(exc).__name__}: {exc}); "
                      f"figures will compute their runs serially",
                      file=sys.stderr)
            else:
                warm_secs = time.time() - warm_started  # repro: allow[wall-clock] progress timer
                print(f"warmed {warmed} shared runs with {args.jobs} "
                      f"workers ({warm_secs:.1f}s)")
                print()

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()

    results = []
    failures: list[tuple[str, Exception]] = []
    interrupted: int | None = None
    try:
        for experiment_id in requested:
            started = time.time()  # repro: allow[wall-clock] progress timer
            try:
                result = run_experiment(experiment_id, config)
            except (_GracefulExit, KeyboardInterrupt) as exc:
                interrupted = getattr(exc, "signum", signal.SIGINT)
                print(f"interrupted (signal {interrupted}) during "
                      f"{experiment_id}; flushing partial results",
                      file=sys.stderr)
                if trace_sink is not None:
                    trace_sink.flush()
                break
            except Exception as exc:  # keep regenerating the other figures
                failures.append((experiment_id, exc))
                print(f"[{experiment_id}] FAILED: "
                      f"{type(exc).__name__}: {exc}", file=sys.stderr)
                print()
                # The events leading up to the failure are exactly what a
                # post-mortem needs: make sure they are on disk.
                if trace_sink is not None:
                    trace_sink.flush()
                continue
            results.append(result)
            print(result.to_table())
            fig_secs = time.time() - started  # repro: allow[wall-clock] progress timer
            print(f"  ({fig_secs:.1f}s)")
            print()
            if trace_sink is not None:
                trace_sink.flush()
    except (_GracefulExit, KeyboardInterrupt) as exc:
        interrupted = getattr(exc, "signum", signal.SIGINT)
        print(f"interrupted (signal {interrupted}); flushing partial "
              f"results", file=sys.stderr)
    finally:
        if trace_sink is not None:
            from repro.telemetry.bus import get_bus

            get_bus().detach(trace_sink)
            trace_sink.close()
            print(f"trace: {args.trace} "
                  f"({trace_sink.records_written} records)")

    if profiler is not None:
        import pstats

        profiler.disable()
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(20)

    if not args.no_cache:
        total_secs = time.time() - started_total  # repro: allow[wall-clock] progress timer
        print(f"total {total_secs:.1f}s; "
              f"cache: {cache.get_cache().stats()}")
    if args.out is not None:
        from repro.analysis.export import export_results

        written = export_results(results, args.out)
        print(f"exported {len(written)} files to {args.out}")
    if failures:
        print(f"{len(failures)}/{len(requested)} experiments failed:",
              file=sys.stderr)
        for experiment_id, exc in failures:
            print(f"  {experiment_id}: {type(exc).__name__}: {exc}",
                  file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
