"""CLI runner: regenerate any or all of the paper's figures.

Usage::

    repro-experiments --list
    repro-experiments fig03 fig04
    repro-experiments all --scale 0.25 --seed 7
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.errors import ExperimentError
from repro.experiments import (extra_detector_zoo, extra_interval_size,
                               fig02_mcf_region_chart,
                               fig03_gpd_phase_changes,
                               fig04_gpd_stable_time,
                               fig05_facerec_region_chart, fig06_ucr_median,
                               fig07_ucr_over_time,
                               fig08_pearson_properties, fig09_mcf_regions,
                               fig10_mcf_correlation, fig11_gap_regions,
                               fig13_lpd_phase_changes,
                               fig14_lpd_stable_time, fig15_cost,
                               fig16_interval_tree, fig17_speedup)
from repro.experiments.config import ExperimentConfig

#: Registry of every reproducible figure (Figures 1 and 12 are state
#: diagrams, reproduced as code in repro.core.gpd / repro.core.lpd).
EXPERIMENTS: dict[str, Callable] = {
    module.EXPERIMENT_ID: module.run
    for module in (
        fig02_mcf_region_chart, fig03_gpd_phase_changes,
        fig04_gpd_stable_time, fig05_facerec_region_chart,
        fig06_ucr_median, fig07_ucr_over_time, fig08_pearson_properties,
        fig09_mcf_regions, fig10_mcf_correlation, fig11_gap_regions,
        fig13_lpd_phase_changes, fig14_lpd_stable_time, fig15_cost,
        fig16_interval_tree, fig17_speedup, extra_detector_zoo,
        extra_interval_size,
    )
}

TITLES: dict[str, str] = {
    module.EXPERIMENT_ID: module.TITLE
    for module in (
        fig02_mcf_region_chart, fig03_gpd_phase_changes,
        fig04_gpd_stable_time, fig05_facerec_region_chart,
        fig06_ucr_median, fig07_ucr_over_time, fig08_pearson_properties,
        fig09_mcf_regions, fig10_mcf_correlation, fig11_gap_regions,
        fig13_lpd_phase_changes, fig14_lpd_stable_time, fig15_cost,
        fig16_interval_tree, fig17_speedup, extra_detector_zoo,
        extra_interval_size,
    )
}

#: The figure experiments run by default ('all'); the extras ('zoo',
#: 'ivalsize') run only when named explicitly.
DEFAULT_SET = tuple(sorted(eid for eid in EXPERIMENTS
                           if eid.startswith("fig")))


def run_experiment(experiment_id: str,
                   config: ExperimentConfig):
    """Run one figure's experiment by id."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}") from None
    return runner(config)


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-experiments`` script."""
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*", default=["all"],
                        help="figure ids (fig02..fig17) or 'all'")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload duration multiplier (default 1.0)")
    parser.add_argument("--seed", type=int, default=7,
                        help="PMU seed (default 7)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--out", type=str, default=None, metavar="DIR",
                        help="also export results (JSON + CSV) into DIR")
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in sorted(EXPERIMENTS):
            print(f"{experiment_id}  {TITLES[experiment_id]}")
        return 0

    config = ExperimentConfig(scale=args.scale, seed=args.seed)
    requested = args.experiments
    if requested == ["all"] or requested == []:
        requested = list(DEFAULT_SET)

    results = []
    for experiment_id in requested:
        started = time.time()
        result = run_experiment(experiment_id, config)
        results.append(result)
        print(result.to_table())
        print(f"  ({time.time() - started:.1f}s)")
        print()
    if args.out is not None:
        from repro.analysis.export import export_results

        written = export_results(results, args.out)
        print(f"exported {len(written)} files to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
