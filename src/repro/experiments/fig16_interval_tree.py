"""Figure 16: interval-tree attribution cost vs. the simple region list.

Paper: "Figure 16 shows the cost of the interval tree scheme normalized
to the cost of using lists.  For benchmarks with a small number of
regions, the cost is slightly higher from the increased cost of
maintaining the tree.  As the number of regions increases (e.g. gcc,
crafty, fma3d, parser and bzip) cost is significantly reduced."
"""

from __future__ import annotations

from repro.experiments.base import (ExperimentResult, benchmark_for,
                                    monitored_run)
from repro.experiments.cache import WarmTask
from repro.experiments.config import (BASE_PERIOD, DEFAULT_CONFIG,
                                      ExperimentConfig)
from repro.program.spec2000 import FIG16_BENCHMARKS

EXPERIMENT_ID = "fig16"
TITLE = "Interval-tree attribution cost normalized to lists (Figure 16)"


def warm_targets(config: ExperimentConfig,
                 benchmarks: tuple[str, ...] = FIG16_BENCHMARKS
                 ) -> list[WarmTask]:
    """List- and tree-attribution monitor runs for every benchmark."""
    return [WarmTask("monitor", name, BASE_PERIOD, attribution=strategy)
            for name in benchmarks for strategy in ("list", "tree")]


def run(config: ExperimentConfig = DEFAULT_CONFIG,
        benchmarks: tuple[str, ...] = FIG16_BENCHMARKS) -> ExperimentResult:
    """One row per benchmark: regions, list ops, tree ops, factor."""
    headers = ["benchmark", "regions", "list attribution ops",
               "tree ops (query+maintain)", "tree/list factor"]
    rows: list[list] = []
    for name in benchmarks:
        model = benchmark_for(name, config)
        list_monitor = monitored_run(model, BASE_PERIOD, config,
                                     attribution="list")
        tree_monitor = monitored_run(model, BASE_PERIOD, config,
                                     attribution="tree")
        list_ops = list_monitor.ledger.attribution_ops
        tree_ops = (tree_monitor.ledger.attribution_ops
                    + tree_monitor.ledger.tree_maintenance_ops)
        rows.append([name, len(list_monitor.all_regions()), list_ops,
                     tree_ops, tree_ops / list_ops if list_ops else 0.0])
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, headers=headers,
        rows=rows,
        notes=("factor > 1 for few-region programs (tree upkeep), << 1 "
               "for the many-region ones — the paper's crossover"))


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
