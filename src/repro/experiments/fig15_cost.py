"""Figure 15: the cost of region monitoring vs. the centroid scheme.

Paper: "As expected, local phase detection is tens to hundreds of times
slower than global phase detection.  Even so, for most applications, the
cost is less than 1% of execution time.  Some programs like gcc, crafty,
parser, vortex, ammp and apsi have a significant percentage of cost for
local phase detection.  This cost is due to the large number of regions
monitored by these applications."
"""

from __future__ import annotations

from repro.analysis.metrics import run_gpd
from repro.costs import CostLedger
from repro.experiments.base import (ExperimentResult, benchmark_for,
                                    monitored_run, stream_for)
from repro.experiments.config import (BASE_PERIOD, DEFAULT_CONFIG,
                                      ExperimentConfig)
from repro.experiments.cache import WarmTask
from repro.program.spec2000 import FIG15_BENCHMARKS

EXPERIMENT_ID = "fig15"
TITLE = "Overhead of region monitoring vs. centroid GPD (paper Figure 15)"


def warm_targets(config: ExperimentConfig,
                 benchmarks: tuple[str, ...] = FIG15_BENCHMARKS
                 ) -> list[WarmTask]:
    """The monitor runs (shared with fig06/fig16) worth precomputing."""
    return [WarmTask("monitor", name, BASE_PERIOD) for name in benchmarks]


def run(config: ExperimentConfig = DEFAULT_CONFIG,
        benchmarks: tuple[str, ...] = FIG15_BENCHMARKS) -> ExperimentResult:
    """One row per benchmark: GPD overhead, LPD overhead, ratio."""
    headers = ["benchmark", "regions", "GPD overhead%", "LPD overhead%",
               "times slower than GPD"]
    rows: list[list] = []
    for name in benchmarks:
        model = benchmark_for(name, config)
        stream = stream_for(model, BASE_PERIOD, config)
        total_cycles = stream.total_cycles
        gpd_ledger = CostLedger()
        run_gpd(stream, config.buffer_size, ledger=gpd_ledger)
        monitor = monitored_run(model, BASE_PERIOD, config)
        gpd_pct = 100.0 * gpd_ledger.overhead_fraction(
            total_cycles, gpd_ledger.gpd_ops)
        lpd_pct = 100.0 * monitor.ledger.overhead_fraction(
            total_cycles, monitor.ledger.monitor_ops)
        rows.append([name, len(monitor.all_regions()), gpd_pct, lpd_pct,
                     lpd_pct / gpd_pct if gpd_pct else 0.0])
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, headers=headers,
        rows=rows,
        notes=("operation-count cost model (1 op ~ 1 cycle); gcc / crafty "
               "/ parser / vortex / apsi lead because of their region "
               "counts, exactly the paper's costly set.  Region "
               "monitoring runs off the critical path (separate thread) "
               "in the paper's design."))


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
