"""Experiment harness: one module per reproduced figure of the paper.

Figures 1 and 12 are state diagrams, reproduced as code
(:mod:`repro.core.gpd`, :mod:`repro.core.lpd`); every data figure has a
module here and a benchmark under ``benchmarks/``.
"""

from repro.experiments import (fig02_mcf_region_chart,  # noqa: F401
                               fig03_gpd_phase_changes,
                               fig04_gpd_stable_time,
                               fig05_facerec_region_chart, fig06_ucr_median,
                               fig07_ucr_over_time,
                               fig08_pearson_properties, fig09_mcf_regions,
                               fig10_mcf_correlation, fig11_gap_regions,
                               fig13_lpd_phase_changes,
                               fig14_lpd_stable_time, fig15_cost,
                               fig16_interval_tree, fig17_speedup)
from repro.experiments.base import ExperimentResult
from repro.experiments.config import (BASE_PERIOD, GPD_PERIODS, RTO_PERIODS,
                                      ExperimentConfig)

__all__ = [
    "ExperimentResult",
    "ExperimentConfig",
    "BASE_PERIOD",
    "GPD_PERIODS",
    "RTO_PERIODS",
]
