"""Figure 8: the two properties of Pearson's r the detector relies on.

Paper: "When the bottleneck shifts by one instruction ... the r value is
close to zero indicating a phase change [r = -0.056].  ... if the behavior
is still the same ... but distribution of samples across instructions has
changed by a constant factor, then a phase change should not be triggered
[r = 0.998]."
"""

from __future__ import annotations

import numpy as np

from repro.core.correlation import pearson_r
from repro.experiments.base import ExperimentResult
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig

EXPERIMENT_ID = "fig08"
TITLE = "Pearson-r under bottleneck shift and sample scaling (Figure 8)"

#: A 10-instruction region with one dominant cache-missing load, like the
#: figure's sketch.
ORIGINAL = np.array([12.0, 10.0, 14.0, 11.0, 350.0, 13.0, 12.0, 10.0,
                     11.0, 13.0])


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> ExperimentResult:
    """Three comparisons against the original distribution."""
    rng = np.random.default_rng(config.seed)
    shifted = np.roll(ORIGINAL, 1)
    scaled_noisy = 3.0 * ORIGINAL + rng.normal(0.0, 4.0, ORIGINAL.size)
    rows = [
        ["original vs itself", pearson_r(ORIGINAL, ORIGINAL), "no"],
        ["shift bottleneck by 1 instruction",
         pearson_r(ORIGINAL, shifted), "yes"],
        ["more samples, similar frequencies",
         pearson_r(ORIGINAL, scaled_noisy), "no"],
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE,
        headers=["comparison", "r", "phase change (r < 0.8)?"],
        rows=rows,
        notes="paper anchors: shift r = -0.056, scaled r = 0.998")


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
