"""Experiment result container and shared helpers.

The simulation helpers (:func:`stream_for`, :func:`gpd_run`,
:func:`monitored_run`) are pure functions of ``(benchmark, period,
config)`` and route through the process-wide
:class:`~repro.experiments.cache.SimulationCache`, so figures sharing the
same runs (fig03/fig04, fig13/fig14, fig06/fig15/fig16, ...) simulate and
monitor each one exactly once.  Cached monitors and detectors are shared
objects — treat them as read-only summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.metrics import run_gpd
from repro.analysis.tables import format_table
from repro.batch.lpd import BatchLpdBank
from repro.batch.run import batch_monitor, process_stream_batch, run_gpd_batch
from repro.core import MonitorThresholds
from repro.core.gpd import GlobalPhaseDetector
from repro.errors import ConfigError
from repro.experiments.cache import GLOBAL_CACHE, GpdKey, MonitorKey, StreamKey
from repro.experiments.config import ExperimentConfig
from repro.faults.inject import inject
from repro.faults.model import FaultPlan
from repro.ingest import TraceProfile, TraceSource
from repro.monitor import RegionMonitor
from repro.program.spec2000 import BenchmarkModel, get_benchmark
from repro.sampling import SampleStream, simulate_sampling
from repro.telemetry.bus import EventBus

#: Execution backends accepted by :func:`gpd_run` / :func:`monitored_run`.
BACKENDS = ("scalar", "batch")

#: Result-equivalence classes for cache keys.  The batch backend maps to
#: the canonical ``"scalar"`` class because the differential conformance
#: suite (``tests/batch/``) proves it bit-identical — result-identical
#: backends share cache entries *only* once such a proof gates them; a
#: new backend must keep its own token until its suite is green.
_BACKEND_CLASS = {"scalar": "scalar", "batch": "scalar"}


def _fault_token(plan: FaultPlan | None) -> tuple:
    """Cache-key component for a fault plan (empty: ideal stream)."""
    if plan is None or plan.is_empty:
        return ()
    return plan.token()


def _backend_token(backend: str) -> str:
    """Cache-key component for an execution backend (validates it too)."""
    try:
        return _BACKEND_CLASS[backend]
    except KeyError:
        raise ConfigError(
            f"unknown backend {backend!r}; expected one of "
            f"{', '.join(BACKENDS)}") from None


@dataclass(frozen=True)
class ExperimentResult:
    """One reproduced table/figure as printable rows.

    Attributes
    ----------
    experiment_id:
        ``"fig03"`` etc.
    title:
        Human-readable caption (what the paper's figure showed).
    headers, rows:
        The regenerated series.
    notes:
        Reproduction caveats (scaling, known magnitude gaps).
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list]
    notes: str = ""
    extras: dict = field(default_factory=dict, repr=False)

    def to_table(self) -> str:
        """Render the result as an aligned text table."""
        text = format_table(self.headers, self.rows,
                            title=f"[{self.experiment_id}] {self.title}")
        if self.notes:
            text += f"\n  note: {self.notes}"
        return text


def benchmark_for(name: str, config: ExperimentConfig) -> BenchmarkModel:
    """Load a benchmark at the experiment's scale."""
    return get_benchmark(name, scale=config.scale)


def stream_for(model: BenchmarkModel, period: int,
               config: ExperimentConfig,
               plan: FaultPlan | None = None) -> SampleStream:
    """Simulate one benchmark run at a sampling period (cached).

    With a non-empty fault *plan* the ideal stream is simulated (and
    cached) first, then the plan is injected deterministically from the
    experiment seed; the faulted stream is cached under its own key.  An
    empty plan is byte-identical to no plan — same key, same object.
    """
    faults = _fault_token(plan)
    key = StreamKey(benchmark=model.name, scale=config.scale,
                    period=period, seed=config.seed, faults=faults)
    if not faults:
        return GLOBAL_CACHE.stream(
            key, lambda: simulate_sampling(model.regions, model.workload,
                                           period, seed=config.seed))
    return GLOBAL_CACHE.stream(
        key, lambda: inject(stream_for(model, period, config), plan,
                            seed=config.seed))


def trace_stream_for(profile: TraceProfile, period: int,
                     config: ExperimentConfig,
                     cycles_per_ns: float = 1.0,
                     repeat: int = 1) -> SampleStream:
    """Replay a recorded trace profile as a sample stream (cached).

    Recorded replays share the synthetic streams' cache: the key's
    ``benchmark`` is namespaced ``trace:<name>`` and its ``trace`` field
    carries the full replay identity
    (:meth:`~repro.ingest.TraceIdentity.token` — content checksum plus
    ``cycles_per_ns``/``repeat``), so editing a fixture file or varying
    a replay knob can never serve a stale stream recorded under the
    same name.
    """
    source = TraceSource(profile, period, cycles_per_ns=cycles_per_ns,
                         repeat=repeat)
    key = StreamKey(benchmark=f"trace:{profile.name}", scale=config.scale,
                    period=period, seed=config.seed,
                    trace=source.identity().token())
    return GLOBAL_CACHE.stream(key, source.stream)


def trace_gpd_run(profile: TraceProfile, period: int,
                  config: ExperimentConfig,
                  cycles_per_ns: float = 1.0,
                  repeat: int = 1) -> GlobalPhaseDetector:
    """Run the global phase detector over a recorded trace (cached).

    The returned detector is a shared, completed run — read-only.  The
    key carries the same ``trace`` identity token as
    :func:`trace_stream_for`, for the same stale-artifact reason.
    """
    source = TraceSource(profile, period, cycles_per_ns=cycles_per_ns,
                         repeat=repeat)
    key = GpdKey(benchmark=f"trace:{profile.name}", scale=config.scale,
                 period=period, seed=config.seed,
                 buffer_size=config.buffer_size,
                 trace=source.identity().token())

    def compute() -> GlobalPhaseDetector:
        stream = trace_stream_for(profile, period, config,
                                  cycles_per_ns=cycles_per_ns,
                                  repeat=repeat)
        return run_gpd(stream, config.buffer_size)

    return GLOBAL_CACHE.detector(key, compute)


def gpd_run(model: BenchmarkModel, period: int,
            config: ExperimentConfig,
            plan: FaultPlan | None = None,
            telemetry: EventBus | None = None,
            backend: str = "scalar") -> GlobalPhaseDetector:
    """Run the global phase detector over one benchmark stream (cached).

    The returned detector is a shared, completed run — read-only.
    Experiments that need fresh cost charging (fig15) call
    :func:`~repro.analysis.metrics.run_gpd` directly with their ledger.
    *telemetry* (``None``: the process-wide bus) is result-inert and
    deliberately not part of the key; a cache hit emits a ``CacheHit``
    instead of re-playing the run's events.  *backend* selects the
    execution engine; bit-identical backends share cache entries, so a
    ``"batch"`` request may return a detector the scalar engine computed
    (and vice versa) — by contract the results are indistinguishable.
    """
    key = GpdKey(benchmark=model.name, scale=config.scale, period=period,
                 seed=config.seed, buffer_size=config.buffer_size,
                 faults=_fault_token(plan),
                 backend=_backend_token(backend))

    def compute():
        stream = stream_for(model, period, config, plan)
        if backend == "batch":
            return run_gpd_batch([stream], config.buffer_size,
                                 telemetry=[telemetry])[0]
        return run_gpd(stream, config.buffer_size, telemetry=telemetry)

    return GLOBAL_CACHE.detector(key, compute)


def monitored_run(model: BenchmarkModel, period: int,
                  config: ExperimentConfig,
                  attribution: str = "list",
                  plan: FaultPlan | None = None,
                  telemetry: EventBus | None = None,
                  backend: str = "scalar") -> RegionMonitor:
    """Run a region monitor over one benchmark stream (cached).

    The returned monitor is a shared, completed run — read-only.
    *telemetry* (``None``: the process-wide bus) is result-inert and
    deliberately not part of the key.  *backend* follows the same
    equivalence-class rule as :func:`gpd_run`.
    """
    key = MonitorKey(benchmark=model.name, scale=config.scale,
                     period=period, seed=config.seed,
                     buffer_size=config.buffer_size,
                     attribution=attribution, faults=_fault_token(plan),
                     backend=_backend_token(backend))

    def compute() -> RegionMonitor:
        stream = stream_for(model, period, config, plan)
        thresholds = MonitorThresholds(buffer_size=config.buffer_size)
        if backend == "batch":
            bank = BatchLpdBank()
            monitor = batch_monitor(model.binary, bank, thresholds,
                                    attribution=attribution,
                                    telemetry=telemetry)
            process_stream_batch([(monitor, stream)], bank)
            return monitor
        monitor = RegionMonitor(model.binary, thresholds,
                                attribution=attribution,
                                telemetry=telemetry)
        monitor.process_stream(stream)
        return monitor

    return GLOBAL_CACHE.monitor(key, compute)
