"""Experiment result container and shared helpers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.tables import format_table
from repro.core import MonitorThresholds
from repro.experiments.config import ExperimentConfig
from repro.monitor import RegionMonitor
from repro.program.spec2000 import BenchmarkModel, get_benchmark
from repro.sampling import SampleStream, simulate_sampling


@dataclass(frozen=True)
class ExperimentResult:
    """One reproduced table/figure as printable rows.

    Attributes
    ----------
    experiment_id:
        ``"fig03"`` etc.
    title:
        Human-readable caption (what the paper's figure showed).
    headers, rows:
        The regenerated series.
    notes:
        Reproduction caveats (scaling, known magnitude gaps).
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list]
    notes: str = ""
    extras: dict = field(default_factory=dict, repr=False)

    def to_table(self) -> str:
        """Render the result as an aligned text table."""
        text = format_table(self.headers, self.rows,
                            title=f"[{self.experiment_id}] {self.title}")
        if self.notes:
            text += f"\n  note: {self.notes}"
        return text


def benchmark_for(name: str, config: ExperimentConfig) -> BenchmarkModel:
    """Load a benchmark at the experiment's scale."""
    return get_benchmark(name, scale=config.scale)


def stream_for(model: BenchmarkModel, period: int,
               config: ExperimentConfig) -> SampleStream:
    """Simulate one benchmark run at a sampling period."""
    return simulate_sampling(model.regions, model.workload, period,
                             seed=config.seed)


def monitored_run(model: BenchmarkModel, period: int,
                  config: ExperimentConfig,
                  attribution: str = "list") -> RegionMonitor:
    """Run a fresh region monitor over one benchmark stream."""
    stream = stream_for(model, period, config)
    monitor = RegionMonitor(
        model.binary,
        MonitorThresholds(buffer_size=config.buffer_size),
        attribution=attribution)
    monitor.process_stream(stream)
    return monitor
