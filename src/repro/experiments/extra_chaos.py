"""Bonus experiment: the fault ladder for the sharded serving layer.

Not a paper figure — it is the robustness counterpart of the ``fleet``
experiment: the same multi-tenant monitoring workload, but driven
through the crash-tolerant sharded service
(:class:`~repro.serve.supervisor.FleetSupervisor`) while a ladder of
injected service faults escalates underneath it:

1. ``clean`` — no faults (the baseline the ladder must keep matching);
2. ``worker-kill x2`` — two shard workers die mid-run, one of them
   before its ack leaves the process;
3. ``kill + torn snapshot`` — a worker death plus a checkpoint torn
   mid-write (power-loss model), forcing recovery to fall back a
   snapshot generation and replay the journal;
4. ``dup + reorder + stall`` — at-least-once delivery chaos: duplicated
   and reordered batches plus an injected consumer stall.

Every rung is differentially verified: each stream's event sequence,
as assembled from worker acknowledgements, must be bit-identical to a
clean single-process :class:`~repro.batch.session.BatchSession` fed the
same batches — and the supervisor's own replay cross-check
(``divergences``) must stay zero.  A rung passes only if both hold and
every shard exits cleanly.

Statistics only — serving throughput and snapshot overhead are measured
by ``benchmarks/test_serve_bench.py`` and gated by
``scripts/bench_compare.py``, never by wall-clock reads here.
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro.experiments.base import ExperimentResult, benchmark_for
from repro.experiments.config import (BASE_PERIOD, DEFAULT_CONFIG,
                                      ExperimentConfig)
from repro.faults.service import (DuplicateDelivery, QueueStall,
                                  ReorderDelivery, ServiceFaultPlan,
                                  TornSnapshot, WorkerCrash)
from repro.sampling import simulate_sampling
from repro.serve import (FleetSupervisor, ServeConfig, build_shard_session,
                         extract_lane_events)

EXPERIMENT_ID = "chaos"
TITLE = "Crash-tolerant serving: fault ladder, differentially verified"

#: Concurrent monitored streams routed through the fleet.
N_STREAMS = 24

#: Shard worker processes.
N_SHARDS = 3

#: Distinct simulated runs; streams draw from this pool round-robin.
STREAM_POOL = 8

#: Intervals of samples each stream contributes, split into batches.
INTERVALS_PER_STREAM = 6
BATCHES_PER_STREAM = 3

#: The escalation ladder: (rung label, service fault plan).
LADDER: tuple[tuple[str, ServiceFaultPlan], ...] = (
    ("clean", ServiceFaultPlan()),
    ("worker-kill x2", ServiceFaultPlan((
        WorkerCrash(shard=0, at_seq=5),
        WorkerCrash(shard=1, at_seq=7, before_ack=True),
    ))),
    ("kill + torn snapshot", ServiceFaultPlan((
        WorkerCrash(shard=0, at_seq=6),
        TornSnapshot(shard=2, at_seq=4),
    ))),
    ("dup + reorder + stall", ServiceFaultPlan((
        DuplicateDelivery(shard=0, at_seq=3, copies=3),
        ReorderDelivery(shard=1, at_seq=2, depth=2),
        QueueStall(shard=2, at_seq=4, stall_seconds=0.1),
    ))),
)


def _serve_config(model) -> ServeConfig:
    """Fleet knobs sized so every rung exercises snapshots and replay."""
    return ServeConfig(binary=model.binary, n_shards=N_SHARDS,
                       snapshot_every=4, queue_capacity=64)


def _stream_batches(model, config: ExperimentConfig) -> dict[str, list]:
    """Per-stream batch lists (split per-interval sample budgets)."""
    pool = [simulate_sampling(model.regions, model.workload, BASE_PERIOD,
                              seed=config.seed + i)
            for i in range(STREAM_POOL)]
    batches: dict[str, list] = {}
    budget = INTERVALS_PER_STREAM * config.buffer_size
    for i in range(N_STREAMS):
        samples = pool[i % STREAM_POOL].pcs[:budget]
        chunks = [np.asarray(chunk, dtype=np.int64)
                  for chunk in np.array_split(samples, BATCHES_PER_STREAM)
                  if chunk.size]
        batches[f"stream{i:03d}"] = chunks
    return batches


def _reference_events(serve_config: ServeConfig,
                      batches: dict[str, list]) -> dict[str, tuple]:
    """The oracle: one clean in-process session fed the same batches."""
    streams = tuple(batches)
    session = build_shard_session(serve_config, streams)
    for lane, stream in zip(session.lanes, streams):
        for chunk in batches[stream]:
            lane.feed_many(chunk)
            session.process_ready()
    return {stream: extract_lane_events(lane)[0]
            for lane, stream in zip(session.lanes, streams)}


def _run_rung(serve_config: ServeConfig, faults: ServiceFaultPlan,
              batches: dict[str, list]) -> dict:
    """Drive one ladder rung through the fleet; return its counters."""
    streams = list(batches)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as snapdir:
        fleet = FleetSupervisor(serve_config, streams, snapdir,
                                faults=faults)
        try:
            fleet.start()
            rounds = max(len(chunks) for chunks in batches.values())
            for round_index in range(rounds):
                for stream in streams:
                    chunks = batches[stream]
                    if round_index < len(chunks):
                        fleet.submit(stream, chunks[round_index])
            fleet.drain()
            events = {stream: fleet.stream_events(stream)
                      for stream in streams}
            summary = fleet.summary()
        except BaseException:
            # Reap the workers before the error propagates — live
            # daemon children would wedge interpreter exit, and the
            # TemporaryDirectory cleanup would otherwise delete the
            # snapshot store under a still-running fleet.
            fleet.shutdown(graceful=False)
            raise
        exit_codes = fleet.shutdown(graceful=True)
    summary["events"] = events
    summary["dirty_exits"] = sum(1 for code in exit_codes.values()
                                 if code not in (0, None))
    return summary


def run(config: ExperimentConfig = DEFAULT_CONFIG,
        benchmark: str = "181.mcf") -> ExperimentResult:
    """One row per ladder rung; every rung verified against the oracle."""
    model = benchmark_for(benchmark, config)
    serve_config = _serve_config(model)
    batches = _stream_batches(model, config)
    oracle = _reference_events(serve_config, batches)
    headers = ["rung", "submitted", "restarts", "divergences", "evicted",
               "dirty exits", "verdict"]
    rows: list[list] = []
    totals: dict[str, dict] = {}
    for label, faults in LADDER:
        summary = _run_rung(serve_config, faults, batches)
        mismatches = sum(1 for stream, expected in oracle.items()
                         if summary["events"][stream] != expected)
        clean = (mismatches == 0 and summary["divergences"] == 0
                 and summary["dirty_exits"] == 0)
        verdict = "bit-identical" if clean else "MISMATCH"
        rows.append([label, summary["submitted"], summary["restarts"],
                     summary["divergences"], summary["evicted"],
                     summary["dirty_exits"], verdict])
        totals[label] = {"submitted": summary["submitted"],
                         "restarts": summary["restarts"],
                         "divergences": summary["divergences"],
                         "mismatched_streams": mismatches}
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, headers=headers,
        rows=rows,
        notes=(f"{N_STREAMS} streams over {N_SHARDS} shard workers; each "
               "rung's per-stream event sequences are compared "
               "record-for-record against one clean single-process "
               "BatchSession fed the same batches; 'divergences' is the "
               "supervisor's own replay cross-check and must be 0"),
        extras={"totals": totals})


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(ExperimentConfig(scale=0.05, seed=7)).to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
