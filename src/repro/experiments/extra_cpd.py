"""Bonus experiment: change-point detectors vs the paper's LPD/GPD.

Not a numbered paper figure — it scores the modern statistical approach
(:mod:`repro.cpd`) against the paper's detectors on the question both
families answer: *when did program behavior change?*  Ground truth comes
from the synthetic workload models themselves: the exact per-region
cycle shares of every interval are known
(:func:`~repro.program.workload.region_cycles_per_window`), so a true
change point is an interval whose region-share mix moves by more than an
L1 threshold — phase boundaries in ``173.applu``, the periodic set
switches of ``187.facerec``, and nothing at all in ``171.swim`` (the
no-change control).

Scenarios are the fault-sweep ladder (``173.applu`` under clean /
drop10 / drop20 / drop20+skid) plus the two zoo workloads, six in all.
Every detector sees the same evidence: per-interval address histograms
(``N_BINS`` bins over the stream's PC range) for LPD / E-divisive /
CUSUM, the raw sample buffers for GPD.  Per scenario and detector the
scoreboard reports detection lag (mean intervals from a true change to
its first matched detection), spurious-change rate (unmatched
detections per 100 intervals) and missed-change rate.
"""

from __future__ import annotations

import numpy as np

from repro.core.states import PhaseEventKind
from repro.core.lpd import LocalPhaseDetector
from repro.cpd import CpdThresholds, CusumDetector, EDivisiveDetector
from repro.experiments.base import (ExperimentResult, benchmark_for,
                                    gpd_run, stream_for)
from repro.experiments.cache import WarmTask
from repro.experiments.config import (BASE_PERIOD, DEFAULT_CONFIG,
                                      ExperimentConfig)
from repro.experiments.extra_fault_sweep import PLANS
from repro.faults import FaultPlan
from repro.program.workload import region_cycles_per_window

EXPERIMENT_ID = "cpd"
TITLE = "Change-point detectors vs LPD/GPD: lag, spurious, missed"

#: Address-histogram resolution shared by LPD and the CPD detectors.
N_BINS = 64

#: L1 distance between consecutive intervals' region-share vectors above
#: which the model's own timeline counts as a true change point.
GROUND_TRUTH_L1 = 0.25

#: A detection within this many intervals after a true change matches it.
MATCH_TOLERANCE = 8

#: The ladder benchmark (explicit step phases) and the zoo scenarios.
LADDER_BENCHMARK = "173.applu"
ZOO_BENCHMARKS = ("187.facerec", "171.swim")

#: ``(scenario_label, benchmark, fault plan)`` for every scoreboard row.
SCENARIOS: tuple[tuple[str, str, FaultPlan], ...] = tuple(
    [(f"{LADDER_BENCHMARK}/{label}", LADDER_BENCHMARK, plan)
     for label, plan in PLANS]
    + [(f"{name}/clean", name, FaultPlan(())) for name in ZOO_BENCHMARKS])


def warm_targets(config: ExperimentConfig) -> list[WarmTask]:
    """Every GPD run of the scoreboard (streams ride along)."""
    tasks: list[WarmTask] = []
    for _, name, plan in SCENARIOS:
        token = () if plan.is_empty else plan.token()
        tasks.append(WarmTask("gpd", name, BASE_PERIOD, faults=token))
    return tasks


def ground_truth_changes(model, period: int, buffer_size: int,
                         n_intervals: int,
                         l1_threshold: float = GROUND_TRUTH_L1) -> list[int]:
    """True change points of a benchmark model's *ideal* interval timeline.

    An interval is a change point when the L1 distance between its
    normalized region-share vector and either of the two preceding
    intervals' exceeds *l1_threshold* — the two-back comparison catches
    a step boundary that straddles an interval (each one-step delta
    diluted below threshold, the full step visible across the
    straddler).  Consecutive flagged intervals collapse to the first.
    """
    workload = model.workload
    shares = region_cycles_per_window(
        workload.compile(), buffer_size * period, n_intervals,
        workload.region_names())
    totals = shares.sum(axis=1, keepdims=True)
    normalized = np.divide(shares, totals, out=np.zeros_like(shares),
                           where=totals > 0)
    step1 = np.abs(np.diff(normalized, axis=0)).sum(axis=1)
    flagged = step1 > l1_threshold
    if normalized.shape[0] > 2:
        step2 = np.abs(normalized[2:] - normalized[:-2]).sum(axis=1)
        flagged[1:] |= step2 > l1_threshold
    changes: list[int] = []
    for index in (np.flatnonzero(flagged) + 1).tolist():
        if not changes or index > changes[-1] + 1:
            changes.append(index)
    return changes


def truth_for_stream(model, period: int, buffer_size: int,
                     stream) -> list[int]:
    """Ground-truth change points in a (possibly faulted) stream's
    interval indexing.

    Fault injection drops samples, which compresses the interval
    timeline: interval ``i`` of a drop20 stream covers later cycles than
    interval ``i`` of the ideal one.  True changes live in *cycle* time,
    so each ideal change is mapped to the faulted interval containing
    the first surviving sample at or after its cycle.
    """
    window = buffer_size * period
    pieces = model.workload.compile()
    ideal_intervals = pieces[-1].end // window if pieces else 0
    ideal = ground_truth_changes(model, period, buffer_size, ideal_intervals)
    n_intervals = stream.n_intervals(buffer_size)
    mapped: list[int] = []
    for index in ideal:
        position = int(np.searchsorted(stream.cycles, index * window))
        interval = position // buffer_size
        if interval >= n_intervals:
            continue
        if not mapped or interval > mapped[-1] + 1:
            mapped.append(interval)
    return mapped


def interval_histograms(stream, buffer_size: int,
                        n_bins: int = N_BINS) -> np.ndarray:
    """Per-interval address histograms: ``(n_intervals, n_bins)``.

    Bin edges span the stream's own PC range, so every detector sees the
    same view of the same evidence (skid-faulted outliers widen the
    range rather than falling off the histogram).
    """
    n_intervals = stream.n_intervals(buffer_size)
    pcs = stream.pcs[:n_intervals * buffer_size].astype(np.float64)
    edges = np.linspace(pcs.min(), pcs.max() + 1.0, n_bins + 1)
    histograms = np.empty((n_intervals, n_bins), dtype=np.float64)
    for index in range(n_intervals):
        window = pcs[index * buffer_size:(index + 1) * buffer_size]
        histograms[index] = np.histogram(window, bins=edges)[0]
    return histograms


def score_detections(detected: list[int], truth: list[int],
                     n_intervals: int,
                     tolerance: int = MATCH_TOLERANCE) -> dict:
    """Greedy in-order matching of detections against true changes."""
    unused = sorted(detected)
    lags: list[int] = []
    for change in truth:
        candidate = next((d for d in unused
                          if change <= d <= change + tolerance), None)
        if candidate is not None:
            unused.remove(candidate)
            lags.append(candidate - change)
    matched = len(lags)
    spurious = len(detected) - matched
    missed = len(truth) - matched
    return {
        "truth": len(truth),
        "detected": len(detected),
        "matched": matched,
        "mean_lag": (sum(lags) / matched) if matched else float("nan"),
        "spurious": spurious,
        "spurious_per_100": (100.0 * spurious / n_intervals
                             if n_intervals else 0.0),
        "missed_pct": (100.0 * missed / len(truth)) if truth else 0.0,
    }


def _unstable_edges(events) -> list[int]:
    """Interval indexes of the became-unstable boundary crossings."""
    return [event.interval_index for event in events
            if event.kind is PhaseEventKind.BECAME_UNSTABLE]


def _scenario_detections(model, plan: FaultPlan,
                         config: ExperimentConfig) -> tuple[dict, int, list[int]]:
    """Detections per detector, interval count, and mapped ground truth."""
    plan_arg = None if plan.is_empty else plan
    stream = stream_for(model, BASE_PERIOD, config, plan_arg)
    buffer_size = config.buffer_size
    n_intervals = stream.n_intervals(buffer_size)
    histograms = interval_histograms(stream, buffer_size)

    cpd = CpdThresholds(seed=config.seed)
    lpd = LocalPhaseDetector(n_instructions=N_BINS)
    edivisive = EDivisiveDetector(N_BINS, cpd=cpd)
    cusum = CusumDetector(N_BINS, cpd=cpd)
    for index in range(n_intervals):
        counts = histograms[index]
        lpd.observe(counts, index)
        edivisive.observe(counts, index)
        cusum.observe(counts, index)
    gpd = gpd_run(model, BASE_PERIOD, config, plan=plan_arg)

    truth = truth_for_stream(model, BASE_PERIOD, buffer_size, stream)
    return {
        "lpd": _unstable_edges(lpd.events),
        "gpd": _unstable_edges(gpd.events),
        "edivisive": list(edivisive.change_points),
        "cusum": list(cusum.change_points),
    }, n_intervals, truth


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> ExperimentResult:
    """One row per (scenario, detector); extras carry the scoreboard."""
    headers = ["scenario", "detector", "truth", "detected", "matched",
               "mean lag", "spurious/100iv", "missed %"]
    rows: list[list] = []
    scoreboard: dict[str, dict[str, dict]] = {}
    for scenario, name, plan in SCENARIOS:
        model = benchmark_for(name, config)
        detections, n_intervals, truth = _scenario_detections(
            model, plan, config)
        scoreboard[scenario] = {}
        for detector in ("lpd", "gpd", "edivisive", "cusum"):
            metrics = score_detections(detections[detector], truth,
                                       n_intervals)
            scoreboard[scenario][detector] = metrics
            rows.append([scenario, detector, metrics["truth"],
                         metrics["detected"], metrics["matched"],
                         metrics["mean_lag"], metrics["spurious_per_100"],
                         metrics["missed_pct"]])
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, headers=headers,
        rows=rows,
        notes=("ground truth from the workload models' exact interval "
               "share timelines (L1 > "
               f"{GROUND_TRUTH_L1}); a detection within "
               f"{MATCH_TOLERANCE} intervals of a true change matches "
               "it, the rest are spurious"),
        extras={"scoreboard": scoreboard})


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
