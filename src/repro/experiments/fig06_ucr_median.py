"""Figure 6: median percentage of samples in the unmonitored code region.

Paper: "Median of percentage of samples not monitored by the region
monitor.  The line indicates the threshold of 30% used in this study.
For most programs, this is below 30%.  However there are a few programs
that have > 30% samples in UCR."
"""

from __future__ import annotations

from repro.experiments.base import (ExperimentResult, benchmark_for,
                                    monitored_run)
from repro.experiments.cache import WarmTask
from repro.experiments.config import (BASE_PERIOD, DEFAULT_CONFIG,
                                      ExperimentConfig)
from repro.program.spec2000 import FIG6_BENCHMARKS

EXPERIMENT_ID = "fig06"
TITLE = "Median % of samples in the UCR (paper Figure 6)"

#: The formation-trigger threshold the figure draws as a line.
THRESHOLD_PCT = 30.0


def warm_targets(config: ExperimentConfig,
                 benchmarks: tuple[str, ...] = FIG6_BENCHMARKS
                 ) -> list[WarmTask]:
    """The monitor runs the parallel runner can precompute."""
    return [WarmTask("monitor", name, BASE_PERIOD) for name in benchmarks]


def run(config: ExperimentConfig = DEFAULT_CONFIG,
        benchmarks: tuple[str, ...] = FIG6_BENCHMARKS) -> ExperimentResult:
    """One row per benchmark: median UCR% and whether it exceeds 30%."""
    headers = ["benchmark", "median UCR%", "above 30% line",
               "formation triggers", "monitored regions"]
    rows: list[list] = []
    for name in benchmarks:
        model = benchmark_for(name, config)
        monitor = monitored_run(model, BASE_PERIOD, config)
        median_pct = 100.0 * monitor.ucr.median()
        rows.append([name, median_pct, median_pct > THRESHOLD_PCT,
                     monitor.ucr.n_triggers, len(monitor.all_regions())])
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, headers=headers,
        rows=rows,
        notes="254.gap and 186.crafty sit above the 30% line, as in the paper")


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
