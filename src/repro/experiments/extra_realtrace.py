"""Bonus experiment: the detector zoo on *recorded* executions.

Every numbered figure replays synthetic workload models; this family
replays the committed fixture corpus of real recordings
(``tests/fixtures/traces/realtrace/``, see its README for provenance)
through :mod:`repro.ingest` and runs the full detector zoo — GPD, LPD,
E-divisive and CUSUM — over each trace.  There is no model-derived
ground truth for a real execution, so the scoreboard reports what can
be measured without one: per-detector phase-change counts and
stable-time fractions, plus cross-detector agreement (tolerant Jaccard
between the detection sets of every detector pair — detectors that see
the *same* structure in a recording agree; one that flaps alone does
not).

The corpus directory can be overridden with ``REPRO_TRACE_CORPUS`` (the
CI smoke job points it at a subset).  ``config.scale`` trims the number
of replayed intervals per trace — the recording itself is immutable;
scaling only shortens the replay.
"""

from __future__ import annotations

import os
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.analysis.metrics import run_gpd
from repro.core.lpd import LocalPhaseDetector
from repro.core.states import PhaseEventKind
from repro.cpd import CpdThresholds, CusumDetector, EDivisiveDetector
from repro.errors import ExperimentError
from repro.experiments.base import (ExperimentResult, trace_gpd_run,
                                    trace_stream_for)
from repro.experiments.config import (BASE_PERIOD, DEFAULT_CONFIG,
                                      ExperimentConfig)
from repro.ingest import TraceProfile, load_profile
from repro.sampling import SampleStream

EXPERIMENT_ID = "realtrace"
TITLE = "Recorded traces: detector zoo on real executions"

#: Address-histogram resolution for LPD and the CPD detectors (the
#: same evidence shape the ``cpd`` scoreboard uses).
N_BINS = 64

#: Two detections within this many intervals of each other agree.
MATCH_TOLERANCE = 8

#: Replays never drop below this many intervals, however small the
#: scale — detectors need a minimum run length to mean anything.
MIN_INTERVALS = 8

#: The committed fixture corpus (relative to the repo root).
DEFAULT_CORPUS = (Path(__file__).resolve().parents[3]
                  / "tests" / "fixtures" / "traces" / "realtrace")

#: Environment override for the corpus directory.
CORPUS_ENV = "REPRO_TRACE_CORPUS"

DETECTORS = ("gpd", "lpd", "edivisive", "cusum")


def corpus_dir() -> Path:
    """The active corpus directory (env override, else the fixtures)."""
    override = os.environ.get(CORPUS_ENV)
    return Path(override) if override else DEFAULT_CORPUS


def load_corpus(directory: Path | None = None) -> list[TraceProfile]:
    """Load every profile in the corpus, sorted by file name."""
    root = corpus_dir() if directory is None else directory
    paths = sorted(root.glob("*.json"))
    if not paths:
        raise ExperimentError(
            f"no trace profiles found under {root}; record fixtures with "
            f"scripts/record_trace.py or point {CORPUS_ENV} elsewhere")
    return [load_profile(path) for path in paths]


def _trim(stream: SampleStream, n_intervals: int,
          buffer_size: int) -> SampleStream:
    """The stream's first *n_intervals* whole intervals, as a stream."""
    n = n_intervals * buffer_size
    if n >= len(stream.pcs):
        return stream
    cycles = stream.cycles[:n]
    return replace(stream, pcs=stream.pcs[:n], cycles=cycles,
                   dcache_miss=stream.dcache_miss[:n],
                   region_ids=stream.region_ids[:n],
                   total_cycles=int(cycles[-1]) + 1,
                   instr_delta=(None if stream.instr_delta is None
                                else stream.instr_delta[:n]))


def interval_histograms(stream: SampleStream, buffer_size: int,
                        n_bins: int = N_BINS) -> np.ndarray:
    """Per-interval address histograms over the stream's own PC range."""
    n_intervals = stream.n_intervals(buffer_size)
    pcs = stream.pcs[:n_intervals * buffer_size].astype(np.float64)
    edges = np.linspace(pcs.min(), pcs.max() + 1.0, n_bins + 1)
    histograms = np.empty((n_intervals, n_bins), dtype=np.float64)
    for index in range(n_intervals):
        window = pcs[index * buffer_size:(index + 1) * buffer_size]
        histograms[index] = np.histogram(window, bins=edges)[0]
    return histograms


def _unstable_edges(events) -> list[int]:
    """Interval indexes of became-unstable crossings (= detections)."""
    return [event.interval_index for event in events
            if event.kind is PhaseEventKind.BECAME_UNSTABLE]


def agreement(a: list[int], b: list[int],
              tolerance: int = MATCH_TOLERANCE) -> float:
    """Tolerant Jaccard between two detection sets.

    Greedy in-order matching: each detection of *a* consumes the first
    unconsumed detection of *b* within ±*tolerance* intervals; the
    score is ``matched / (len(a) + len(b) - matched)``.  Two empty sets
    agree perfectly (both saw a steady run).
    """
    if not a and not b:
        return 1.0
    unused = sorted(b)
    matched = 0
    for index in sorted(a):
        hit = next((d for d in unused if abs(d - index) <= tolerance),
                   None)
        if hit is not None:
            unused.remove(hit)
            matched += 1
    return matched / (len(a) + len(b) - matched)


def trace_detections(profile: TraceProfile,
                     config: ExperimentConfig) -> tuple[dict, dict, int]:
    """Run the zoo over one trace: detections, stable fractions, length."""
    stream = trace_stream_for(profile, BASE_PERIOD, config)
    buffer_size = config.buffer_size
    n_full = stream.n_intervals(buffer_size)
    n_use = min(n_full, max(MIN_INTERVALS,
                            int(round(n_full * config.scale))))
    if n_use < n_full:
        stream = _trim(stream, n_use, buffer_size)
        gpd = run_gpd(stream, buffer_size)
    else:
        gpd = trace_gpd_run(profile, BASE_PERIOD, config)

    histograms = interval_histograms(stream, buffer_size)
    cpd = CpdThresholds(seed=config.seed)
    lpd = LocalPhaseDetector(n_instructions=N_BINS)
    edivisive = EDivisiveDetector(N_BINS, cpd=cpd)
    cusum = CusumDetector(N_BINS, cpd=cpd)
    for index in range(n_use):
        counts = histograms[index]
        lpd.observe(counts, index)
        edivisive.observe(counts, index)
        cusum.observe(counts, index)

    detections = {
        "gpd": _unstable_edges(gpd.events),
        "lpd": _unstable_edges(lpd.events),
        "edivisive": list(edivisive.change_points),
        "cusum": list(cusum.change_points),
    }
    stable = {
        "gpd": gpd.stable_time_fraction(),
        "lpd": lpd.stable_time_fraction(),
        "edivisive": edivisive.stable_time_fraction(),
        "cusum": cusum.stable_time_fraction(),
    }
    return detections, stable, n_use


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> ExperimentResult:
    """One row per (trace, detector); extras carry the full scoreboard."""
    headers = ["trace", "detector", "intervals", "phase changes",
               "stable %", "mean agreement"]
    rows: list[list] = []
    scoreboard: dict[str, dict] = {}
    for profile in load_corpus():
        detections, stable, n_use = trace_detections(profile, config)
        pairs = {}
        for i, first in enumerate(DETECTORS):
            for second in DETECTORS[i + 1:]:
                pairs[f"{first}/{second}"] = agreement(
                    detections[first], detections[second])
        scoreboard[profile.name] = {
            "intervals": n_use,
            "checksum": profile.checksum,
            "detections": detections,
            "stable": stable,
            "agreement": pairs,
        }
        for detector in DETECTORS:
            others = [score for pair, score in pairs.items()
                      if detector in pair.split("/")]
            rows.append([profile.name, detector, n_use,
                         len(detections[detector]),
                         100.0 * stable[detector],
                         sum(others) / len(others)])
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, headers=headers,
        rows=rows,
        notes=("real recordings from tests/fixtures/traces/realtrace "
               "(see its README for provenance); no model ground truth, "
               "so agreement is tolerant Jaccard (±"
               f"{MATCH_TOLERANCE} intervals) between detector pairs"),
        extras={"scoreboard": scoreboard})


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
