"""Figure 7: % of samples in the UCR over time for 254.gap and 186.crafty.

Paper: "Even after frequent region formation triggers in 254.gap, the
percentage of samples in UCR remains high.  186.crafty tries to form
regions on every buffer overflow but the percentage of samples in UCR
does not reduce.  This is due to a current limitation of the region
building algorithm" — the hot code lives in procedures called from loops,
where the loop-only builder cannot operate.

The experiment also runs the paper's proposed fix ("there is no
fundamental limitation to building inter-procedural regions") to show the
UCR collapsing once the inter-procedural extension is enabled.
"""

from __future__ import annotations

import numpy as np

from repro.core import MonitorThresholds
from repro.experiments.base import (ExperimentResult, benchmark_for,
                                    stream_for)
from repro.experiments.config import (BASE_PERIOD, DEFAULT_CONFIG,
                                      ExperimentConfig)
from repro.monitor import RegionMonitor

EXPERIMENT_ID = "fig07"
TITLE = "% samples in UCR over time: 254.gap and 186.crafty (Figure 7)"

BENCHMARKS = ("254.gap", "186.crafty")
N_BUCKETS = 10


def ucr_series(benchmark: str, config: ExperimentConfig,
               interprocedural: bool = False) -> tuple[list[float], int]:
    """Per-interval UCR fractions plus the formation-trigger count."""
    model = benchmark_for(benchmark, config)
    stream = stream_for(model, BASE_PERIOD, config)
    monitor = RegionMonitor(
        model.binary, MonitorThresholds(buffer_size=config.buffer_size),
        interprocedural=interprocedural)
    monitor.process_stream(stream)
    return monitor.ucr.history, monitor.ucr.n_triggers


def run(config: ExperimentConfig = DEFAULT_CONFIG) -> ExperimentResult:
    """Bucketed UCR% time series for both benchmarks, loop-only and
    inter-procedural."""
    headers = ["time bucket"]
    columns: list[list[float]] = []
    triggers: dict[str, int] = {}
    for name in BENCHMARKS:
        for interproc in (False, True):
            label = f"{name} {'interproc' if interproc else 'loop-only'}"
            history, n_triggers = ucr_series(name, config, interproc)
            headers.append(f"{label} UCR%")
            buckets = np.array_split(np.asarray(history),
                                     min(N_BUCKETS, max(len(history), 1)))
            columns.append([100.0 * float(b.mean()) if b.size else 0.0
                            for b in buckets])
            triggers[label] = n_triggers
    n_rows = max(len(c) for c in columns)
    rows: list[list] = []
    for index in range(n_rows):
        row: list = [index]
        for column in columns:
            row.append(column[index] if index < len(column) else 0.0)
        rows.append(row)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, headers=headers,
        rows=rows,
        notes=("loop-only formation leaves both benchmarks >30% UCR "
               "despite triggering every interval "
               f"(triggers: {triggers}); the inter-procedural extension "
               "collapses it"),
        extras={"triggers": triggers})


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().to_table())


if __name__ == "__main__":  # pragma: no cover
    main()
