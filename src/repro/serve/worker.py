"""Shard worker: one process owning one ``BatchSession`` shard.

A worker's life is a loop over its input queue: apply
:class:`~repro.serve.messages.Batch` messages to the shard's
:class:`~repro.batch.session.BatchSession`, acknowledge every delivery,
snapshot periodically, and exit cleanly on
:class:`~repro.serve.messages.Shutdown` or SIGTERM/SIGINT (both write a
final snapshot first).

Determinism under redelivery is the worker's core job.  Per stream it
keeps a delivery cursor (the next expected ``stream_seq``): repeats are
dropped (but still acked), early arrivals are parked in a stash and
drained the moment their gap fills, so a stream's batches are *applied*
in exact submission order no matter how crashes, journal replays, stale
in-flight messages, duplicate or reordered deliveries interleave.
Combined with snapshots that carry the cursors, the stash and the event
extraction cursors, a respawned worker re-emits exactly the event
deltas its predecessor produced — which the supervisor verifies
record-for-record.

Chaos hooks: the worker honors the shard's
:class:`~repro.faults.service.ServiceFaultPlan` — deterministic
self-kills (``worker-crash``), torn snapshot writes followed by death
(``torn-snapshot``), and consumption stalls (``queue-stall``).  Faults
key on the shard-local dispatch sequence, so runs are reproducible.
"""

from __future__ import annotations

import os
import queue
import signal
import time
from types import FrameType
from typing import Any

import numpy as np

from repro.batch.session import BatchLane, BatchSession
from repro.errors import SnapshotError
from repro.faults.service import (QueueStall, ServiceFaultPlan,
                                  TornSnapshot, WorkerCrash)
from repro.serve.config import ServeConfig
from repro.serve.events import EventCursor, extract_lane_events
from repro.serve.messages import (AppliedBatch, Batch, BatchAck, Shutdown,
                                  SnapshotWritten, WorkerStarted)
from repro.serve.snapshot import (ShardSnapshot, SnapshotStore,
                                  encode_snapshot)
from repro.telemetry.bus import EventBus

__all__ = ["ShardWorker", "worker_main", "CRASH_EXIT_CODE"]

#: Exit status of a fault-injected self-kill (mirrors SIGKILL's 128+9).
CRASH_EXIT_CODE = 137


def build_shard_session(config: ServeConfig,
                        streams: tuple[str, ...]) -> BatchSession:
    """A fresh shard session with one lane per stream, in stream order.

    The session gets its own disabled :class:`EventBus` — never the
    process-global bus — so snapshots stay picklable regardless of what
    sinks the host process has attached, and telemetry stays per-worker
    (telemetry is result-inert, so a restored session with a fresh bus
    is still bit-identical).
    """
    session = BatchSession(
        binary=config.binary,
        monitor_thresholds=config.monitor_thresholds,
        gpd_thresholds=config.gpd_thresholds,
        run_gpd=config.run_gpd,
        watchdog=config.watchdog,
        telemetry=EventBus())
    for stream in streams:
        session.add_lane(name=stream)
    return session


class ShardWorker:
    """The in-process core of one shard worker (testable without mp)."""

    def __init__(self, shard_id: int, streams: tuple[str, ...],
                 config: ServeConfig, store: SnapshotStore,
                 faults: ServiceFaultPlan | None = None) -> None:
        self.shard_id = shard_id
        self.streams = tuple(streams)
        self.config = config
        self.store = store
        shard_plan = (faults or ServiceFaultPlan()).for_shard(shard_id)
        self._crashes = sorted(shard_plan.of_kind(WorkerCrash.kind),
                               key=lambda spec: spec.at_seq)
        self._tears = sorted(shard_plan.of_kind(TornSnapshot.kind),
                             key=lambda spec: spec.at_seq)
        self._stalls = {spec.at_seq: spec
                        for spec in shard_plan.of_kind(QueueStall.kind)}
        self._stalled: set[int] = set()
        self.restored_seq = self._restore()

    # -- state ----------------------------------------------------------------

    def _genesis(self) -> None:
        self.session = build_shard_session(self.config, self.streams)
        self.seen_through = -1
        self._seen_ahead: set[int] = set()
        self.stream_seqs: dict[str, int] = {s: 0 for s in self.streams}
        self.stash: dict[str, dict[int, np.ndarray]] = {}
        self.cursors: dict[str, EventCursor] = {
            s: EventCursor() for s in self.streams}
        self._since_snapshot = 0

    def _restore(self) -> int:
        """Adopt the newest restorable snapshot; -1 on a genesis start."""
        loaded = self.store.load_latest()
        if loaded is not None:
            snapshot, _ = loaded
            if snapshot.lane_names == self.streams:
                self.session = snapshot.session
                self.seen_through = snapshot.applied_through
                self._seen_ahead = set()
                self.stream_seqs = dict(snapshot.stream_seqs)
                self.stash = {stream: dict(parked) for stream, parked
                              in snapshot.stash.items()}
                self.cursors = dict(snapshot.event_cursors)
                self._since_snapshot = 0
                return self.seen_through
        self._genesis()
        return -1

    def _lane(self, stream: str) -> BatchLane:
        return self.session.lanes[self.streams.index(stream)]

    # -- batch application ----------------------------------------------------

    def _note_seq(self, seq: int) -> None:
        """Advance the contiguous delivery high-water mark."""
        if seq <= self.seen_through:
            return  # a replayed or stale redelivery
        self._seen_ahead.add(seq)
        while self.seen_through + 1 in self._seen_ahead:
            self.seen_through += 1
            self._seen_ahead.discard(self.seen_through)

    def _apply(self, stream: str, stream_seq: int,
               samples: np.ndarray) -> AppliedBatch:
        lane = self._lane(stream)
        before = lane.stats.intervals
        lane.feed_many(np.asarray(samples, dtype=np.int64))
        self.session.process_ready()
        events, self.cursors[stream] = extract_lane_events(
            lane, self.cursors[stream])
        self.stream_seqs[stream] = stream_seq + 1
        self._since_snapshot += 1
        return AppliedBatch(stream=stream, stream_seq=stream_seq,
                            events=events,
                            intervals=lane.stats.intervals - before)

    def handle_batch(self, message: Batch) -> BatchAck:
        """Apply one delivery (dedupe/stash/drain); always returns an ack."""
        stall = self._stalls.get(message.seq)
        if stall is not None and message.seq not in self._stalled:
            self._stalled.add(message.seq)
            time.sleep(stall.stall_seconds)  # the injected consumer stall
        self._note_seq(message.seq)
        stream = message.stream
        applied: list[AppliedBatch] = []
        expected = self.stream_seqs.get(stream, 0)
        if message.stream_seq < expected:
            pass  # duplicate delivery: ack with nothing applied
        elif message.stream_seq > expected:
            self.stash.setdefault(stream, {})[message.stream_seq] = \
                np.array(message.samples, dtype=np.int64)
        else:
            applied.append(self._apply(stream, message.stream_seq,
                                       message.samples))
            parked = self.stash.get(stream)
            while parked:
                up_next = self.stream_seqs[stream]
                if up_next not in parked:
                    break
                applied.append(self._apply(stream, up_next,
                                           parked.pop(up_next)))
        return BatchAck(shard=self.shard_id, seq=message.seq,
                        applied=tuple(applied))

    # -- snapshots ------------------------------------------------------------

    @property
    def snapshot_due(self) -> bool:
        return self._since_snapshot >= self.config.snapshot_every

    def _pending_tear(self) -> TornSnapshot | None:
        for spec in self._tears:
            if spec.at_seq <= self.seen_through:
                return spec
        return None

    def take_snapshot(self) -> SnapshotWritten:
        """Persist the current state; raises on an injected torn write."""
        # Serving consumes events through incremental extraction only;
        # the banks' lazy observation logs would otherwise grow the
        # snapshot (and its cost) linearly with worker uptime.
        self.session.discard_observation_history()
        snapshot = ShardSnapshot(
            shard_id=self.shard_id,
            applied_through=self.seen_through,
            stream_seqs=dict(self.stream_seqs),
            stash={stream: dict(parked)
                   for stream, parked in self.stash.items() if parked},
            event_cursors=dict(self.cursors),
            lane_names=self.streams,
            session=self.session)
        tear = self._pending_tear()
        if tear is not None:
            # The injected power-loss-mid-checkpoint: bypass the atomic
            # tmp+rename path and leave a truncated file at the final
            # name, exactly what recovery must detect and skip.
            blob = encode_snapshot(snapshot)
            torn = blob[:max(1, int(len(blob) * tear.truncate))]
            path = self.store.path_for(snapshot.applied_through)
            with open(path, "wb") as handle:
                handle.write(torn)
                handle.flush()
                os.fsync(handle.fileno())
            raise SnapshotError(
                f"shard {self.shard_id}: injected torn snapshot at seq "
                f"{snapshot.applied_through} ({len(torn)}/{len(blob)} "
                f"bytes)")
        path = self.store.save(snapshot)
        self._since_snapshot = 0
        return SnapshotWritten(shard=self.shard_id,
                               seq=snapshot.applied_through,
                               path=str(path),
                               n_bytes=path.stat().st_size)

    # -- fault queries ---------------------------------------------------------

    def crash_spec_for(self, seq: int) -> WorkerCrash | None:
        for spec in self._crashes:
            if spec.at_seq == seq:
                return spec
        return None


def _flush_and_die(out_q: Any) -> None:
    """Flush the output queue's feeder thread, then hard-exit.

    The injected failure mode is *process loss*, not queue corruption:
    a real crash can land between any two queue operations, but tearing
    a ``multiprocessing`` pipe mid-message is not a recoverable fault
    class (the receiver would see a deserialization error, not a lost
    message), so the harness always lets buffered messages drain before
    dying.
    """
    out_q.close()
    out_q.join_thread()
    os._exit(CRASH_EXIT_CODE)


def worker_main(shard_id: int, streams: tuple[str, ...],
                config: ServeConfig, snapshot_dir: str,
                faults: ServiceFaultPlan | None,
                in_q: Any, out_q: Any) -> None:
    """Process entry point for one shard worker incarnation."""
    terminated = {"flag": False}

    def _on_signal(signum: int, frame: FrameType | None) -> None:
        terminated["flag"] = True

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    store = SnapshotStore(snapshot_dir, shard_id,
                          keep=config.snapshot_keep)
    worker = ShardWorker(shard_id, tuple(streams), config, store, faults)
    # The output queue is unbounded (the supervisor's ctx.Queue() with
    # no maxsize), so these puts never block on capacity — only the
    # feeder thread writes the pipe, and it survives a dead reader.
    out_q.put(WorkerStarted(shard=shard_id,  # repro: allow[queue-no-timeout] unbounded output queue
                            restored_seq=worker.restored_seq,
                            lanes=worker.streams))
    while True:
        if terminated["flag"]:
            break
        try:
            message = in_q.get(timeout=0.05)
        except queue.Empty:
            continue
        if isinstance(message, Shutdown):
            if message.final_snapshot:
                out_q.put(worker.take_snapshot())  # repro: allow[queue-no-timeout] unbounded output queue
            return
        if not isinstance(message, Batch):
            continue  # unknown message: ignore, stay alive
        crash = worker.crash_spec_for(message.seq)
        if crash is not None and crash.before_ack:
            worker.handle_batch(message)
            _flush_and_die(out_q)
        ack = worker.handle_batch(message)
        out_q.put(ack)  # repro: allow[queue-no-timeout] unbounded output queue
        if crash is not None:
            _flush_and_die(out_q)
        if worker.snapshot_due:
            try:
                out_q.put(worker.take_snapshot())  # repro: allow[queue-no-timeout] unbounded output queue
            except SnapshotError:
                _flush_and_die(out_q)  # torn write == death mid-checkpoint
    # SIGTERM/SIGINT: persist a final snapshot, then exit cleanly.  The
    # on-disk snapshot is what recovery needs; the queue notice is only
    # advisory, and a terminating supervisor may never read it — so the
    # exit-time feeder flush must not be allowed to block (a full pipe
    # would turn this exit into a deadlock that the supervisor's own
    # unbounded interpreter-exit joins then inherit).
    out_q.put(worker.take_snapshot())  # repro: allow[queue-no-timeout] unbounded output queue
    out_q.cancel_join_thread()
