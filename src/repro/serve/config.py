"""Configuration for the sharded fleet serving layer."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.thresholds import GpdThresholds, MonitorThresholds
from repro.errors import ServeError
from repro.monitor.watchdog import WatchdogConfig
from repro.program.binary import SyntheticBinary

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Knobs for a :class:`~repro.serve.supervisor.FleetSupervisor`.

    The session-shaping fields (``binary`` through ``watchdog``) are
    passed verbatim to each shard's
    :class:`~repro.batch.session.BatchSession`, so a sharded fleet is
    configured exactly like the single-process session it must stay
    bit-identical to.

    Attributes
    ----------
    n_shards:
        Worker processes (one ``BatchSession`` each).
    hash_replicas:
        Virtual nodes per shard on the consistent-hash ring.
    snapshot_every:
        Applied batches between periodic snapshots.  The default is
        sized so snapshotting stays under the benched 5% throughput
        budget (``benchmarks/test_serve_bench.py`` measures it; the
        ``bench_compare`` gate enforces it): a 256-lane shard snapshot
        costs roughly 25 one-interval batch applications, so a 1024
        cadence amortizes to ~2.5%.  The trade is recovery work — the
        supervisor journals every undispatched batch since the
        second-newest snapshot, so a restarted worker replays at most
        ``2 * snapshot_every`` batches.
    snapshot_keep:
        Snapshot generations retained per shard (minimum 2 — recovery
        must survive a torn newest generation).
    queue_capacity:
        Bound of each shard's input queue (backpressure surface).
    dispatch_timeout:
        Seconds one enqueue attempt may block on a full queue.
    dispatch_retries:
        Enqueue attempts before a stream's slow-consumer governor trips.
    dispatch_backoff:
        Base seconds between dispatch retries (doubles per retry).
    governor:
        Degradation policy for slow consumers, reusing the region
        watchdog's retry-budget/backoff/blacklist semantics at stream
        granularity.
    ack_timeout:
        Seconds the supervisor waits for worker output before probing
        worker liveness (dead-worker detection latency).
    """

    binary: SyntheticBinary | None = None
    monitor_thresholds: MonitorThresholds | None = None
    gpd_thresholds: GpdThresholds | None = None
    run_gpd: bool = True
    watchdog: WatchdogConfig | None = None
    n_shards: int = 4
    hash_replicas: int = 64
    snapshot_every: int = 1024
    snapshot_keep: int = 2
    queue_capacity: int = 256
    dispatch_timeout: float = 0.5
    dispatch_retries: int = 5
    dispatch_backoff: float = 0.05
    governor: WatchdogConfig = field(default_factory=WatchdogConfig)
    ack_timeout: float = 0.25

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ServeError(
                f"n_shards must be at least 1, got {self.n_shards}")
        if self.snapshot_every < 1:
            raise ServeError(
                f"snapshot_every must be at least 1, got "
                f"{self.snapshot_every}")
        if self.snapshot_keep < 2:
            raise ServeError(
                f"snapshot_keep must be at least 2 (recovery falls back "
                f"past a torn newest snapshot), got {self.snapshot_keep}")
        if self.queue_capacity < 1:
            raise ServeError(
                f"queue_capacity must be at least 1, got "
                f"{self.queue_capacity}")
        if self.dispatch_retries < 1:
            raise ServeError(
                f"dispatch_retries must be at least 1, got "
                f"{self.dispatch_retries}")
