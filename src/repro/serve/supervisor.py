"""Fleet supervisor: routing, recovery and degradation for shard workers.

The supervisor owns the serving topology::

    submit(stream, samples)
        │  consistent hash (HashRing)
        ▼
    bounded input queue ──► shard worker (BatchSession + snapshots)
        ▲                        │
        └── journal replay ◄─────┘ acks / snapshots on one output queue

Every accepted batch is journaled before it is enqueued, so a worker
death is recovered by respawning the process, letting it restore the
newest good snapshot, and replaying the journaled suffix — the worker's
per-stream cursors absorb the overlap with stale in-flight messages.
The supervisor cross-checks recovery: every re-acked batch's event
delta is compared record-for-record against the original ack, and any
difference increments :attr:`FleetSupervisor.divergences` (a clean
fleet holds it at zero; the chaos differential tests assert it).

Degradation ladder, outermost first:

===================  ====================================================
pressure             response
===================  ====================================================
full input queue     bounded blocking ``put`` with exponential-backoff
                     retries (``dispatch_timeout`` / ``dispatch_retries``
                     / ``dispatch_backoff``)
retries exhausted    :class:`~repro.serve.governor.StreamGovernor` trips
                     the stream: suspension with watchdog-style backoff,
                     then blacklist (the batch is shed, counted, and
                     reported — never silently lost)
dead worker          detected via ``Process.is_alive``/exit codes during
                     ack waits (heartbeat gauges track liveness);
                     respawned from snapshot + journal replay
torn snapshot        the worker's store falls back to the previous
                     generation (or genesis); the journal retains every
                     entry past the *second*-newest snapshot for exactly
                     this case
===================  ====================================================

Delivery-layer chaos (``duplicate-delivery``, ``reorder-delivery``
specs) is injected here, on the dispatch path, so workers prove their
dedupe/stash machinery against realistic at-least-once transports.
"""

from __future__ import annotations

import multiprocessing
import queue
import time

import numpy as np

from repro.errors import SamplingError, ServeError
from repro.faults.service import (DuplicateDelivery, ReorderDelivery,
                                  ServiceFaultPlan, TornSnapshot,
                                  WorkerCrash)
from repro.monitor.watchdog import WatchdogEvent
from repro.serve.config import ServeConfig
from repro.serve.events import EventRecord
from repro.serve.governor import StreamGovernor
from repro.serve.hashing import HashRing
from repro.serve.journal import ShardJournal
from repro.serve.messages import (Batch, BatchAck, Shutdown,
                                  SnapshotWritten, WorkerStarted)
from repro.serve.worker import worker_main
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["FleetSupervisor"]


def _mp_context() -> multiprocessing.context.BaseContext:
    """Fork where available (fast, Linux CI); spawn elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


class _ShardState:
    """Supervisor-side bookkeeping for one shard."""

    def __init__(self, shard_id: int, streams: list[str],
                 ctx: multiprocessing.context.BaseContext,
                 config: ServeConfig) -> None:
        self.shard_id = shard_id
        self.streams = list(streams)
        self.in_q = ctx.Queue(maxsize=config.queue_capacity)
        # Never let interpreter exit block on flushing this queue: its
        # exit-time finalizer joins the feeder thread, which can be
        # wedged mid-write into a full pipe whose worker is already
        # dead (the supervisor holds a read end too, so the write
        # never fails).  Dropping undelivered batches at exit is free:
        # every accepted batch is journaled before it is enqueued.
        self.in_q.cancel_join_thread()
        self.journal = ShardJournal(shard_id)
        self.next_seq = 0
        self.unacked: set[int] = set()
        self.process: multiprocessing.process.BaseProcess | None = None
        self.incarnations = 0
        self.started = False
        self.snapshot_seqs: list[int] = []
        self.held: list[list] = []  # [Batch, releases remaining]
        #: Acks that raced ahead of submit()'s bookkeeping: a
        #: backpressure pump inside the dispatch path can deliver the
        #: ack for the very batch being submitted before its seq lands
        #: in ``unacked``.
        self.early_acks: set[int] = set()


class FleetSupervisor:
    """Routes per-stream batches to shard workers; survives their deaths."""

    def __init__(self, config: ServeConfig, streams: list[str],
                 snapshot_dir: str,
                 faults: ServiceFaultPlan | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        if len(set(streams)) != len(streams):
            raise ServeError("stream names must be unique")
        self.config = config
        self.streams = list(streams)
        self.snapshot_dir = str(snapshot_dir)
        self.faults = faults or ServiceFaultPlan()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.ring = HashRing(config.n_shards, config.hash_replicas)
        self._ctx = _mp_context()
        self.out_q = self._ctx.Queue()
        assignment = self.ring.partition(self.streams)
        self._shards = {
            shard: _ShardState(shard, assigned, self._ctx, config)
            for shard, assigned in assignment.items()}
        self._stream_shard = {stream: shard
                              for shard, state in self._shards.items()
                              for stream in state.streams}
        self._stream_next: dict[str, int] = {s: 0 for s in self.streams}
        #: stream -> stream_seq -> event delta from the first ack.
        self._events: dict[str, dict[int, tuple[EventRecord, ...]]] = {
            s: {} for s in self.streams}
        self.governor = StreamGovernor(config.governor)
        # Fatal worker-side specs, consumed (lowest at_seq first) as
        # deaths are observed, so a respawned incarnation does not
        # re-fire the fault that killed its predecessor.
        self._fatal: dict[int, list] = {
            shard: sorted(
                (spec for spec in self.faults.specs
                 if spec.kind in (WorkerCrash.kind, TornSnapshot.kind)
                 and spec.shard == shard),
                key=lambda spec: spec.at_seq)
            for shard in self._shards}
        self._delivery_fired: set[tuple] = set()
        self.divergences = 0
        self.restarts = 0
        self.evicted_batches = 0
        self.submitted_batches = 0
        self.acked_batches = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self, timeout: float = 30.0) -> None:
        """Spawn one worker per shard and wait for them to come up."""
        for state in self._shards.values():
            self._spawn(state)
        deadline = time.monotonic() + timeout  # repro: allow[wall-clock] startup deadline
        while not all(s.started for s in self._shards.values()):
            remaining = deadline - time.monotonic()  # repro: allow[wall-clock] startup deadline
            if remaining <= 0:
                missing = [s.shard_id for s in self._shards.values()
                           if not s.started]
                raise ServeError(
                    f"workers for shards {missing} did not start within "
                    f"{timeout}s")
            self._pump(timeout=min(remaining, self.config.ack_timeout))

    def _spawn(self, state: _ShardState) -> None:
        plan = ServiceFaultPlan(tuple(
            spec for spec in self.faults.specs
            if spec.kind not in (WorkerCrash.kind, TornSnapshot.kind,
                                 DuplicateDelivery.kind,
                                 ReorderDelivery.kind)
        ) + tuple(self._fatal[state.shard_id]))
        state.started = False
        state.incarnations += 1
        state.process = self._ctx.Process(
            target=worker_main,
            args=(state.shard_id, tuple(state.streams), self.config,
                  self.snapshot_dir, plan, state.in_q, self.out_q),
            daemon=True,
            name=f"repro-shard{state.shard_id}-gen{state.incarnations}")
        state.process.start()

    def _respawn(self, state: _ShardState) -> None:
        """Replace a dead incarnation; replay follows its WorkerStarted."""
        self.restarts += 1
        self.metrics.counter("repro_serve_restarts_total",
                             "worker respawns after death",
                             shard=str(state.shard_id)).inc()
        if self._fatal[state.shard_id]:
            # FIFO delivery means the lowest-sequence unfired fatal
            # fault is the one that fired: consume exactly it.
            self._fatal[state.shard_id].pop(0)
        self._spawn(state)

    # -- ingestion ------------------------------------------------------------

    def submit(self, stream: str, samples: np.ndarray) -> bool:
        """Route one batch; returns False if the governor shed it."""
        # Absorb whatever the workers have produced before ingesting
        # more.  Acks left sitting in the output pipe eventually fill
        # it, blocking every worker's queue feeder thread mid-message —
        # harmless to their apply loops, but it batches up exactly the
        # flush work that worker exit (and a failure-path shutdown)
        # then has to wait out.
        while self._pump(timeout=0.0):
            pass
        shard = self._stream_shard.get(stream)
        if shard is None:
            raise ServeError(f"unknown stream {stream!r}")
        samples = np.asarray(samples)
        if samples.ndim != 1 or samples.size == 0 \
                or not np.issubdtype(samples.dtype, np.integer):
            raise SamplingError(
                f"submit expects a non-empty 1-D integer batch, got "
                f"shape {samples.shape} dtype {samples.dtype}")
        state = self._shards[shard]
        seq = state.next_seq
        if not self.governor.allows(stream, seq):
            self.evicted_batches += 1
            self.metrics.counter("repro_serve_evicted_total",
                                 "batches shed by the stream governor",
                                 stream=stream).inc()
            return False
        stream_seq = self._stream_next[stream]
        message = Batch(seq=seq, stream=stream, stream_seq=stream_seq,
                        samples=np.array(samples, dtype=np.int64))
        if not self._dispatch(state, message):
            event = self.governor.trip(stream, seq)
            self.evicted_batches += 1
            self.metrics.counter("repro_serve_evicted_total",
                                 "batches shed by the stream governor",
                                 stream=stream).inc()
            del event  # recorded on the governor; callers read .events
            return False
        state.journal.append(seq, stream, stream_seq, message.samples)
        state.next_seq += 1
        self._stream_next[stream] = stream_seq + 1
        if seq in state.early_acks:
            state.early_acks.discard(seq)
        else:
            state.unacked.add(seq)
        self.submitted_batches += 1
        self.metrics.counter("repro_serve_dispatches_total",
                             "batches dispatched to shard queues",
                             shard=str(shard)).inc()
        return True

    # -- dispatch path (delivery faults + backpressure) -----------------------

    def _delivery_specs(self, shard: int, kind: str) -> list:
        return [spec for spec in self.faults.specs
                if spec.kind == kind and spec.shard == shard]

    def _dispatch(self, state: _ShardState, message: Batch) -> bool:
        """Apply delivery faults, then enqueue with retry/backoff."""
        for spec in self._delivery_specs(state.shard_id,
                                         ReorderDelivery.kind):
            key = (spec.kind, state.shard_id, spec.at_seq)
            if spec.at_seq == message.seq \
                    and key not in self._delivery_fired:
                self._delivery_fired.add(key)
                state.held.append([message, spec.depth])
                return True  # held back; released by later dispatches
        if not self._enqueue(state, message):
            return False
        for hold in list(state.held):
            hold[1] -= 1
            if hold[1] <= 0:
                state.held.remove(hold)
                self._enqueue(state, hold[0])
        for spec in self._delivery_specs(state.shard_id,
                                         DuplicateDelivery.kind):
            key = (spec.kind, state.shard_id, spec.at_seq)
            if spec.at_seq == message.seq \
                    and key not in self._delivery_fired:
                self._delivery_fired.add(key)
                for _ in range(spec.copies - 1):
                    self._enqueue(state, message)
        return True

    def _enqueue(self, state: _ShardState, message: Batch) -> bool:
        """Bounded put with exponential backoff; False when it gives up."""
        delay = self.config.dispatch_backoff
        for attempt in range(self.config.dispatch_retries):
            try:
                state.in_q.put(message,
                               timeout=self.config.dispatch_timeout)
                return True
            except queue.Full:
                # Backpressure: the consumer is behind (or dead).  Keep
                # the ack pipeline moving, revive a dead worker so the
                # queue can drain, then retry after a growing pause.
                self._pump(timeout=0.0)
                self._check_workers()
                time.sleep(delay)
                delay *= 2
        return False

    def _flush_held(self) -> None:
        """Release any reorder-held messages (run boundary / drain)."""
        for state in self._shards.values():
            held, state.held = state.held, []
            for message, _ in held:
                self._enqueue(state, message)

    # -- the upward pipeline --------------------------------------------------

    def _pump(self, timeout: float) -> bool:
        """Process at most one output-queue message; True if one arrived."""
        try:
            if timeout > 0:
                message = self.out_q.get(timeout=timeout)
            else:
                message = self.out_q.get_nowait()
        except queue.Empty:
            return False
        self._handle_up(message)
        return True

    def _handle_up(self, message: object) -> None:
        if isinstance(message, WorkerStarted):
            state = self._shards[message.shard]
            state.started = True
            self.metrics.gauge("repro_serve_worker_up",
                               "liveness heartbeat per shard",
                               shard=str(message.shard)).set(1.0)
            if state.incarnations > 1 or message.restored_seq >= 0:
                for entry in state.journal.entries_after(
                        message.restored_seq):
                    state.unacked.add(entry.seq)
                    self._enqueue(state, Batch(
                        seq=entry.seq, stream=entry.stream,
                        stream_seq=entry.stream_seq,
                        samples=entry.samples))
        elif isinstance(message, BatchAck):
            state = self._shards[message.shard]
            if message.seq in state.unacked:
                state.unacked.discard(message.seq)
            elif message.seq >= state.next_seq:
                state.early_acks.add(message.seq)
            self.acked_batches += 1
            for applied in message.applied:
                seen = self._events[applied.stream]
                if applied.stream_seq in seen:
                    if seen[applied.stream_seq] != applied.events:
                        self.divergences += 1
                        self.metrics.counter(
                            "repro_serve_divergences_total",
                            "replayed event deltas that differed",
                            stream=applied.stream).inc()
                else:
                    seen[applied.stream_seq] = applied.events
        elif isinstance(message, SnapshotWritten):
            state = self._shards[message.shard]
            state.snapshot_seqs.append(message.seq)
            self.metrics.counter("repro_serve_snapshots_total",
                                 "snapshot generations persisted",
                                 shard=str(message.shard)).inc()
            if len(state.snapshot_seqs) >= 2:
                state.journal.truncate_through(state.snapshot_seqs[-2])

    def _check_workers(self) -> None:
        """Liveness probe: respawn any dead incarnation."""
        for state in self._shards.values():
            process = state.process
            if process is None:
                continue
            alive = process.is_alive()
            self.metrics.gauge("repro_serve_worker_up",
                               "liveness heartbeat per shard",
                               shard=str(state.shard_id)
                               ).set(1.0 if alive else 0.0)
            if not alive:
                self._respawn(state)

    # -- draining and shutdown ------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Dispatched batches not yet acknowledged."""
        return sum(len(state.unacked) for state in self._shards.values())

    def drain(self, timeout: float = 60.0) -> None:
        """Block until every dispatched batch is acknowledged.

        Dead workers found along the way are respawned and their
        journal suffix replayed; the injected crash ladder resolves
        here.  Raises :class:`ServeError` if the fleet cannot settle
        within *timeout* seconds.
        """
        self._flush_held()
        deadline = time.monotonic() + timeout  # repro: allow[wall-clock] drain deadline
        while self.outstanding:
            if time.monotonic() > deadline:  # repro: allow[wall-clock] drain deadline
                pending = {state.shard_id: sorted(state.unacked)[:5]
                           for state in self._shards.values()
                           if state.unacked}
                raise ServeError(
                    f"fleet did not drain within {timeout}s; pending "
                    f"acks (first few per shard): {pending}")
            if not self._pump(timeout=self.config.ack_timeout):
                self._check_workers()
        while self._pump(timeout=0.0):
            pass  # absorb trailing snapshot notices

    def _reap(self, processes: list, timeout: float) -> list:
        """Pump the output queue until *processes* exit; return stragglers."""
        deadline = time.monotonic() + timeout  # repro: allow[wall-clock] shutdown deadline
        pending = [p for p in processes if p.is_alive()]
        while pending and time.monotonic() < deadline:  # repro: allow[wall-clock] shutdown deadline
            self._pump(timeout=0.02)
            pending = [p for p in pending if p.is_alive()]
        return pending

    def shutdown(self, graceful: bool = True,
                 timeout: float = 10.0) -> dict[int, int | None]:
        """Stop the fleet; returns each shard's final exit code.

        Graceful shutdown asks every live worker for a final snapshot;
        a worker that refuses to exit is terminated, and one that still
        lingers is killed — no worker survives this call, so the host
        interpreter's exit (which joins leftover children unboundedly)
        can never hang on the fleet.  The output queue is pumped the
        whole time: exiting workers flush buffered acks through their
        queue feeder threads, and a full pipe with no reader would
        otherwise wedge that flush (and with it the worker's exit).
        Exit code 0 (or a clean SIGTERM exit) is success; anything else
        is surfaced to the caller.
        """
        for state in self._shards.values():
            process = state.process
            if process is None or not process.is_alive():
                continue
            try:
                state.in_q.put(Shutdown(final_snapshot=graceful),
                               timeout=self.config.dispatch_timeout)
            except queue.Full:
                pass  # worker is wedged; the terminate below handles it
        pending = [state.process for state in self._shards.values()
                   if state.process is not None]
        pending = self._reap(pending, timeout)
        for process in pending:
            process.terminate()
        for process in self._reap(pending, 5.0):
            process.kill()  # wedged past SIGTERM: nothing left to save
        for state in self._shards.values():
            if state.process is not None:
                state.process.join(timeout=5.0)
        while self._pump(timeout=0.0):
            pass  # collect final snapshot notices
        exit_codes = {state.shard_id: (state.process.exitcode
                                       if state.process is not None
                                       else None)
                      for state in self._shards.values()}
        for state in self._shards.values():
            state.in_q.close()
        self.out_q.close()
        return exit_codes

    # -- results --------------------------------------------------------------

    def stream_events(self, stream: str) -> tuple[EventRecord, ...]:
        """The stream's full event sequence, assembled from acks."""
        per_stream = self._events.get(stream)
        if per_stream is None:
            raise ServeError(f"unknown stream {stream!r}")
        flattened: list[EventRecord] = []
        for stream_seq in range(self._stream_next[stream]):
            if stream_seq not in per_stream:
                raise ServeError(
                    f"stream {stream!r} is missing the event delta for "
                    f"batch {stream_seq}; fleet not drained?")
            flattened.extend(per_stream[stream_seq])
        return tuple(flattened)

    def governor_events(self) -> list[WatchdogEvent]:
        """Every slow-consumer decision taken this run."""
        return list(self.governor.events)

    def summary(self) -> dict:
        """Run counters for experiment rows and logs."""
        return {
            "shards": len(self._shards),
            "streams": len(self.streams),
            "submitted": self.submitted_batches,
            "acked": self.acked_batches,
            "evicted": self.evicted_batches,
            "restarts": self.restarts,
            "divergences": self.divergences,
            "governor": self.governor.summary(),
        }
