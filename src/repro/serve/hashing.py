"""Consistent-hash assignment of streams to shards.

Streams are placed on a hash ring with ``replicas`` virtual nodes per
shard, so adding or removing a shard moves only ``~1/n_shards`` of the
streams — the property that makes resharding a rolling operation
instead of a full fleet restart.  Hashes come from :mod:`hashlib`
(never the process-seeded builtin ``hash``), so an assignment is a pure
function of the names: every supervisor, worker and test computes the
same placement regardless of ``PYTHONHASHSEED`` or process boundaries.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.errors import ServeError

__all__ = ["HashRing"]


def _point(key: str) -> int:
    """Stable 64-bit ring coordinate for *key*."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash ring mapping stream names to shard ids."""

    def __init__(self, n_shards: int, replicas: int = 64) -> None:
        if n_shards < 1:
            raise ServeError(
                f"a fleet needs at least one shard, got {n_shards}")
        if replicas < 1:
            raise ServeError(
                f"replicas must be at least 1, got {replicas}")
        self.n_shards = n_shards
        self.replicas = replicas
        pairs = sorted(
            (_point(f"shard{shard}#{replica}"), shard)
            for shard in range(n_shards)
            for replica in range(replicas))
        self._points = [point for point, _ in pairs]
        self._owners = [shard for _, shard in pairs]

    def shard_for(self, stream: str) -> int:
        """The shard owning *stream* (first vnode clockwise)."""
        index = bisect.bisect_right(self._points, _point(stream))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def partition(self, streams: list[str]) -> dict[int, list[str]]:
        """Group *streams* by owning shard, preserving input order.

        Every shard id appears in the result, possibly with an empty
        list — a supervisor spawns a worker per shard either way.
        """
        assignment: dict[int, list[str]] = {
            shard: [] for shard in range(self.n_shards)}
        for stream in streams:
            assignment[self.shard_for(stream)].append(stream)
        return assignment
