"""Versioned, torn-write-safe snapshots of one shard worker's state.

A shard's recovery unit is the :class:`ShardSnapshot`: the full
:class:`~repro.batch.session.BatchSession` (detector banks, ring
buffers, regrouper plans, watchdog records) plus the worker's replay
bookkeeping (per-stream delivery cursors, the reorder stash, event
extraction cursors).  The codec wraps a pickle payload in a fixed
envelope::

    MAGIC (8 bytes) | version u32 | payload_len u64 | crc32 u32 | payload

so a torn write — truncation anywhere, or garbage in the payload — is
*detected* (:class:`~repro.errors.SnapshotError`), never silently
restored.  :func:`write_snapshot` is atomic (tmp file + fsync +
``os.replace``), and a :class:`SnapshotStore` keeps the newest two
snapshots per shard, so even a snapshot torn by a mid-write crash or a
byte-level fault leaves an older good generation to fall back to.

Schema discipline: the payload is a plain field dict checked against
:data:`SNAPSHOT_FIELDS` on both encode and decode, and the
``snapshot-field-drift`` rule in :mod:`repro.checks.cachekeys` audits —
statically — that :class:`ShardSnapshot` and :data:`SNAPSHOT_FIELDS`
never drift apart.  Adding a field without bumping
:data:`SNAPSHOT_VERSION` is therefore a two-place edit that the check
suite forces you to make consciously.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any

from repro.errors import SnapshotError

__all__ = ["SNAPSHOT_MAGIC", "SNAPSHOT_VERSION", "SNAPSHOT_FIELDS",
           "ShardSnapshot", "encode_snapshot", "decode_snapshot",
           "write_snapshot", "read_snapshot", "SnapshotStore"]

#: File magic: identifies a shard snapshot regardless of extension.
SNAPSHOT_MAGIC = b"RPROSNAP"

#: Codec version; bump whenever :data:`SNAPSHOT_FIELDS` changes shape.
SNAPSHOT_VERSION = 1

#: The schema: exactly the fields of :class:`ShardSnapshot`, in order.
#: ``repro-check`` (rule ``snapshot-field-drift``) keeps this in sync
#: with the dataclass below.
SNAPSHOT_FIELDS = ("shard_id", "applied_through", "stream_seqs", "stash",
                   "event_cursors", "lane_names", "session")

_HEADER = struct.Struct("<IQI")  # version, payload length, crc32


@dataclass
class ShardSnapshot:
    """Everything a respawned worker needs to resume bit-identically.

    Attributes
    ----------
    shard_id:
        Which shard this snapshot belongs to (sanity-checked on load).
    applied_through:
        Highest shard-local dispatch sequence accounted for: every batch
        with ``seq <= applied_through`` is either applied to the session
        or parked in ``stash``.  Journal replay resumes after this.
    stream_seqs:
        Per-stream next expected delivery sequence (the dedupe cursor).
    stash:
        Out-of-order batches parked until their gap fills:
        ``stream -> {stream_seq: samples}``.
    event_cursors:
        Per-stream event extraction cursors
        (:class:`~repro.serve.events.EventCursor`), so replayed batches
        re-emit exactly their original event deltas.
    lane_names:
        Stream names in lane order (restore-time topology check).
    session:
        The full :class:`~repro.batch.session.BatchSession`.
    """

    shard_id: int
    applied_through: int
    stream_seqs: dict[str, int]
    stash: dict[str, dict[int, Any]]
    event_cursors: dict[str, Any]
    lane_names: tuple[str, ...]
    session: Any


def encode_snapshot(snapshot: ShardSnapshot) -> bytes:
    """Serialize a snapshot into the enveloped wire format."""
    payload_fields = tuple(f.name for f in fields(snapshot))
    if payload_fields != SNAPSHOT_FIELDS:
        raise SnapshotError(
            f"ShardSnapshot fields {payload_fields} drifted from "
            f"SNAPSHOT_FIELDS {SNAPSHOT_FIELDS}; bump SNAPSHOT_VERSION "
            f"and update both")
    payload_dict = {name: getattr(snapshot, name)
                    for name in SNAPSHOT_FIELDS}
    try:
        payload = pickle.dumps(payload_dict,
                               protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise SnapshotError(
            f"snapshot for shard {snapshot.shard_id} is not picklable: "
            f"{type(exc).__name__}: {exc}") from exc
    header = _HEADER.pack(SNAPSHOT_VERSION, len(payload),
                          zlib.crc32(payload))
    return SNAPSHOT_MAGIC + header + payload


def decode_snapshot(blob: bytes) -> ShardSnapshot:
    """Parse and validate an enveloped snapshot; raise on any damage."""
    base = len(SNAPSHOT_MAGIC)
    if len(blob) < base + _HEADER.size:
        raise SnapshotError(
            f"snapshot truncated: {len(blob)} bytes is shorter than the "
            f"envelope header")
    if blob[:base] != SNAPSHOT_MAGIC:
        raise SnapshotError(
            f"bad snapshot magic {blob[:base]!r}; not a shard snapshot")
    version, payload_len, crc = _HEADER.unpack_from(blob, base)
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {version} is not the supported "
            f"{SNAPSHOT_VERSION}")
    payload = blob[base + _HEADER.size:]
    if len(payload) != payload_len:
        raise SnapshotError(
            f"snapshot torn: payload holds {len(payload)} of "
            f"{payload_len} bytes")
    if zlib.crc32(payload) != crc:
        raise SnapshotError("snapshot corrupt: payload CRC mismatch")
    try:
        payload_dict = pickle.loads(payload)
    except Exception as exc:
        raise SnapshotError(
            f"snapshot payload does not unpickle: "
            f"{type(exc).__name__}: {exc}") from exc
    if (not isinstance(payload_dict, dict)
            or tuple(payload_dict) != SNAPSHOT_FIELDS):
        got = tuple(payload_dict) if isinstance(payload_dict, dict) else \
            type(payload_dict).__name__
        raise SnapshotError(
            f"snapshot schema mismatch: payload fields {got} != "
            f"{SNAPSHOT_FIELDS}")
    return ShardSnapshot(**payload_dict)


def write_snapshot(path: str | Path, snapshot: ShardSnapshot) -> int:
    """Atomically write a snapshot; returns the byte count.

    The blob lands in a same-directory temp file, is fsync'd, and is
    renamed over *path* — a crash at any point leaves either the old
    file or the complete new one, never a torn mix (the chaos harness's
    :class:`~repro.faults.service.TornSnapshot` fault deliberately
    bypasses this path to prove the *decoder* catches tears too).
    """
    path = Path(path)
    blob = encode_snapshot(snapshot)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass
        raise SnapshotError(
            f"could not write snapshot {path}: {exc}") from exc
    return len(blob)


def read_snapshot(path: str | Path) -> ShardSnapshot:
    """Read and decode one snapshot file."""
    try:
        blob = Path(path).read_bytes()
    except OSError as exc:
        raise SnapshotError(
            f"could not read snapshot {path}: {exc}") from exc
    return decode_snapshot(blob)


class SnapshotStore:
    """Per-shard snapshot directory keeping the newest *keep* generations.

    Files are named ``shard<id>-<seq>.snap`` with zero-padded sequence
    numbers, so lexicographic order is recovery order.  ``load_latest``
    walks newest-first and *skips* damaged generations — a torn newest
    snapshot degrades recovery to the previous good one (or to genesis),
    it never aborts it.
    """

    def __init__(self, directory: str | Path, shard_id: int,
                 keep: int = 2) -> None:
        if keep < 1:
            raise SnapshotError(f"keep must be at least 1, got {keep}")
        self.directory = Path(directory)
        self.shard_id = shard_id
        self.keep = keep
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, seq: int) -> Path:
        return self.directory / f"shard{self.shard_id:03d}-{seq:012d}.snap"

    def _candidates(self) -> list[Path]:
        """Snapshot files for this shard, oldest first."""
        pattern = f"shard{self.shard_id:03d}-*.snap"
        return sorted(self.directory.glob(pattern))

    def seqs(self) -> list[int]:
        """Sequence numbers on disk, oldest first."""
        return [int(p.stem.split("-", 1)[1]) for p in self._candidates()]

    def save(self, snapshot: ShardSnapshot) -> Path:
        """Write one generation and prune beyond the retention window."""
        path = self.path_for(snapshot.applied_through)
        write_snapshot(path, snapshot)
        for stale in self._candidates()[:-self.keep]:
            try:
                stale.unlink()
            except OSError:
                pass  # retention is best-effort; recovery skips damage
        return path

    def load_latest(self) -> tuple[ShardSnapshot, Path] | None:
        """Newest *restorable* snapshot, or None for a genesis start."""
        for path in reversed(self._candidates()):
            try:
                snapshot = read_snapshot(path)
            except SnapshotError:
                continue
            if snapshot.shard_id != self.shard_id:
                continue
            return snapshot, path
        return None

    def safe_truncation_seq(self) -> int:
        """Highest journal seq that is safe to forget.

        Replay must survive the *newest* snapshot being torn, so the
        journal may only drop entries covered by the second-newest
        generation.  With fewer than two generations on disk nothing is
        safe to drop (genesis replay needs everything).
        """
        seqs = self.seqs()
        if len(seqs) < 2:
            return -1
        return seqs[-2]
