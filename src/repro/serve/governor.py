"""Slow-consumer eviction: the region watchdog's policy at stream level.

When a stream's batches repeatedly fail to dispatch — its shard's queue
stays full past the retry budget — the supervisor must shed that stream
rather than let one slow consumer stall the fleet.  The policy is the
same graceful-degradation ladder :class:`~repro.monitor.watchdog.
RegionWatchdog` applies to regions, reused wholesale: a trip suspends
the stream for an exponentially growing backoff
(``backoff_intervals * backoff_factor**(trips-1)``, counted in shard
dispatch sequences), and exhausting ``retry_budget`` trips blacklists
it for the rest of the run.  Decisions are reported as the watchdog's
own :class:`~repro.monitor.watchdog.WatchdogEvent` records (``rid`` is
the stream's registration ordinal; the name travels in ``detail``), so
chaos experiments and logs read one uniform degradation vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.monitor.watchdog import (WatchdogAction, WatchdogConfig,
                                    WatchdogEvent)

__all__ = ["StreamGovernor"]


@dataclass
class _StreamRecord:
    ordinal: int
    trips: int = 0
    suspended_until: int | None = None
    blacklisted: bool = False


@dataclass
class StreamGovernor:
    """Per-stream dispatch-failure policy for the fleet supervisor."""

    config: WatchdogConfig = field(default_factory=WatchdogConfig)

    def __post_init__(self) -> None:
        self._records: dict[str, _StreamRecord] = {}
        self.events: list[WatchdogEvent] = []

    def _record(self, stream: str) -> _StreamRecord:
        record = self._records.get(stream)
        if record is None:
            record = _StreamRecord(ordinal=len(self._records))
            self._records[stream] = record
        return record

    def allows(self, stream: str, seq: int) -> bool:
        """Whether *stream* may dispatch at shard sequence *seq*.

        A suspended stream is re-admitted once its backoff elapses
        (mirroring the watchdog's retry), which also emits the RETRY
        event.
        """
        record = self._records.get(stream)
        if record is None:
            return True
        if record.blacklisted:
            return False
        if record.suspended_until is None:
            return True
        if seq < record.suspended_until:
            return False
        record.suspended_until = None
        self.events.append(WatchdogEvent(
            interval_index=seq, rid=record.ordinal,
            action=WatchdogAction.RETRY, reason="backoff elapsed",
            detail=f"stream={stream}, trip {record.trips}/"
                   f"{self.config.retry_budget}"))
        return True

    def trip(self, stream: str, seq: int,
             reason: str = "slow-consumer") -> WatchdogEvent:
        """One dispatch-retry budget exhausted: suspend or blacklist."""
        record = self._record(stream)
        record.trips += 1
        if record.trips >= self.config.retry_budget:
            record.blacklisted = True
            event = WatchdogEvent(
                interval_index=seq, rid=record.ordinal,
                action=WatchdogAction.GIVE_UP, reason=reason,
                detail=f"stream={stream}, budget exhausted after "
                       f"{record.trips} trips")
        else:
            backoff = int(self.config.backoff_intervals
                          * self.config.backoff_factor
                          ** (record.trips - 1))
            record.suspended_until = seq + max(backoff, 1)
            event = WatchdogEvent(
                interval_index=seq, rid=record.ordinal,
                action=WatchdogAction.DEOPTIMIZE, reason=reason,
                detail=f"stream={stream}, trip {record.trips}/"
                       f"{self.config.retry_budget}, resume at seq "
                       f"{record.suspended_until}")
        self.events.append(event)
        return event

    def is_blacklisted(self, stream: str) -> bool:
        record = self._records.get(stream)
        return record is not None and record.blacklisted

    def summary(self) -> dict:
        """Aggregate counters (for experiment rows and logs)."""
        return {
            "governed_streams": len(self._records),
            "suspensions": sum(
                1 for e in self.events
                if e.action is WatchdogAction.DEOPTIMIZE),
            "readmissions": sum(
                1 for e in self.events
                if e.action is WatchdogAction.RETRY),
            "blacklisted": sum(1 for r in self._records.values()
                               if r.blacklisted),
        }
