"""Wire protocol between the fleet supervisor and its shard workers.

Everything crossing a queue is a small picklable dataclass.  Down the
shard's input queue go :class:`Batch` and :class:`Shutdown`; up the
output queue come :class:`WorkerStarted` (once per incarnation),
:class:`BatchAck` (once per delivered batch — *including* duplicates,
so the supervisor's outstanding-set always drains), and
:class:`SnapshotWritten` (after each persisted generation).

Delivery rules the protocol is designed around:

* shard-local ``seq`` increases by one per dispatched message, and each
  queue is FIFO, so a worker sees its input in dispatch order — except
  around recovery, where journal replay may overlap stale in-flight
  messages;
* per-stream ``stream_seq`` is the dedupe/reorder cursor: a worker
  applies a stream's batches in exact ``stream_seq`` order no matter
  how deliveries interleave, stash-parking early arrivals and dropping
  repeats (acked with an empty ``applied`` tuple).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.serve.events import EventRecord

__all__ = ["Batch", "Shutdown", "WorkerStarted", "BatchAck",
           "AppliedBatch", "SnapshotWritten", "PROTOCOL_VERSION",
           "MESSAGE_SCHEMA"]

#: Version of the supervisor/worker wire protocol.  Bump whenever a
#: message gains, loses or renames a field, together with the
#: ``MESSAGE_SCHEMA`` entry below and the declarative
#: :func:`repro.checks.protocol.serve_protocol_spec` — the
#: ``protocol-surface-drift`` rule fails the build when they disagree.
PROTOCOL_VERSION = 1


@dataclass(frozen=True)
class Batch:
    """One stream's sample batch, routed to its owning shard."""

    seq: int
    stream: str
    stream_seq: int
    samples: np.ndarray


@dataclass(frozen=True)
class Shutdown:
    """Graceful stop: drain, optionally persist a final snapshot, exit."""

    final_snapshot: bool = True


@dataclass(frozen=True)
class WorkerStarted:
    """A worker incarnation is live and restored through *restored_seq*.

    ``restored_seq`` is -1 for a genesis start; the supervisor replays
    every journal entry after it.
    """

    shard: int
    restored_seq: int
    lanes: tuple[str, ...] = ()


@dataclass(frozen=True)
class AppliedBatch:
    """One batch actually fed to the session, with its event delta."""

    stream: str
    stream_seq: int
    events: tuple[EventRecord, ...]
    intervals: int


@dataclass(frozen=True)
class BatchAck:
    """Receipt for one delivered :class:`Batch` message.

    ``applied`` may be empty (duplicate, or parked out-of-order batch)
    or hold several entries (the arrival that filled a gap drains the
    stash behind it).
    """

    shard: int
    seq: int
    applied: tuple[AppliedBatch, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class SnapshotWritten:
    """A snapshot generation covering *seq* reached durable storage."""

    shard: int
    seq: int
    path: str
    n_bytes: int


#: The wire schema, one field tuple per message, in declaration order.
#: Receivers (and the ``protocol-surface-drift`` audit) validate
#: against this registry rather than live dataclass introspection, so
#: an accidental field change breaks loudly instead of silently
#: un-pickling into stale consumers.
MESSAGE_SCHEMA: dict[str, tuple[str, ...]] = {
    "Batch": ("seq", "stream", "stream_seq", "samples"),
    "Shutdown": ("final_snapshot",),
    "WorkerStarted": ("shard", "restored_seq", "lanes"),
    "AppliedBatch": ("stream", "stream_seq", "events", "intervals"),
    "BatchAck": ("shard", "seq", "applied"),
    "SnapshotWritten": ("shard", "seq", "path", "n_bytes"),
}
