"""Supervisor-side sample journal: the replay source for recovery.

Every batch dispatched to a shard is appended here *before* it is
enqueued, keyed by the shard-local dispatch sequence.  When a worker
dies, the supervisor respawns it, learns the sequence its restored
snapshot covers (``WorkerStarted.restored_seq``) and replays every
journal entry after it — the worker's per-stream dedupe cursors make
the overlap with any stale in-flight messages harmless.

Entries are dropped only once they are covered by the shard's
*second-newest* snapshot (:meth:`SnapshotStore.safe_truncation_seq`),
so recovery still works when the newest snapshot is torn.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ServeError

__all__ = ["JournalEntry", "ShardJournal"]


@dataclass(frozen=True)
class JournalEntry:
    """One dispatched batch, exactly as the worker received it."""

    seq: int
    stream: str
    stream_seq: int
    samples: np.ndarray


class ShardJournal:
    """Ordered in-memory journal of one shard's dispatched batches."""

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self._entries: list[JournalEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def max_seq(self) -> int:
        """Highest journaled sequence (-1 when empty)."""
        return self._entries[-1].seq if self._entries else -1

    def append(self, seq: int, stream: str, stream_seq: int,
               samples: np.ndarray) -> JournalEntry:
        """Record one batch; sequences must be strictly increasing."""
        if seq <= self.max_seq:
            raise ServeError(
                f"journal for shard {self.shard_id} got seq {seq} after "
                f"{self.max_seq}; dispatch sequences must increase")
        entry = JournalEntry(seq=seq, stream=stream, stream_seq=stream_seq,
                             samples=np.array(samples, dtype=np.int64))
        self._entries.append(entry)
        return entry

    def entries_after(self, seq: int) -> list[JournalEntry]:
        """Every retained entry with a sequence greater than *seq*."""
        return [entry for entry in self._entries if entry.seq > seq]

    def truncate_through(self, seq: int) -> int:
        """Drop entries with sequence <= *seq*; returns how many."""
        kept = [entry for entry in self._entries if entry.seq > seq]
        dropped = len(self._entries) - len(kept)
        self._entries = kept
        return dropped
