"""Canonical per-stream event records and incremental extraction.

The serving layer's correctness claim is a *differential* one: the
per-stream event sequence assembled from sharded workers (with crashes,
replays, duplicated and reordered deliveries in between) must equal the
sequence a clean single-process :class:`~repro.batch.session.BatchSession`
produces.  That needs a single canonical, comparable event
representation and an extraction that *composes*: reading a lane's
events incrementally — after each applied batch, across snapshot/restore
boundaries — must concatenate to exactly what one full-run extraction
yields.

:class:`EventRecord` flattens the three per-lane event feeds (global
detector phase changes, per-region local phase changes from interval
reports, watchdog actions) into one frozen, hashable record.  Within the
intervals an extraction covers, records are ordered by interval index
with the detector class as tie-break (gpd, then lpd, then watchdog) —
each feed is already interval-ordered and successive extractions cover
disjoint interval ranges, so the stable merge composes.

:class:`EventCursor` marks how far each feed has been read; it is part
of the shard snapshot (:data:`~repro.serve.snapshot.SNAPSHOT_FIELDS`),
which is what makes a replayed batch re-emit exactly its original event
delta.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.batch.session import BatchLane

__all__ = ["EventRecord", "EventCursor", "extract_lane_events"]

#: Tie-break rank of the three event feeds within one interval.
_FEED_RANK = {"gpd": 0, "lpd": 1, "watchdog": 2}


@dataclass(frozen=True)
class EventRecord:
    """One detector-visible event, canonicalized for comparison."""

    interval_index: int
    detector: str  # "gpd" | "lpd" | "watchdog"
    rid: int       # -1 for the (regionless) global detector
    kind: str
    state_from: str = ""
    state_to: str = ""
    detail: str = ""


@dataclass(frozen=True)
class EventCursor:
    """How much of a lane's event feeds has already been extracted."""

    n_gpd: int = 0
    n_reports: int = 0
    n_watchdog: int = 0


def _merge(records: list[tuple[int, int, int, EventRecord]]
           ) -> tuple[EventRecord, ...]:
    records.sort(key=lambda item: item[:3])
    return tuple(item[3] for item in records)


def extract_lane_events(lane: BatchLane, cursor: EventCursor = EventCursor()
                        ) -> tuple[tuple[EventRecord, ...], EventCursor]:
    """New events on *lane* past *cursor*; returns them plus the new cursor.

    *lane* is a :class:`~repro.batch.session.BatchLane` (duck-typed: a
    scalar :class:`~repro.monitor.online.OnlineSession` exposing
    ``gpd``/``reports``/``watchdog`` works too, which is how the
    conformance tests cross-check the extraction itself).
    """
    keyed: list[tuple[int, int, int, EventRecord]] = []
    gpd = getattr(lane, "gpd", None)
    n_gpd = cursor.n_gpd
    if gpd is not None:
        events = gpd.events
        for order, event in enumerate(events[cursor.n_gpd:]):
            keyed.append((event.interval_index, _FEED_RANK["gpd"], order,
                          EventRecord(
                              interval_index=event.interval_index,
                              detector="gpd", rid=-1,
                              kind=event.kind.value,
                              state_from=event.state_from.name,
                              state_to=event.state_to.name,
                              detail=event.detail)))
        n_gpd = len(events)
    reports = getattr(lane, "reports", None) or []
    order = 0
    for report in reports[cursor.n_reports:]:
        for rid, event in report.events:
            keyed.append((event.interval_index, _FEED_RANK["lpd"], order,
                          EventRecord(
                              interval_index=event.interval_index,
                              detector="lpd", rid=rid,
                              kind=event.kind.value,
                              state_from=event.state_from.name,
                              state_to=event.state_to.name,
                              detail=event.detail)))
            order += 1
    n_reports = len(reports)
    watchdog_events = getattr(lane, "watchdog_events", None)
    if watchdog_events is None:  # scalar session: the watchdog keeps them
        watchdog = getattr(lane, "watchdog", None)
        watchdog_events = watchdog.events if watchdog is not None else []
    for order, event in enumerate(watchdog_events[cursor.n_watchdog:]):
        keyed.append((event.interval_index, _FEED_RANK["watchdog"], order,
                      EventRecord(
                          interval_index=event.interval_index,
                          detector="watchdog", rid=event.rid,
                          kind=event.action.value,
                          detail=f"{event.reason}: {event.detail}")))
    return _merge(keyed), EventCursor(
        n_gpd=n_gpd, n_reports=n_reports,
        n_watchdog=len(watchdog_events))
