"""Crash-tolerant sharded fleet serving for ``BatchSession``.

The serving layer turns the vectorized batch backend into a
long-running multi-tenant service: streams are consistent-hashed onto
shard worker processes (:mod:`repro.serve.hashing`,
:mod:`repro.serve.worker`), batches flow through bounded queues under a
supervisor that journals, retries, evicts slow consumers and respawns
dead workers from versioned snapshots
(:mod:`repro.serve.supervisor`, :mod:`repro.serve.snapshot`,
:mod:`repro.serve.journal`).

The correctness bar is PR 5's trusted-oracle rule, one level up: a
sharded run — including runs with injected worker crashes, torn
snapshot writes, duplicated and reordered deliveries
(:mod:`repro.faults.service`) — must produce per-stream event sequences
bit-identical to a clean single-process
:class:`~repro.batch.session.BatchSession` (``tests/serve/`` and the
``chaos`` experiment hold the layer to this).
"""

from repro.serve.config import ServeConfig
from repro.serve.events import EventCursor, EventRecord, extract_lane_events
from repro.serve.governor import StreamGovernor
from repro.serve.hashing import HashRing
from repro.serve.journal import JournalEntry, ShardJournal
from repro.serve.messages import (AppliedBatch, Batch, BatchAck, Shutdown,
                                  SnapshotWritten, WorkerStarted)
from repro.serve.snapshot import (SNAPSHOT_FIELDS, SNAPSHOT_MAGIC,
                                  SNAPSHOT_VERSION, ShardSnapshot,
                                  SnapshotStore, decode_snapshot,
                                  encode_snapshot, read_snapshot,
                                  write_snapshot)
from repro.serve.supervisor import FleetSupervisor
from repro.serve.worker import (CRASH_EXIT_CODE, ShardWorker,
                                build_shard_session, worker_main)

__all__ = [
    "ServeConfig",
    "FleetSupervisor",
    "ShardWorker",
    "worker_main",
    "build_shard_session",
    "CRASH_EXIT_CODE",
    "HashRing",
    "StreamGovernor",
    "ShardJournal",
    "JournalEntry",
    "ShardSnapshot",
    "SnapshotStore",
    "SNAPSHOT_FIELDS",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "encode_snapshot",
    "decode_snapshot",
    "read_snapshot",
    "write_snapshot",
    "EventRecord",
    "EventCursor",
    "extract_lane_events",
    "Batch",
    "BatchAck",
    "AppliedBatch",
    "Shutdown",
    "WorkerStarted",
    "SnapshotWritten",
]
