"""Unmonitored Code Region (UCR) accounting.

All samples that fall in no monitored region are attributed "to a single
unmonitored region, which we call the unmonitored code region (UCR)"
(paper section 3.1).  The tracker records the per-interval UCR fraction,
answers the trigger test against the threshold (30% in the paper's study,
Figure 6), and produces the statistics Figures 6 and 7 plot.
"""

from __future__ import annotations

import statistics

from repro.core.thresholds import DEFAULT_UCR_THRESHOLD


class UcrTracker:
    """Per-interval UCR fraction history with trigger bookkeeping."""

    def __init__(self, threshold: float = DEFAULT_UCR_THRESHOLD) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError("UCR threshold must lie in (0, 1)")
        self.threshold = threshold
        self._history: list[float] = []
        self._triggers: list[int] = []

    def record(self, fraction: float, interval_index: int) -> bool:
        """Record one interval's UCR fraction; returns whether the fraction
        exceeds the formation threshold."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"UCR fraction {fraction} outside [0, 1]")
        self._history.append(fraction)
        should_trigger = fraction > self.threshold
        if should_trigger:
            self._triggers.append(interval_index)
        return should_trigger

    @property
    def history(self) -> list[float]:
        """Per-interval UCR fractions (Figure 7's time series)."""
        return list(self._history)

    @property
    def trigger_intervals(self) -> list[int]:
        """Interval indices at which formation was triggered."""
        return list(self._triggers)

    @property
    def n_triggers(self) -> int:
        """Total formation triggers so far."""
        return len(self._triggers)

    def median(self) -> float:
        """Median UCR fraction over the run (Figure 6's statistic)."""
        if not self._history:
            return 0.0
        return float(statistics.median(self._history))

    def mean(self) -> float:
        """Mean UCR fraction over the run."""
        if not self._history:
            return 0.0
        return float(statistics.fmean(self._history))
