"""Region layer: monitored regions, attribution, formation, pruning."""

from repro.regions.annotations import Annotation, AnnotationTable
from repro.regions.attribution import (AttributionResult, ListAttributor,
                                       TreeAttributor, make_attributor)
from repro.regions.formation import FormationOutcome, RegionFormation
from repro.regions.interval_tree import Interval, IntervalTree
from repro.regions.pruning import PruningPolicy, RegionActivity
from repro.regions.region import Region, RegionKind
from repro.regions.registry import RegionRegistry
from repro.regions.trace_builder import Trace, block_hotness, build_trace
from repro.regions.ucr import UcrTracker

__all__ = [
    "Annotation",
    "AnnotationTable",
    "AttributionResult",
    "ListAttributor",
    "TreeAttributor",
    "make_attributor",
    "FormationOutcome",
    "RegionFormation",
    "Interval",
    "IntervalTree",
    "PruningPolicy",
    "RegionActivity",
    "Region",
    "RegionKind",
    "RegionRegistry",
    "Trace",
    "block_hotness",
    "build_trace",
    "UcrTracker",
]
