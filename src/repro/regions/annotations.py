"""Compiler-provided region annotations for formation.

The paper twice points at compiler help as the way past the runtime
region builder's limits: "we also plan to use compiler annotations to
improve region formation in the future" (§3.1) and footnote 1's
compiler-annotated inter-region optimizations.  An
:class:`AnnotationTable` models the simplest useful contract: the
compiler ships, alongside the binary, a list of code spans it considers
units of optimization (outlined loops, hot inlined bodies, manually
annotated kernels).  Region formation consults the table before falling
back to its own loop/trace analysis, so hot code the runtime analysis
cannot classify still becomes a monitored region.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.core.histogram import INSTRUCTION_BYTES
from repro.errors import RegionError

__all__ = ["Annotation", "AnnotationTable"]


@dataclass(frozen=True, slots=True)
class Annotation:
    """One compiler-declared optimization unit.

    Attributes
    ----------
    start, end:
        Half-open code span.
    label:
        Compiler-side name (function/loop id), for diagnostics.
    """

    start: int
    end: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise RegionError(
                f"invalid annotation span [{self.start:#x}, {self.end:#x})")
        if (self.end - self.start) % INSTRUCTION_BYTES != 0:
            raise RegionError(
                f"annotation span [{self.start:#x}, {self.end:#x}) is not "
                f"instruction-aligned")

    def contains(self, address: int) -> bool:
        """Whether *address* lies inside the annotated span."""
        return self.start <= address < self.end


class AnnotationTable:
    """Sorted, non-overlapping compiler annotations with point lookup."""

    def __init__(self, annotations: list[Annotation] | None = None) -> None:
        self._annotations = sorted(annotations or [],
                                   key=lambda a: a.start)
        for left, right in zip(self._annotations, self._annotations[1:]):
            if left.end > right.start:
                raise RegionError(
                    f"annotations {left.label or hex(left.start)!r} and "
                    f"{right.label or hex(right.start)!r} overlap")
        self._starts = [a.start for a in self._annotations]

    @classmethod
    def from_spans(cls, spans: list[tuple]) -> "AnnotationTable":
        """Build from ``(start, end[, label])`` tuples."""
        return cls([Annotation(*span) for span in spans])

    def __len__(self) -> int:
        return len(self._annotations)

    def __iter__(self):
        return iter(self._annotations)

    def lookup(self, address: int) -> Annotation | None:
        """The annotation covering *address*, or ``None``."""
        index = bisect.bisect_right(self._starts, address) - 1
        if index < 0:
            return None
        candidate = self._annotations[index]
        return candidate if candidate.contains(address) else None
