"""Monitored code regions.

A region is the unit of optimization and of local phase detection: an
address interval (primarily a loop span) with an identity.  The paper names
regions by their address range (e.g. ``146f0-14770``); we do the same.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.histogram import INSTRUCTION_BYTES
from repro.errors import RegionError


class RegionKind(enum.Enum):
    """How a region came to be monitored."""

    LOOP = "loop"                    # natural loop found by formation
    INTERPROCEDURAL = "interproc"    # callee folded in by the extension
    TRACE = "trace"                  # hot-path trace (future-work builder)
    ANNOTATED = "annotated"          # compiler-declared optimization unit
    MANUAL = "manual"                # registered directly by the caller


@dataclass(frozen=True, slots=True)
class Region:
    """A monitored address interval.

    Attributes
    ----------
    rid:
        Registry-unique integer id.
    start, end:
        Half-open byte address span.
    kind:
        Provenance of the region.
    formed_at_interval:
        Interval index at which formation created it (-1 = pre-registered).
    """

    rid: int
    start: int
    end: int
    kind: RegionKind = RegionKind.LOOP
    formed_at_interval: int = -1

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise RegionError(
                f"invalid region span [{self.start:#x}, {self.end:#x})")
        if (self.end - self.start) % INSTRUCTION_BYTES != 0:
            raise RegionError(
                f"region span [{self.start:#x}, {self.end:#x}) is not "
                f"instruction-aligned")

    @property
    def name(self) -> str:
        """Paper-style name: the hex address range."""
        return f"{self.start:x}-{self.end:x}"

    @property
    def n_instructions(self) -> int:
        """Region size in instruction slots."""
        return (self.end - self.start) // INSTRUCTION_BYTES

    def contains(self, address: int) -> bool:
        """Whether *address* lies inside the region."""
        return self.start <= address < self.end

    def overlaps(self, other: "Region") -> bool:
        """Whether the two regions share any address."""
        return self.start < other.end and other.start < self.end
