"""Hot-path trace selection for region formation.

The paper's region builder handles loops and notes "In the future,
regions can also include functions or traces."  This module implements
NET-style trace selection (as in Dynamo [2] / DynamoRIO [3], the systems
the paper's related work credits with trace-based code coverage): starting
from a hot seed block, repeatedly follow the *hottest* successor —
hotness measured by the PC samples that triggered formation — until the
path revisits a block, runs cold, or hits the size cap.

The selected trace's covering address span becomes a monitored region
(kind :attr:`~repro.regions.region.RegionKind.TRACE`), giving the monitor
coverage of hot non-loop code (e.g. branchy procedure bodies) that the
loop-only builder leaves in the UCR.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.histogram import INSTRUCTION_BYTES
from repro.program.procedures import Procedure

__all__ = ["Trace", "block_hotness", "build_trace"]


@dataclass(frozen=True)
class Trace:
    """A selected hot path through one procedure.

    Attributes
    ----------
    blocks:
        Start addresses of the trace's blocks, in path order.
    start, end:
        Covering half-open address span (the monitored region).
    heat:
        Total samples over the trace's blocks.
    """

    blocks: tuple[int, ...]
    start: int
    end: int
    heat: int

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def n_instructions(self) -> int:
        return (self.end - self.start) // INSTRUCTION_BYTES


def block_hotness(procedure: Procedure,
                  pcs: np.ndarray) -> dict[int, int]:
    """Sample count per basic block of *procedure* for a PC batch.

    Samples outside the procedure are ignored.
    """
    pcs = np.asarray(pcs, dtype=np.int64)
    inside = pcs[(pcs >= procedure.start) & (pcs < procedure.end)]
    hotness: dict[int, int] = {}
    if inside.size == 0:
        return hotness
    blocks = procedure.blocks
    starts = np.array([block.start for block in blocks], dtype=np.int64)
    # Blocks tile the procedure contiguously, so searchsorted maps each
    # PC to its block.
    indices = np.searchsorted(starts, inside, side="right") - 1
    for index, count in zip(*np.unique(indices, return_counts=True)):
        hotness[int(starts[index])] = int(count)
    return hotness


def build_trace(procedure: Procedure, hotness: dict[int, int],
                seed_address: int, max_blocks: int = 16,
                min_heat_ratio: float = 0.05) -> Trace | None:
    """Grow a hot trace from the block containing *seed_address*.

    Parameters
    ----------
    procedure:
        The procedure to trace within (traces never cross procedures —
        the same boundary the paper's loop builder respects).
    hotness:
        Per-block sample counts (from :func:`block_hotness`).
    seed_address:
        The hot address formation is trying to cover.
    max_blocks:
        Trace length cap.
    min_heat_ratio:
        Stop when the hottest successor's samples fall below this
        fraction of the seed block's.

    Returns ``None`` when the seed lies outside the procedure.
    """
    seed_block = procedure.cfg.block_containing(seed_address)
    if seed_block is None:
        return None
    seed_heat = max(hotness.get(seed_block.start, 0), 1)
    path = [seed_block.start]
    visited = {seed_block.start}
    current = seed_block.start
    while len(path) < max_blocks:
        successors = procedure.cfg.successors(current)
        candidates = [(hotness.get(succ, 0), succ) for succ in successors
                      if succ not in visited]
        if not candidates:
            break
        heat, hottest = max(candidates)
        if heat < min_heat_ratio * seed_heat:
            break
        path.append(hottest)
        visited.add(hottest)
        current = hottest
    start = min(procedure.cfg.block(b).start for b in path)
    end = max(procedure.cfg.block(b).end for b in path)
    total_heat = sum(hotness.get(b, 0) for b in path)
    return Trace(blocks=tuple(path), start=start, end=end,
                 heat=total_heat)
