"""A centered interval tree for sample-to-region attribution.

The paper (section 3.2.3, citing CLRS [18]) proposes replacing the linear
region-list scan with an interval tree, cutting per-sample attribution cost
from ``O(n)`` to ``O(log n + k)`` where ``n`` is the number of monitored
regions and ``k`` the number of regions containing the sample.

This is the classic *centered* interval tree: each node stores a center
point, the intervals containing that center (sorted by start and by end),
and subtrees for the intervals entirely to the left and right.  A
stabbing query walks one root-to-leaf path, scanning only the node lists
that can match.  Regions change rarely (formation events), so the tree is
rebuilt on change rather than rebalanced incrementally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["IntervalTree", "Interval"]


@dataclass(frozen=True, slots=True)
class Interval:
    """A half-open interval ``[start, end)`` carrying a payload id."""

    start: int
    end: int
    payload: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"interval [{self.start}, {self.end}) is empty")

    def contains(self, point: int) -> bool:
        return self.start <= point < self.end


class _Node:
    __slots__ = ("center", "by_start", "by_end", "left", "right")

    def __init__(self, center: int, overlapping: list[Interval],
                 left: "_Node | None", right: "_Node | None") -> None:
        self.center = center
        self.by_start = sorted(overlapping, key=lambda iv: iv.start)
        self.by_end = sorted(overlapping, key=lambda iv: iv.end,
                             reverse=True)
        self.left = left
        self.right = right


def _build(intervals: list[Interval]) -> _Node | None:
    if not intervals:
        return None
    points = sorted({iv.start for iv in intervals}
                    | {iv.end - 1 for iv in intervals})
    center = points[len(points) // 2]
    here: list[Interval] = []
    lefts: list[Interval] = []
    rights: list[Interval] = []
    for iv in intervals:
        if iv.end <= center:
            lefts.append(iv)
        elif iv.start > center:
            rights.append(iv)
        else:
            here.append(iv)
    return _Node(center, here, _build(lefts), _build(rights))


class IntervalTree:
    """Immutable stabbing-query structure over half-open intervals.

    Parameters
    ----------
    intervals:
        ``(start, end, payload)`` triples or :class:`Interval` records.
    """

    def __init__(self, intervals: Sequence[Interval | tuple]) -> None:
        resolved = [iv if isinstance(iv, Interval) else Interval(*iv)
                    for iv in intervals]
        self._intervals = resolved
        self._root = _build(list(resolved))
        self._boundaries: np.ndarray | None = None
        self._segment_stabs: dict[int, tuple[list[int], int]] = {}
        #: Comparisons performed by the most recent query (cost probe).
        self.last_query_cost = 0

    def __len__(self) -> int:
        return len(self._intervals)

    @property
    def intervals(self) -> list[Interval]:
        """The stored intervals (construction order)."""
        return list(self._intervals)

    def stab(self, point: int) -> list[int]:
        """Payloads of every interval containing *point*.

        Results are sorted for determinism.  ``last_query_cost`` records
        the number of node-list comparisons the query performed, which the
        cost model uses as the tree's per-sample work.
        """
        hits: list[int] = []
        cost = 0
        node = self._root
        while node is not None:
            cost += 1
            if point < node.center:
                # Only intervals starting at or before the point can match.
                for iv in node.by_start:
                    cost += 1
                    if iv.start > point:
                        break
                    if iv.contains(point):
                        hits.append(iv.payload)
                node = node.left
            elif point > node.center:
                # Only intervals ending after the point can match.
                for iv in node.by_end:
                    cost += 1
                    if iv.end <= point:
                        break
                    if iv.contains(point):
                        hits.append(iv.payload)
                node = node.right
            else:
                for iv in node.by_start:
                    cost += 1
                    hits.append(iv.payload)
                break
        self.last_query_cost = cost
        hits.sort()
        return hits

    def stab_boundaries(self) -> np.ndarray:
        """Cut points between which stab results and costs are constant.

        Every branch :meth:`stab` takes is an integer comparison against a
        node center or an interval endpoint, so both the stab *result* and
        the stab *cost* are piecewise constant in the query point, with
        pieces delimited by the sorted cut set
        ``{center, center + 1, start, end}``.  Segment ``i`` covers points
        ``p`` with ``boundaries[i-1] <= p < boundaries[i]`` (segment 0 is
        everything below ``boundaries[0]``); map query points to segments
        with ``np.searchsorted(boundaries, points, side="right")``.
        """
        if self._boundaries is None:
            cuts: set[int] = set()
            stack = [self._root]
            while stack:
                node = stack.pop()
                if node is None:
                    continue
                cuts.add(node.center)
                cuts.add(node.center + 1)
                stack.append(node.left)
                stack.append(node.right)
            for iv in self._intervals:
                cuts.add(iv.start)
                cuts.add(iv.end)
            self._boundaries = np.array(sorted(cuts), dtype=np.int64)
        return self._boundaries

    def segment_stab(self, segment: int) -> tuple[list[int], int]:
        """``(payloads, query_cost)`` shared by every point of a segment.

        Evaluated by stabbing one representative point and memoized (the
        tree is immutable), so repeated batch queries pay for each distinct
        segment once regardless of how many points land in it.
        """
        cached = self._segment_stabs.get(segment)
        if cached is None:
            boundaries = self.stab_boundaries()
            representative = (int(boundaries[segment - 1]) if segment > 0
                              else int(boundaries[0]) - 1
                              if boundaries.size else 0)
            hits = self.stab(representative)
            cached = (hits, self.last_query_cost)
            self._segment_stabs[segment] = cached
        return cached

    def stab_naive(self, point: int) -> list[int]:
        """Linear-scan oracle used by the tests and the list cost model."""
        return sorted(iv.payload for iv in self._intervals
                      if iv.contains(point))
