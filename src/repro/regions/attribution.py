"""Sample-to-region attribution strategies.

On every buffer overflow "performance counter samples are distributed
across regions" (paper section 3.1), incrementing per-instruction counters
in *every* region containing each sample (overlapping regions all count —
that is why the paper's region charts stack above the buffer size).
Samples contained in no region belong to the unmonitored code region (UCR).

Two strategies, matching the paper's section 3.2.3:

* :class:`ListAttributor` — scan the region list per sample, ``O(n)``;
* :class:`TreeAttributor` — stab a centered interval tree per sample,
  ``O(log n + k)``, rebuilt whenever the region set changes.

Both produce identical results; they differ only in the work they charge
to the :class:`~repro.costs.CostLedger`.  Functionally the hot loop is
vectorized over the interval's samples (grouped by unique PC — sampled PCs
repeat heavily because hot instructions are hot), while the charged cost
follows each strategy's per-sample model, which is what Figures 15 and 16
measure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.histogram import INSTRUCTION_BYTES
from repro.costs import (LIST_OPS_PER_CHECK, TREE_QUERY_BASE_OPS,
                         CostLedger)
from repro.regions.interval_tree import Interval, IntervalTree
from repro.regions.registry import RegionRegistry

__all__ = ["AttributionResult", "ListAttributor", "TreeAttributor",
           "make_attributor"]


@dataclass(frozen=True)
class AttributionResult:
    """Outcome of distributing one interval's samples.

    Attributes
    ----------
    region_counts:
        rid -> per-instruction-slot count vector, for regions that
        received at least one sample.
    ucr_pcs:
        The PC values (with multiplicity) that fell in no region.
    n_samples:
        Interval size.
    n_hits:
        Total region increments (>= samples attributed, because regions
        may overlap).
    """

    region_counts: dict[int, np.ndarray]
    ucr_pcs: np.ndarray
    n_samples: int
    n_hits: int

    @property
    def ucr_fraction(self) -> float:
        """Fraction of the interval's samples left unmonitored."""
        if self.n_samples == 0:
            return 0.0
        return self.ucr_pcs.size / self.n_samples

    def total_for(self, rid: int) -> int:
        """Samples attributed to one region (0 if it got none)."""
        counts = self.region_counts.get(rid)
        return 0 if counts is None else int(counts.sum())


class _AttributorBase:
    """Shared machinery: unique-PC grouping and histogram scatter."""

    def __init__(self, registry: RegionRegistry,
                 ledger: CostLedger | None = None) -> None:
        self.registry = registry
        self.ledger = ledger if ledger is not None else CostLedger()

    def _resolve(self, unique_pcs: np.ndarray) -> list[list[int]]:
        """Per unique PC, the rids of the regions containing it.

        Subclasses implement this with their strategy and charge costs.
        """
        raise NotImplementedError

    def attribute(self, pcs: np.ndarray) -> AttributionResult:
        """Distribute one interval's samples across the live regions."""
        pcs = np.asarray(pcs, dtype=np.int64)
        regions = {r.rid: r for r in self.registry.regions()}
        unique_pcs, counts = np.unique(pcs, return_counts=True)
        hits_per_pc = self._resolve(unique_pcs)

        region_counts: dict[int, np.ndarray] = {}
        ucr_mask = np.zeros(unique_pcs.size, dtype=bool)
        n_hits = 0
        for index, rids in enumerate(hits_per_pc):
            if not rids:
                ucr_mask[index] = True
                continue
            pc = int(unique_pcs[index])
            multiplicity = int(counts[index])
            n_hits += multiplicity * len(rids)
            for rid in rids:
                region = regions[rid]
                vector = region_counts.get(rid)
                if vector is None:
                    vector = np.zeros(region.n_instructions, dtype=np.int64)
                    region_counts[rid] = vector
                slot = (pc - region.start) // INSTRUCTION_BYTES
                vector[slot] += multiplicity
        ucr_pcs = np.repeat(unique_pcs[ucr_mask], counts[ucr_mask])
        return AttributionResult(region_counts=region_counts,
                                 ucr_pcs=ucr_pcs,
                                 n_samples=int(pcs.size),
                                 n_hits=n_hits)


class ListAttributor(_AttributorBase):
    """Linear region-list scan: per-sample cost ``O(n_regions)``."""

    name = "list"

    def _resolve(self, unique_pcs: np.ndarray) -> list[list[int]]:
        regions = self.registry.regions()
        results: list[list[int]] = []
        for pc in unique_pcs:
            pc = int(pc)
            results.append([r.rid for r in regions if r.contains(pc)])
        return results

    def attribute(self, pcs: np.ndarray) -> AttributionResult:
        result = super().attribute(pcs)
        self.ledger.charge_list_attribution(
            n_samples=result.n_samples,
            n_regions=len(self.registry),
            n_hits=result.n_hits)
        return result


class TreeAttributor(_AttributorBase):
    """Interval-tree stabbing: per-sample cost ``O(log n + k)``.

    The tree is rebuilt lazily whenever the registry version changes
    (formation or pruning events); rebuild cost is charged to the ledger.
    """

    name = "tree"

    def __init__(self, registry: RegionRegistry,
                 ledger: CostLedger | None = None) -> None:
        super().__init__(registry, ledger)
        self._tree: IntervalTree | None = None
        self._tree_version = -1

    def _current_tree(self) -> IntervalTree:
        if self._tree is None or self._tree_version != self.registry.version:
            intervals = [Interval(r.start, r.end, r.rid)
                         for r in self.registry.regions()]
            self._tree = IntervalTree(intervals)
            self._tree_version = self.registry.version
            self.ledger.charge_tree_build(len(intervals))
        return self._tree

    def _resolve(self, unique_pcs: np.ndarray) -> list[list[int]]:
        tree = self._current_tree()
        self._pending_query_ops = 0
        self._per_pc_cost: list[int] = []
        results: list[list[int]] = []
        for pc in unique_pcs:
            results.append(tree.stab(int(pc)))
            self._per_pc_cost.append(tree.last_query_cost
                                     + TREE_QUERY_BASE_OPS)
        return results

    def attribute(self, pcs: np.ndarray) -> AttributionResult:
        pcs = np.asarray(pcs, dtype=np.int64)
        unique_pcs, counts = np.unique(pcs, return_counts=True)
        result = super().attribute(pcs)
        # Per-sample cost model: each sample pays its PC's query cost.
        query_ops = int(np.dot(np.asarray(self._per_pc_cost, dtype=np.int64),
                               counts)) if unique_pcs.size else 0
        self.ledger.charge_tree_attribution(query_ops=query_ops,
                                            n_hits=result.n_hits)
        return result


def make_attributor(strategy: str, registry: RegionRegistry,
                    ledger: CostLedger | None = None) -> _AttributorBase:
    """Factory: ``"list"`` or ``"tree"``."""
    if strategy == "list":
        return ListAttributor(registry, ledger)
    if strategy == "tree":
        return TreeAttributor(registry, ledger)
    raise ValueError(f"unknown attribution strategy {strategy!r}; "
                     f"expected 'list' or 'tree'")


def estimated_list_ops(n_samples: int, n_regions: int) -> int:
    """Closed-form list-scan cost (used by cost-model sanity tests)."""
    return n_samples * n_regions * LIST_OPS_PER_CHECK
