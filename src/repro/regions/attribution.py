"""Sample-to-region attribution strategies.

On every buffer overflow "performance counter samples are distributed
across regions" (paper section 3.1), incrementing per-instruction counters
in *every* region containing each sample (overlapping regions all count —
that is why the paper's region charts stack above the buffer size).
Samples contained in no region belong to the unmonitored code region (UCR).

Two strategies, matching the paper's section 3.2.3:

* :class:`ListAttributor` — region-list membership, charged ``O(n)`` per
  sample;
* :class:`TreeAttributor` — interval-tree stabbing, charged
  ``O(log n + k)`` per sample, rebuilt whenever the region set changes.

Both produce identical results; they differ only in the work they charge
to the :class:`~repro.costs.CostLedger`.  Functionally both hot paths are
fully batched: the interval's samples are grouped by unique PC (sampled
PCs repeat heavily because hot instructions are hot), membership is
resolved for the whole unique-PC vector at once (boolean interval masks
for the list scheme, a ``np.searchsorted`` segment lookup over the tree's
piecewise-constant stab table for the tree scheme), and the per-region
histograms are assembled with ``np.bincount``.  The *charged* cost still
follows each strategy's per-sample model — for the tree, the exact
node-list comparison count a scalar stab would have measured — which is
what Figures 15 and 16 measure.

The pre-vectorization per-PC reference implementations are kept as
:class:`ScalarListAttributor` / :class:`ScalarTreeAttributor`
(``"list-scalar"`` / ``"tree-scalar"``): they are the oracle the property
tests compare the batched paths against, byte for byte, and the baseline
the benchmark suite measures speedups over.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.histogram import INSTRUCTION_BYTES
from repro.costs import (LIST_OPS_PER_CHECK, TREE_QUERY_BASE_OPS,
                         CostLedger)
from repro.regions.interval_tree import Interval, IntervalTree
from repro.regions.registry import RegionRegistry

__all__ = ["AttributionResult", "ListAttributor", "TreeAttributor",
           "ScalarListAttributor", "ScalarTreeAttributor",
           "make_attributor"]


@dataclass(frozen=True)
class AttributionResult:
    """Outcome of distributing one interval's samples.

    Attributes
    ----------
    region_counts:
        rid -> per-instruction-slot count vector, for regions that
        received at least one sample.
    ucr_pcs:
        The PC values (with multiplicity) that fell in no region.
    n_samples:
        Interval size.
    n_hits:
        Total region increments (>= samples attributed, because regions
        may overlap).
    """

    region_counts: dict[int, np.ndarray]
    ucr_pcs: np.ndarray
    n_samples: int
    n_hits: int
    #: rid -> total samples attributed, precomputed during assembly so the
    #: monitor's per-region loop never re-sums count vectors.
    region_totals: dict[int, int] = field(default_factory=dict)

    @property
    def ucr_fraction(self) -> float:
        """Fraction of the interval's samples left unmonitored."""
        if self.n_samples == 0:
            return 0.0
        return self.ucr_pcs.size / self.n_samples

    def total_for(self, rid: int) -> int:
        """Samples attributed to one region (0 if it got none)."""
        total = self.region_totals.get(rid)
        if total is not None:
            return total
        counts = self.region_counts.get(rid)
        return 0 if counts is None else int(counts.sum())


class _AttributorBase:
    """Shared machinery: unique-PC grouping and batched histogram assembly.

    Subclasses implement :meth:`_resolve_batch` (membership for the whole
    unique-PC vector at once) and :meth:`_charge` (their cost model); the
    base class owns the strategy-independent assembly of
    :class:`AttributionResult`.
    """

    def __init__(self, registry: RegionRegistry,
                 ledger: CostLedger | None = None) -> None:
        self.registry = registry
        self.ledger = ledger if ledger is not None else CostLedger()

    def _resolve_batch(self, unique_pcs: np.ndarray) -> dict[int, np.ndarray]:
        """rid -> index array (into ``unique_pcs``) of contained PCs.

        Regions containing no PC may be omitted.  Subclasses implement
        this with their strategy; cost is charged in :meth:`_charge`.
        """
        raise NotImplementedError

    def _charge(self, result: AttributionResult, unique_pcs: np.ndarray,
                counts: np.ndarray) -> None:
        """Charge this interval's modeled work to the ledger."""
        raise NotImplementedError

    def attribute(self, pcs: np.ndarray) -> AttributionResult:
        """Distribute one interval's samples across the live regions."""
        pcs = np.asarray(pcs, dtype=np.int64)
        unique_pcs, counts = np.unique(pcs, return_counts=True)
        hits_by_rid = self._resolve_batch(unique_pcs)

        region_counts: dict[int, np.ndarray] = {}
        region_totals: dict[int, int] = {}
        covered = np.zeros(unique_pcs.size, dtype=bool)
        n_hits = 0
        for rid in sorted(hits_by_rid):
            index = hits_by_rid[rid]
            if index.size == 0:
                continue
            region = self.registry.get(rid)
            covered[index] = True
            multiplicity = counts[index]
            total = int(multiplicity.sum())
            n_hits += total
            slots = (unique_pcs[index] - region.start) // INSTRUCTION_BYTES
            region_counts[rid] = np.bincount(
                slots, weights=multiplicity,
                minlength=region.n_instructions).astype(np.int64)
            region_totals[rid] = total
        ucr_pcs = np.repeat(unique_pcs[~covered], counts[~covered])
        result = AttributionResult(region_counts=region_counts,
                                   ucr_pcs=ucr_pcs,
                                   n_samples=int(pcs.size),
                                   n_hits=n_hits,
                                   region_totals=region_totals)
        self._charge(result, unique_pcs, counts)
        return result


class ListAttributor(_AttributorBase):
    """Region-list membership: per-sample charged cost ``O(n_regions)``.

    Resolution is one boolean interval mask per region over the unique-PC
    vector; the charged cost stays the scalar scan's
    ``n_samples * n_regions`` checks.
    """

    name = "list"

    def _resolve_batch(self, unique_pcs: np.ndarray) -> dict[int, np.ndarray]:
        return {region.rid: np.flatnonzero(
                    (unique_pcs >= region.start) & (unique_pcs < region.end))
                for region in self.registry.regions()}

    def _charge(self, result: AttributionResult, unique_pcs: np.ndarray,
                counts: np.ndarray) -> None:
        self.ledger.charge_list_attribution(
            n_samples=result.n_samples,
            n_regions=len(self.registry),
            n_hits=result.n_hits)


class TreeAttributor(_AttributorBase):
    """Interval-tree stabbing: per-sample charged cost ``O(log n + k)``.

    The tree is rebuilt lazily whenever the registry version changes
    (formation or pruning events); rebuild cost is charged to the ledger.
    Stab results and scalar stab costs are piecewise constant in the
    query point (see :meth:`IntervalTree.segments`), so the batch resolves
    every unique PC with one ``np.searchsorted`` into the segment table
    while charging exactly the operations per-PC stabbing would have
    measured.
    """

    name = "tree"

    def __init__(self, registry: RegionRegistry,
                 ledger: CostLedger | None = None) -> None:
        super().__init__(registry, ledger)
        self._tree: IntervalTree | None = None
        self._tree_version = -1
        self._per_pc_cost = np.empty(0, dtype=np.int64)

    def _current_tree(self) -> IntervalTree:
        if self._tree is None or self._tree_version != self.registry.version:
            intervals = [Interval(r.start, r.end, r.rid)
                         for r in self.registry.regions()]
            self._tree = IntervalTree(intervals)
            self._tree_version = self.registry.version
            self.ledger.charge_tree_build(len(intervals))
        return self._tree

    def _resolve_batch(self, unique_pcs: np.ndarray) -> dict[int, np.ndarray]:
        tree = self._current_tree()
        boundaries = tree.stab_boundaries()
        segment = np.searchsorted(boundaries, unique_pcs, side="right")
        # Group PCs by segment with one stable sort; each group shares one
        # memoized representative stab (result and exact scalar cost).
        order = np.argsort(segment, kind="stable")
        grouped = segment[order]
        present, first = np.unique(grouped, return_index=True)
        group_end = np.append(first[1:], grouped.size)
        cost = np.empty(unique_pcs.size, dtype=np.int64)
        hits: dict[int, list[np.ndarray]] = {}
        for i, seg in enumerate(present):
            rids, seg_cost = tree.segment_stab(int(seg))
            index = order[first[i]:group_end[i]]
            cost[index] = seg_cost
            for rid in rids:
                hits.setdefault(rid, []).append(index)
        self._per_pc_cost = cost + TREE_QUERY_BASE_OPS
        return {rid: np.concatenate(parts) for rid, parts in hits.items()}

    def _charge(self, result: AttributionResult, unique_pcs: np.ndarray,
                counts: np.ndarray) -> None:
        # Per-sample cost model: each sample pays its PC's query cost.
        query_ops = int(self._per_pc_cost @ counts) if unique_pcs.size else 0
        self.ledger.charge_tree_attribution(query_ops=query_ops,
                                            n_hits=result.n_hits)


class _ScalarAttributorBase(_AttributorBase):
    """Reference per-PC attribution (the pre-vectorization hot path).

    Kept verbatim as the equivalence oracle: the property tests assert the
    batched attributors reproduce these results — counts, UCR, hit totals
    and ledger charges — bit for bit.
    """

    def _resolve(self, unique_pcs: np.ndarray) -> list[list[int]]:
        """Per unique PC, the rids of the regions containing it."""
        raise NotImplementedError

    def attribute(self, pcs: np.ndarray) -> AttributionResult:
        pcs = np.asarray(pcs, dtype=np.int64)
        regions = {r.rid: r for r in self.registry.regions()}
        unique_pcs, counts = np.unique(pcs, return_counts=True)
        hits_per_pc = self._resolve(unique_pcs)

        region_counts: dict[int, np.ndarray] = {}
        ucr_mask = np.zeros(unique_pcs.size, dtype=bool)
        n_hits = 0
        for index, rids in enumerate(hits_per_pc):
            if not rids:
                ucr_mask[index] = True
                continue
            pc = int(unique_pcs[index])
            multiplicity = int(counts[index])
            n_hits += multiplicity * len(rids)
            for rid in rids:
                region = regions[rid]
                vector = region_counts.get(rid)
                if vector is None:
                    vector = np.zeros(region.n_instructions, dtype=np.int64)
                    region_counts[rid] = vector
                slot = (pc - region.start) // INSTRUCTION_BYTES
                vector[slot] += multiplicity
        ucr_pcs = np.repeat(unique_pcs[ucr_mask], counts[ucr_mask])
        result = AttributionResult(
            region_counts=region_counts,
            ucr_pcs=ucr_pcs,
            n_samples=int(pcs.size),
            n_hits=n_hits,
            region_totals={rid: int(vector.sum())
                           for rid, vector in region_counts.items()})
        self._charge(result, unique_pcs, counts)
        return result


class ScalarListAttributor(_ScalarAttributorBase):
    """Per-PC linear region-list scan (reference for :class:`ListAttributor`)."""

    name = "list-scalar"

    def _resolve(self, unique_pcs: np.ndarray) -> list[list[int]]:
        regions = self.registry.regions()
        return [[r.rid for r in regions if r.contains(int(pc))]
                for pc in unique_pcs]

    _charge = ListAttributor._charge


class ScalarTreeAttributor(_ScalarAttributorBase):
    """Per-PC interval-tree stabbing (reference for :class:`TreeAttributor`)."""

    name = "tree-scalar"

    _current_tree = TreeAttributor._current_tree

    def __init__(self, registry: RegionRegistry,
                 ledger: CostLedger | None = None) -> None:
        super().__init__(registry, ledger)
        self._tree: IntervalTree | None = None
        self._tree_version = -1
        self._per_pc_cost = np.empty(0, dtype=np.int64)

    def _resolve(self, unique_pcs: np.ndarray) -> list[list[int]]:
        tree = self._current_tree()
        results: list[list[int]] = []
        per_pc_cost: list[int] = []
        for pc in unique_pcs:
            results.append(tree.stab(int(pc)))
            per_pc_cost.append(tree.last_query_cost + TREE_QUERY_BASE_OPS)
        self._per_pc_cost = np.asarray(per_pc_cost, dtype=np.int64)
        return results

    _charge = TreeAttributor._charge


_STRATEGIES = {
    "list": ListAttributor,
    "tree": TreeAttributor,
    "list-scalar": ScalarListAttributor,
    "tree-scalar": ScalarTreeAttributor,
}


def make_attributor(strategy: str, registry: RegionRegistry,
                    ledger: CostLedger | None = None) -> _AttributorBase:
    """Factory: ``"list"``, ``"tree"``, or a ``"-scalar"`` reference."""
    try:
        cls = _STRATEGIES[strategy]
    except KeyError:
        known = ", ".join(sorted(_STRATEGIES))
        raise ValueError(f"unknown attribution strategy {strategy!r}; "
                         f"expected one of: {known}") from None
    return cls(registry, ledger)


def estimated_list_ops(n_samples: int, n_regions: int) -> int:
    """Closed-form list-scan cost (used by cost-model sanity tests)."""
    return n_samples * n_regions * LIST_OPS_PER_CHECK
