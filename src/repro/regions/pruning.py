"""Region pruning: evicting cold regions from the monitor.

Paper section 3.2.3 lists pruning among the ways to reduce region-
monitoring cost: "we can remove infrequently executing and relatively cold
regions from the region monitor".  The policy here evicts a region once it
has been idle (no samples) for a configurable number of consecutive
intervals, or when its share of recent samples stays below a floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RegionActivity:
    """Rolling activity statistics the monitor keeps per region."""

    rid: int
    idle_intervals: int = 0
    lifetime_samples: int = 0
    recent_shares: list[float] = field(default_factory=list)

    def record(self, n_samples: int, interval_total: int,
               window: int = 16) -> None:
        """Update with one interval's attribution outcome."""
        if n_samples > 0:
            self.idle_intervals = 0
        else:
            self.idle_intervals += 1
        self.lifetime_samples += n_samples
        share = n_samples / interval_total if interval_total else 0.0
        self.recent_shares.append(share)
        if len(self.recent_shares) > window:
            del self.recent_shares[0]


@dataclass(frozen=True, slots=True)
class PruningPolicy:
    """When to evict a region.

    Attributes
    ----------
    max_idle_intervals:
        Evict after this many consecutive intervals without samples
        (``None`` disables the idle rule).
    min_recent_share:
        Evict when the mean share over the recent window falls below this
        (``None`` disables the cold rule).
    grace_intervals:
        Never evict within this many intervals of formation, so freshly
        formed regions get a chance to accumulate samples.
    """

    max_idle_intervals: int | None = 32
    min_recent_share: float | None = None
    grace_intervals: int = 8

    def should_prune(self, activity: RegionActivity, age_intervals: int) -> bool:
        """Decide eviction for one region given its activity and age."""
        if age_intervals < self.grace_intervals:
            return False
        if self.max_idle_intervals is not None \
                and activity.idle_intervals >= self.max_idle_intervals:
            return True
        if self.min_recent_share is not None and activity.recent_shares:
            window_full = len(activity.recent_shares) >= self.grace_intervals
            mean_share = sum(activity.recent_shares) \
                / len(activity.recent_shares)
            if window_full and mean_share < self.min_recent_share:
                return True
        return False
