"""Registry of the regions currently being monitored.

Regions may overlap (an inner and an outer loop can both be monitored; the
paper notes that overlapping regions make its region charts stack above the
buffer size because a sample increments every containing region).  The
registry is versioned so attribution strategies know when to rebuild their
acceleration structures.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import RegionError
from repro.regions.region import Region, RegionKind


class RegionRegistry:
    """Mutable set of monitored regions with stable integer ids."""

    def __init__(self) -> None:
        self._regions: dict[int, Region] = {}
        self._next_rid = 0
        self._version = 0

    # -- mutation ---------------------------------------------------------

    def add(self, start: int, end: int,
            kind: RegionKind = RegionKind.LOOP,
            formed_at_interval: int = -1) -> Region:
        """Create and register a region; returns the new record.

        Registering a span identical to a live region is an error — the
        caller should have checked :meth:`covering` first.
        """
        for region in self._regions.values():
            if region.start == start and region.end == end:
                raise RegionError(
                    f"span [{start:#x}, {end:#x}) is already monitored "
                    f"as {region.name}")
        region = Region(rid=self._next_rid, start=start, end=end, kind=kind,
                        formed_at_interval=formed_at_interval)
        self._regions[region.rid] = region
        self._next_rid += 1
        self._version += 1
        return region

    def remove(self, rid: int) -> Region:
        """Unregister a region (pruning); returns the removed record."""
        try:
            region = self._regions.pop(rid)
        except KeyError:
            raise RegionError(f"no region with id {rid}") from None
        self._version += 1
        return region

    def reinsert(self, region: Region) -> Region:
        """Re-register a previously removed region, keeping its id.

        Used by the watchdog's quarantine/release cycle: a quarantined
        region keeps its identity (detector, statistics) across the
        excursion through the UCR.
        """
        if region.rid in self._regions:
            raise RegionError(f"region id {region.rid} is already live")
        if self.has_span(region.start, region.end):
            raise RegionError(
                f"span [{region.start:#x}, {region.end:#x}) is already "
                f"monitored")
        self._regions[region.rid] = region
        self._next_rid = max(self._next_rid, region.rid + 1)
        self._version += 1
        return region

    # -- queries ------------------------------------------------------------

    @property
    def version(self) -> int:
        """Counter bumped on every add/remove."""
        return self._version

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self) -> Iterator[Region]:
        return iter(sorted(self._regions.values(), key=lambda r: r.rid))

    def __contains__(self, rid: int) -> bool:
        return rid in self._regions

    def get(self, rid: int) -> Region:
        """Region record by id."""
        try:
            return self._regions[rid]
        except KeyError:
            raise RegionError(f"no region with id {rid}") from None

    def regions(self) -> list[Region]:
        """All live regions, ordered by id (formation order)."""
        return sorted(self._regions.values(), key=lambda r: r.rid)

    def covering(self, address: int) -> list[Region]:
        """All live regions containing *address* (linear scan)."""
        return [r for r in self.regions() if r.contains(address)]

    def has_span(self, start: int, end: int) -> bool:
        """Whether the exact span is already monitored."""
        return any(r.start == start and r.end == end
                   for r in self._regions.values())

    def span_covered(self, start: int, end: int) -> bool:
        """Whether some live region fully contains the span."""
        return any(r.start <= start and end <= r.end
                   for r in self._regions.values())
