"""Region formation: building monitored regions from hot UCR samples.

Paper section 3.1: when the fraction of samples falling in the unmonitored
code region exceeds a threshold, "region formation is triggered and it
builds regions from these samples".  Regions are "primarily loops that have
significant samples"; a hot address whose enclosing code is not a loop
within one procedure (e.g. a procedure called from a loop) yields **no**
region — those samples stay in the UCR, which is exactly the 254.gap /
186.crafty pathology of Figure 7.

The inter-procedural extension ("there is no fundamental limitation to
building inter-procedural regions") is implemented behind a flag: a hot
non-loop procedure that is invoked from some caller's loop is monitored as
a whole-procedure region.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.program.binary import SyntheticBinary
from repro.regions.region import Region, RegionKind
from repro.regions.registry import RegionRegistry

__all__ = ["FormationOutcome", "RegionFormation"]


@dataclass(frozen=True)
class FormationOutcome:
    """Result of one formation trigger.

    Attributes
    ----------
    new_regions:
        Regions added to the registry by this trigger.
    seeds_resolved:
        Hot addresses for which a region was found (or already existed).
    seeds_failed:
        Hot addresses for which no region could be built.
    failed_addresses:
        The addresses behind ``seeds_failed`` (diagnostics).
    """

    new_regions: tuple[Region, ...]
    seeds_resolved: int
    seeds_failed: int
    failed_addresses: tuple[int, ...] = field(default=())

    @property
    def formed_any(self) -> bool:
        return bool(self.new_regions)


class RegionFormation:
    """Builds loop regions around hot unmonitored addresses.

    Parameters
    ----------
    binary:
        The program being monitored (provides loops and the call graph).
    registry:
        Live region set; new regions are added here.
    hot_fraction:
        An address is a formation seed when it carries at least this
        fraction of the trigger's UCR samples.
    max_seeds:
        Upper bound on seeds examined per trigger (hottest first).
    interprocedural:
        Enable the whole-procedure fallback for call-in-loop hot code.
    trace_fallback:
        Enable hot-path trace selection for hot addresses no loop (or
        inter-procedural) rule covers — the paper's "regions can also
        include functions or traces" future work.
    annotations:
        Optional compiler-provided :class:`~repro.regions.annotations.
        AnnotationTable`; annotated spans take precedence over runtime
        analysis (the paper's "compiler annotations to improve region
        formation" future work).
    """

    def __init__(self, binary: SyntheticBinary, registry: RegionRegistry,
                 hot_fraction: float = 0.02, max_seeds: int = 64,
                 interprocedural: bool = False,
                 trace_fallback: bool = False,
                 annotations=None) -> None:
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError("hot_fraction must lie in (0, 1]")
        if max_seeds < 1:
            raise ValueError("max_seeds must be positive")
        self.binary = binary
        self.registry = registry
        self.hot_fraction = hot_fraction
        self.max_seeds = max_seeds
        self.interprocedural = interprocedural
        self.trace_fallback = trace_fallback
        self.annotations = annotations
        #: Formation triggers handled so far.
        self.trigger_count = 0

    def hot_seeds(self, ucr_pcs: np.ndarray) -> list[int]:
        """Hot addresses in a UCR sample batch, hottest first."""
        if ucr_pcs.size == 0:
            return []
        unique, counts = np.unique(np.asarray(ucr_pcs, dtype=np.int64),
                                   return_counts=True)
        threshold = self.hot_fraction * ucr_pcs.size
        order = np.argsort(counts)[::-1]
        seeds = [int(unique[i]) for i in order
                 if counts[i] >= max(threshold, 1.0)]
        return seeds[:self.max_seeds]

    def form(self, ucr_pcs: np.ndarray,
             interval_index: int = -1) -> FormationOutcome:
        """Run one formation trigger over the interval's UCR samples."""
        self.trigger_count += 1
        new_regions: list[Region] = []
        resolved = 0
        failed: list[int] = []
        for seed in self.hot_seeds(ucr_pcs):
            if self.registry.covering(seed):
                # Already covered by a region formed earlier in this same
                # trigger (UCR seeds are uncovered by construction before
                # the trigger starts).
                resolved += 1
                continue
            span = self._span_for(seed, ucr_pcs)
            if span is None:
                failed.append(seed)
                continue
            resolved += 1
            start, end, kind = span
            if self.registry.has_span(start, end):
                continue
            region = self.registry.add(start, end, kind=kind,
                                       formed_at_interval=interval_index)
            new_regions.append(region)
        return FormationOutcome(new_regions=tuple(new_regions),
                                seeds_resolved=resolved,
                                seeds_failed=len(failed),
                                failed_addresses=tuple(failed))

    def _span_for(self, address: int,
                  ucr_pcs: np.ndarray) -> tuple[int, int, RegionKind] | None:
        """The region span a seed address maps to, if one can be built.

        Precedence: compiler annotation (when a table is provided), then
        innermost natural loop, then (if enabled) the whole callee
        procedure for call-in-loop code, then (if enabled) a hot-path
        trace grown from the seed.
        """
        if self.annotations is not None:
            annotation = self.annotations.lookup(address)
            if annotation is not None:
                return annotation.start, annotation.end, \
                    RegionKind.ANNOTATED
        loop = self.binary.innermost_loop_at(address)
        if loop is not None:
            return loop.start, loop.end, RegionKind.LOOP
        procedure = self.binary.procedure_at(address)
        if procedure is None:
            return None
        if self.interprocedural \
                and self.binary.caller_loop_of(procedure.name) is not None:
            return procedure.start, procedure.end, \
                RegionKind.INTERPROCEDURAL
        if self.trace_fallback:
            from repro.regions.trace_builder import (block_hotness,
                                                     build_trace)

            hotness = block_hotness(procedure, ucr_pcs)
            trace = build_trace(procedure, hotness, address)
            if trace is not None:
                return trace.start, trace.end, RegionKind.TRACE
        return None
