"""Declarative fault specifications for the PMU sample stream.

The :class:`~repro.sampling.pmu.PMUSimulator` produces *ideal* streams:
every interrupt is delivered, every PC is exact, the period never drifts.
Real ADORE-style systems see none of that — sampling interrupts are lost
under load, the reported PC skids past the interrupted instruction,
timer programming drifts, ring buffers deliver duplicates, and stalled
interrupt windows coalesce many periods into one delivered sample.  This
module describes those failure modes declaratively; the transformers in
:mod:`repro.faults.inject` apply them to a stream deterministically.

Each spec is a small frozen dataclass that validates its rates/ranges in
``__post_init__`` (raising :class:`~repro.errors.ConfigError`) and knows

* whether it is a *no-op* (rate 0 — guaranteed byte-identical output);
* its ``token()`` — a hashable, pure-literal tuple used in cache keys and
  to rebuild the spec in a worker process.

A :class:`FaultPlan` is an ordered composition of specs.  The empty plan
(or a plan of no-ops) applies as the identity.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import ConfigError, FaultError

__all__ = [
    "FaultSpec",
    "SampleDrop",
    "PcSkid",
    "PeriodJitter",
    "PeriodDrift",
    "DuplicateSamples",
    "PcBitCorruption",
    "InterruptStall",
    "FaultPlan",
    "SPEC_KINDS",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """Base class of all fault specifications (never instantiated as-is)."""

    #: Class-level identifier used in tokens and cache keys.
    kind = "abstract"

    def is_noop(self) -> bool:
        """Whether applying this spec is guaranteed to change nothing."""
        return False

    def token(self) -> tuple:
        """Hashable ``(kind, (field, value), ...)`` identity of the spec."""
        return (self.kind,) + tuple(
            (f.name, getattr(self, f.name)) for f in fields(self))


@dataclass(frozen=True, slots=True)
class SampleDrop(FaultSpec):
    """Lost sampling interrupts: each sample is dropped at ``rate``.

    With ``burst_mean > 1`` the losses are bursty: a loss starts a burst
    whose length is geometric with the given mean, modeling the
    buffer-overrun pattern where consecutive interrupts are lost together
    rather than independently.  The marginal drop probability stays
    ``rate`` (burst starts are thinned by the mean burst length).
    """

    kind = "drop"
    rate: float = 0.0
    burst_mean: float = 1.0

    def __post_init__(self) -> None:
        _require(0.0 <= self.rate < 1.0, "drop rate must lie in [0, 1)")
        _require(self.burst_mean >= 1.0, "burst_mean must be at least 1")

    def is_noop(self) -> bool:
        """Whether applying this spec is guaranteed to change nothing."""
        return self.rate == 0.0


@dataclass(frozen=True, slots=True)
class PcSkid(FaultSpec):
    """Interrupt skid: the reported PC lies past the true one.

    ``distribution`` is ``"gaussian"`` (symmetric, standard deviation
    ``scale`` instruction slots) or ``"exponential"`` (one-sided forward
    skid with mean ``scale`` slots, the behavior of real deferred-trap
    hardware).  Skidded PCs are clipped to the stream's observed text
    range, so the address-space invariant survives.
    """

    kind = "skid"
    distribution: str = "exponential"
    scale: float = 0.0

    def __post_init__(self) -> None:
        _require(self.distribution in ("gaussian", "exponential"),
                 "skid distribution must be 'gaussian' or 'exponential'")
        _require(self.scale >= 0.0, "skid scale must be non-negative")

    def is_noop(self) -> bool:
        """Whether applying this spec is guaranteed to change nothing."""
        return self.scale == 0.0


@dataclass(frozen=True, slots=True)
class PeriodJitter(FaultSpec):
    """Interrupt-time jitter: each cycle stamp moves by up to
    ``fraction`` of the sampling period (uniform, then re-monotonized)."""

    kind = "jitter"
    fraction: float = 0.0

    def __post_init__(self) -> None:
        _require(0.0 <= self.fraction < 0.5,
                 "jitter fraction must lie in [0, 0.5)")

    def is_noop(self) -> bool:
        """Whether applying this spec is guaranteed to change nothing."""
        return self.fraction == 0.0


@dataclass(frozen=True, slots=True)
class PeriodDrift(FaultSpec):
    """Timer drift: inter-sample gaps stretch linearly over the run until
    the final gap is ``(1 + rate)`` periods, modeling a free-running timer
    that is never re-calibrated."""

    kind = "drift"
    rate: float = 0.0

    def __post_init__(self) -> None:
        _require(-0.9 <= self.rate <= 10.0,
                 "drift rate must lie in [-0.9, 10]")

    def is_noop(self) -> bool:
        """Whether applying this spec is guaranteed to change nothing."""
        return self.rate == 0.0


@dataclass(frozen=True, slots=True)
class DuplicateSamples(FaultSpec):
    """Ring-buffer double delivery: each sample is duplicated in place
    with probability ``rate``."""

    kind = "duplicate"
    rate: float = 0.0

    def __post_init__(self) -> None:
        _require(0.0 <= self.rate < 1.0,
                 "duplicate rate must lie in [0, 1)")

    def is_noop(self) -> bool:
        """Whether applying this spec is guaranteed to change nothing."""
        return self.rate == 0.0


@dataclass(frozen=True, slots=True)
class PcBitCorruption(FaultSpec):
    """Corrupted PC delivery: with probability ``rate`` a sample's PC has
    one uniformly chosen bit (below ``bit_width``) flipped.

    This is the one fault that may push PCs outside the monitored address
    space — which is exactly the case attribution, formation and the
    detectors must degrade through rather than crash on.
    """

    kind = "corrupt"
    rate: float = 0.0
    bit_width: int = 24

    def __post_init__(self) -> None:
        _require(0.0 <= self.rate < 1.0,
                 "corruption rate must lie in [0, 1)")
        _require(1 <= self.bit_width <= 48,
                 "bit_width must lie in [1, 48]")

    def is_noop(self) -> bool:
        """Whether applying this spec is guaranteed to change nothing."""
        return self.rate == 0.0


@dataclass(frozen=True, slots=True)
class InterruptStall(FaultSpec):
    """Stalled interrupt windows: with probability ``rate`` a stall
    begins, swallowing the next ``2..max_window`` samples into one — the
    survivor (the window's last sample) carries the whole window's
    retired-instruction count, as a coalescing PMU driver would report."""

    kind = "stall"
    rate: float = 0.0
    max_window: int = 8

    def __post_init__(self) -> None:
        _require(0.0 <= self.rate < 1.0,
                 "stall rate must lie in [0, 1)")
        _require(self.max_window >= 2,
                 "max_window must be at least 2")

    def is_noop(self) -> bool:
        """Whether applying this spec is guaranteed to change nothing."""
        return self.rate == 0.0


#: Registry of concrete spec classes by their ``kind`` tag.
SPEC_KINDS: dict[str, type[FaultSpec]] = {
    cls.kind: cls
    for cls in (SampleDrop, PcSkid, PeriodJitter, PeriodDrift,
                DuplicateSamples, PcBitCorruption, InterruptStall)
}


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, validated composition of fault specs.

    Specs apply in sequence, each drawing from its own seed-derived RNG
    stream, so a plan is a pure function of ``(stream, seed)``.  The empty
    plan — and any plan of no-op specs — is the identity.
    """

    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec) or type(spec) is FaultSpec:
                raise ConfigError(
                    f"fault plan entries must be concrete FaultSpecs, "
                    f"got {spec!r}")

    @property
    def is_empty(self) -> bool:
        """Whether applying the plan is guaranteed to change nothing."""
        return all(spec.is_noop() for spec in self.specs)

    @property
    def allows_corruption(self) -> bool:
        """Whether the plan may move PCs outside the text range."""
        return any(spec.kind == "corrupt" and not spec.is_noop()
                   for spec in self.specs)

    def token(self) -> tuple:
        """Hashable identity for cache keys / worker reconstruction."""
        return tuple(spec.token() for spec in self.specs)

    @classmethod
    def from_token(cls, token: tuple) -> "FaultPlan":
        """Rebuild a plan from :meth:`token` output (worker side)."""
        specs = []
        try:
            for spec_token in token:
                kind, *pairs = spec_token
                spec_cls = SPEC_KINDS[kind]
                specs.append(spec_cls(**dict(pairs)))
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultError(f"malformed fault-plan token {token!r}") from exc
        return cls(specs=tuple(specs))

    def describe(self) -> str:
        """Short human-readable summary (experiment row labels)."""
        if not self.specs:
            return "none"
        parts = []
        for spec in self.specs:
            values = ",".join(f"{name}={value}" for name, value in
                              ((f.name, getattr(spec, f.name))
                               for f in fields(spec)))
            parts.append(f"{spec.kind}({values})")
        return "+".join(parts)
