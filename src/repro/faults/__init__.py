"""Fault injection for PMU sample streams + graceful degradation.

The paper's robustness claim — local phase detection is less sensitive to
sampling noise than the centroid scheme — is only meaningful if the
pipeline is actually stressed with realistic sampling faults.  This
package provides the declarative fault model
(:mod:`repro.faults.model`), the deterministic stream transformers
(:mod:`repro.faults.inject`), and pairs with the watchdog/degradation
controller in :mod:`repro.monitor.watchdog`.
"""

from repro.faults.inject import inject, simulate_faulty_sampling
from repro.faults.model import (DuplicateSamples, FaultPlan, FaultSpec,
                                InterruptStall, PcBitCorruption, PcSkid,
                                PeriodDrift, PeriodJitter, SampleDrop)
from repro.faults.service import (DuplicateDelivery, QueueStall,
                                  ReorderDelivery, ServiceFaultPlan,
                                  ServiceFaultSpec, TornSnapshot,
                                  WorkerCrash)

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "SampleDrop",
    "PcSkid",
    "PeriodJitter",
    "PeriodDrift",
    "DuplicateSamples",
    "PcBitCorruption",
    "InterruptStall",
    "ServiceFaultSpec",
    "ServiceFaultPlan",
    "WorkerCrash",
    "TornSnapshot",
    "QueueStall",
    "DuplicateDelivery",
    "ReorderDelivery",
    "inject",
    "simulate_faulty_sampling",
]
