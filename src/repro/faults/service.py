"""Service-level fault specifications for the fleet serving layer.

Where :mod:`repro.faults.model` corrupts the *sample stream*, these
specs break the *serving machinery* around it: worker processes die
mid-batch, snapshot writes tear, queues stall, the delivery layer
duplicates and reorders batches.  The chaos harness
(``repro-experiments chaos`` and ``tests/serve/``) drives a sharded
fleet through ladders of these faults and holds the differential line:
per-stream event sequences must stay bit-identical to a clean
single-process run.

Specs deliberately do **not** subclass :class:`~repro.faults.model.FaultSpec`
— a service fault can never be handed to :func:`repro.faults.inject`
(it does not transform streams), and keeping the hierarchies apart
makes that a type error instead of a runtime surprise.  The
token/registry machinery mirrors the stream-fault model one-for-one
(``repro-check``'s fault-token audit covers both files).

Injection points are keyed by the shard-local dispatch sequence
(``at_seq``), which makes every fault deterministic: the same plan over
the same submission order fires at exactly the same batch, every run.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import ConfigError, FaultError

__all__ = [
    "ServiceFaultSpec",
    "WorkerCrash",
    "TornSnapshot",
    "QueueStall",
    "DuplicateDelivery",
    "ReorderDelivery",
    "ServiceFaultPlan",
    "SERVICE_SPEC_KINDS",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True, slots=True)
class ServiceFaultSpec:
    """Base class of all service fault specs (never instantiated as-is)."""

    #: Class-level identifier used in tokens and experiment labels.
    kind = "abstract"

    def is_noop(self) -> bool:
        """Whether applying this spec is guaranteed to change nothing."""
        return False

    def token(self) -> tuple:
        """Hashable ``(kind, (field, value), ...)`` identity of the spec."""
        return (self.kind,) + tuple(
            (f.name, getattr(self, f.name)) for f in fields(self))


@dataclass(frozen=True, slots=True)
class WorkerCrash(ServiceFaultSpec):
    """The shard's worker process dies while handling batch ``at_seq``.

    With ``before_ack=True`` the batch is fully applied but the crash
    lands before its acknowledgement leaves the worker — the
    lost-receipt window recovery must replay through.  Either way the
    worker flushes its output queue before dying, so the failure is a
    clean process loss, not queue corruption (a torn queue is not a
    recoverable fault class for ``multiprocessing`` pipes).
    """

    kind = "worker-crash"
    shard: int = 0
    at_seq: int = 0
    before_ack: bool = False

    def __post_init__(self) -> None:
        _require(self.shard >= 0, "shard must be non-negative")
        _require(self.at_seq >= 0, "at_seq must be non-negative")


@dataclass(frozen=True, slots=True)
class TornSnapshot(ServiceFaultSpec):
    """The next snapshot at/after ``at_seq`` tears mid-file, then the
    worker dies — the power-loss-during-checkpoint scenario.

    The torn generation is written *non-atomically* (bypassing the
    tmp+rename path) and truncated to ``truncate`` of its bytes, so
    recovery must detect the damage and fall back to the previous
    generation (or genesis) plus journal replay.
    """

    kind = "torn-snapshot"
    shard: int = 0
    at_seq: int = 0
    truncate: float = 0.5

    def __post_init__(self) -> None:
        _require(self.shard >= 0, "shard must be non-negative")
        _require(self.at_seq >= 0, "at_seq must be non-negative")
        _require(0.0 < self.truncate < 1.0,
                 "truncate must lie in (0, 1): an empty or complete "
                 "file is a different fault")


@dataclass(frozen=True, slots=True)
class QueueStall(ServiceFaultSpec):
    """The worker stops consuming for ``stall_seconds`` at ``at_seq`` —
    the slow-consumer case that exercises backpressure and, when the
    stall outlives the dispatch retry budget, governor eviction.

    Result-inert by construction: the stall delays processing but
    changes no sample, so a differential run through it must still be
    bit-identical.
    """

    kind = "queue-stall"
    shard: int = 0
    at_seq: int = 0
    stall_seconds: float = 0.2

    def __post_init__(self) -> None:
        _require(self.shard >= 0, "shard must be non-negative")
        _require(self.at_seq >= 0, "at_seq must be non-negative")
        _require(self.stall_seconds >= 0.0,
                 "stall_seconds must be non-negative")

    def is_noop(self) -> bool:
        """Whether applying this spec is guaranteed to change nothing."""
        return self.stall_seconds == 0.0


@dataclass(frozen=True, slots=True)
class DuplicateDelivery(ServiceFaultSpec):
    """The delivery layer enqueues batch ``at_seq`` ``copies`` times —
    the at-least-once retry pathology workers must dedupe."""

    kind = "duplicate-delivery"
    shard: int = 0
    at_seq: int = 0
    copies: int = 2

    def __post_init__(self) -> None:
        _require(self.shard >= 0, "shard must be non-negative")
        _require(self.at_seq >= 0, "at_seq must be non-negative")
        _require(self.copies >= 2, "copies must be at least 2")


@dataclass(frozen=True, slots=True)
class ReorderDelivery(ServiceFaultSpec):
    """Batch ``at_seq`` is held back while the next ``depth`` dispatches
    to the shard overtake it — the out-of-order window the per-stream
    stash must park and drain."""

    kind = "reorder-delivery"
    shard: int = 0
    at_seq: int = 0
    depth: int = 1

    def __post_init__(self) -> None:
        _require(self.shard >= 0, "shard must be non-negative")
        _require(self.at_seq >= 0, "at_seq must be non-negative")
        _require(self.depth >= 1, "depth must be at least 1")


#: Registry of concrete spec classes by their ``kind`` tag.
SERVICE_SPEC_KINDS: dict[str, type[ServiceFaultSpec]] = {
    cls.kind: cls
    for cls in (WorkerCrash, TornSnapshot, QueueStall, DuplicateDelivery,
                ReorderDelivery)
}


@dataclass(frozen=True)
class ServiceFaultPlan:
    """An ordered, validated composition of service fault specs."""

    specs: tuple[ServiceFaultSpec, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if (not isinstance(spec, ServiceFaultSpec)
                    or type(spec) is ServiceFaultSpec):
                raise ConfigError(
                    f"service fault plan entries must be concrete "
                    f"ServiceFaultSpecs, got {spec!r}")

    @property
    def is_empty(self) -> bool:
        """Whether applying the plan is guaranteed to change nothing."""
        return all(spec.is_noop() for spec in self.specs)

    def for_shard(self, shard: int) -> "ServiceFaultPlan":
        """The sub-plan a single shard's worker/dispatcher must apply."""
        return ServiceFaultPlan(tuple(
            spec for spec in self.specs
            if getattr(spec, "shard", None) == shard))

    def of_kind(self, kind: str) -> tuple[ServiceFaultSpec, ...]:
        """Every spec with the given ``kind`` tag, in plan order."""
        return tuple(spec for spec in self.specs if spec.kind == kind)

    def token(self) -> tuple:
        """Hashable identity for labels / worker reconstruction."""
        return tuple(spec.token() for spec in self.specs)

    @classmethod
    def from_token(cls, token: tuple) -> "ServiceFaultPlan":
        """Rebuild a plan from :meth:`token` output (worker side)."""
        specs = []
        try:
            for spec_token in token:
                kind, *pairs = spec_token
                spec_cls = SERVICE_SPEC_KINDS[kind]
                specs.append(spec_cls(**dict(pairs)))
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultError(
                f"malformed service fault-plan token {token!r}") from exc
        return cls(specs=tuple(specs))

    def describe(self) -> str:
        """Short human-readable summary (experiment row labels)."""
        if not self.specs:
            return "none"
        parts = []
        for spec in self.specs:
            values = ",".join(f"{name}={value}" for name, value in
                              ((f.name, getattr(spec, f.name))
                               for f in fields(spec)))
            parts.append(f"{spec.kind}({values})")
        return "+".join(parts)
