"""Deterministic fault injection over :class:`SampleStream` objects.

Each transformer maps the stream's parallel arrays to faulted parallel
arrays.  Determinism contract: the output is a pure function of
``(stream, plan, seed)`` — spec *i* of a plan draws from
``np.random.default_rng([_FAULT_SALT, seed, i])``, so specs are
independent of each other's draw counts and a plan prefix always produces
the same intermediate stream.

Two invariants every transformer preserves (property-tested):

* cycle stamps stay monotone non-decreasing, so interval slicing stays
  time-ordered;
* PCs stay inside the stream's observed text range, *unless* the plan
  contains an active :class:`~repro.faults.model.PcBitCorruption` spec —
  the one fault whose entire point is out-of-space addresses.

The empty plan returns the input stream object itself: byte-identical by
construction, and cache-friendly.
"""

from __future__ import annotations

import numpy as np

from repro.core.histogram import INSTRUCTION_BYTES
from repro.errors import FaultError
from repro.faults.model import (DuplicateSamples, FaultPlan, FaultSpec,
                                InterruptStall, PcBitCorruption, PcSkid,
                                PeriodDrift, PeriodJitter, SampleDrop)
from repro.sampling.events import SampleStream

__all__ = ["inject", "simulate_faulty_sampling"]

#: Seed-sequence salt separating fault RNG streams from the PMU's.
_FAULT_SALT = 0x0FA17


def _rng_for(seed: int, spec_index: int) -> np.random.Generator:
    return np.random.default_rng([_FAULT_SALT, abs(int(seed)), spec_index])


class _Arrays:
    """Mutable working copy of a stream's parallel arrays."""

    def __init__(self, stream: SampleStream) -> None:
        self.pcs = stream.pcs.copy()
        self.cycles = stream.cycles.copy()
        self.miss = stream.dcache_miss.copy()
        self.rids = stream.region_ids.copy()
        self.instr = (None if stream.instr_delta is None
                      else stream.instr_delta.copy())

    @property
    def n(self) -> int:
        return int(self.pcs.size)

    def select(self, keep: np.ndarray) -> None:
        """Apply a boolean keep-mask (drop/stall) to every array."""
        self.pcs = self.pcs[keep]
        self.cycles = self.cycles[keep]
        self.miss = self.miss[keep]
        self.rids = self.rids[keep]
        if self.instr is not None:
            self.instr = self.instr[keep]

    def repeat(self, counts: np.ndarray) -> None:
        """Repeat each sample ``counts[i]`` times (duplication)."""
        self.pcs = np.repeat(self.pcs, counts)
        self.cycles = np.repeat(self.cycles, counts)
        self.miss = np.repeat(self.miss, counts)
        self.rids = np.repeat(self.rids, counts)
        if self.instr is not None:
            self.instr = np.repeat(self.instr, counts)


# -- per-spec transformers ---------------------------------------------------

def _apply_drop(arrays: _Arrays, spec: SampleDrop,
                rng: np.random.Generator) -> None:
    n = arrays.n
    if n == 0:
        return
    if spec.burst_mean <= 1.0:
        keep = rng.random(n) >= spec.rate
        arrays.select(keep)
        return
    # Bursty losses: burst starts are thinned so the marginal drop
    # probability stays `rate`; each burst's length is geometric with
    # mean `burst_mean`.
    start_p = spec.rate / spec.burst_mean
    starts = rng.random(n) < start_p
    lengths = rng.geometric(1.0 / spec.burst_mean, size=n)
    keep = np.ones(n, dtype=bool)
    for index in np.flatnonzero(starts):
        keep[index:index + int(lengths[index])] = False
    arrays.select(keep)


def _apply_skid(arrays: _Arrays, spec: PcSkid,
                rng: np.random.Generator) -> None:
    n = arrays.n
    if n == 0:
        return
    lo = int(arrays.pcs.min())
    hi = int(arrays.pcs.max())
    if spec.distribution == "gaussian":
        slots = np.rint(rng.normal(0.0, spec.scale, size=n))
    else:
        slots = np.rint(rng.exponential(spec.scale, size=n))
    skidded = arrays.pcs + slots.astype(np.int64) * INSTRUCTION_BYTES
    arrays.pcs = np.clip(skidded, lo, hi)


def _apply_jitter(arrays: _Arrays, spec: PeriodJitter,
                  rng: np.random.Generator) -> None:
    n = arrays.n
    if n == 0:
        return
    period = float(np.median(np.diff(arrays.cycles))) if n > 1 else 1.0
    shift = rng.uniform(-spec.fraction, spec.fraction, size=n) * period
    jittered = arrays.cycles + shift.astype(np.int64)
    arrays.cycles = np.maximum.accumulate(jittered)


def _apply_drift(arrays: _Arrays, spec: PeriodDrift,
                 rng: np.random.Generator) -> None:
    n = arrays.n
    if n < 2:
        return
    deltas = np.diff(arrays.cycles).astype(np.float64)
    stretch = 1.0 + spec.rate * (np.arange(n - 1) / max(n - 2, 1))
    drifted = np.empty(n, dtype=np.int64)
    drifted[0] = arrays.cycles[0]
    drifted[1:] = drifted[0] + np.cumsum(
        np.maximum(deltas * stretch, 0.0)).astype(np.int64)
    arrays.cycles = drifted


def _apply_duplicate(arrays: _Arrays, spec: DuplicateSamples,
                     rng: np.random.Generator) -> None:
    n = arrays.n
    if n == 0:
        return
    counts = np.where(rng.random(n) < spec.rate, 2, 1)
    arrays.repeat(counts)


def _apply_corrupt(arrays: _Arrays, spec: PcBitCorruption,
                   rng: np.random.Generator) -> None:
    n = arrays.n
    if n == 0:
        return
    hit = rng.random(n) < spec.rate
    bits = rng.integers(0, spec.bit_width, size=n)
    flips = np.where(hit, np.int64(1) << bits.astype(np.int64), 0)
    arrays.pcs = arrays.pcs ^ flips


def _apply_stall(arrays: _Arrays, spec: InterruptStall,
                 rng: np.random.Generator) -> None:
    n = arrays.n
    if n == 0:
        return
    starts = rng.random(n) < spec.rate
    lengths = rng.integers(2, spec.max_window + 1, size=n)
    keep = np.ones(n, dtype=bool)
    coalesced = (None if arrays.instr is None
                 else arrays.instr.copy())
    cursor = 0
    for index in np.flatnonzero(starts):
        if index < cursor:
            continue  # already swallowed by a previous stall window
        last = min(index + int(lengths[index]), n) - 1
        if last <= index:
            continue
        keep[index:last] = False
        if coalesced is not None:
            coalesced[last] = arrays.instr[index:last + 1].sum()
        cursor = last + 1
    if coalesced is not None:
        arrays.instr = coalesced
    arrays.select(keep)


_TRANSFORMERS = {
    SampleDrop: _apply_drop,
    PcSkid: _apply_skid,
    PeriodJitter: _apply_jitter,
    PeriodDrift: _apply_drift,
    DuplicateSamples: _apply_duplicate,
    PcBitCorruption: _apply_corrupt,
    InterruptStall: _apply_stall,
}


def inject(stream: SampleStream, plan: FaultPlan,
           seed: int = 0) -> SampleStream:
    """Apply a fault plan to a stream; returns the faulted stream.

    The input stream is never mutated.  An empty (or all-no-op) plan
    returns the input object itself — byte-identical by construction.
    """
    if not isinstance(plan, FaultPlan):
        raise FaultError(f"expected a FaultPlan, got {type(plan).__name__}")
    if plan.is_empty:
        return stream
    arrays = _Arrays(stream)
    for index, spec in enumerate(plan.specs):
        if spec.is_noop():
            continue
        transformer = _TRANSFORMERS.get(type(spec))
        if transformer is None:
            raise FaultError(
                f"no transformer for fault spec {type(spec).__name__}")
        transformer(arrays, spec, _rng_for(seed, index))
    return SampleStream(
        pcs=arrays.pcs, cycles=arrays.cycles, dcache_miss=arrays.miss,
        region_ids=arrays.rids, region_names=stream.region_names,
        sampling_period=stream.sampling_period,
        total_cycles=stream.total_cycles, instr_delta=arrays.instr)


def simulate_faulty_sampling(regions, workload, sampling_period: int,
                             plan: FaultPlan, seed: int = 0,
                             jitter: float = 0.0) -> SampleStream:
    """Simulate a PMU run and apply *plan* to it (one-call convenience)."""
    from repro.sampling.pmu import simulate_sampling

    stream = simulate_sampling(regions, workload, sampling_period,
                               seed=seed, jitter=jitter)
    return inject(stream, plan, seed=seed)


def _spec_transformer(spec: FaultSpec):
    """The transformer for one spec (exposed for the property tests)."""
    return _TRANSFORMERS.get(type(spec))
