"""Fleet-scale benchmarks: the batch backend vs the scalar detectors.

The batch backend exists for multi-tenant monitoring — N streams, each
with a handful of region detectors plus a global detector, advanced in
lockstep.  These benchmarks time the *detector-stepping* stage (the part
batching vectorizes; region formation and attribution are per-lane
Python either way) at fleet sizes of 64, 256 and 1024 streams, feeding
both paths identical inputs.

``scripts/bench_compare.py`` gates on the 256-stream pair: the batch
path must hold at least a 5x throughput advantage over the scalar loop
(see ``FLEET_SPEEDUP_FLOOR`` there).  The bit-equality of the two paths
is proven separately by ``tests/batch/``.
"""

import numpy as np
import pytest

from repro.batch import BatchGpdBank, BatchLpdBank
from repro.core.gpd import GlobalPhaseDetector
from repro.core.lpd import LocalPhaseDetector

#: Region detector rows per stream and their histogram widths — a fleet
#: runs one binary, so widths repeat across streams (which is what lets
#: the bank form dense same-width groups).
WIDTHS = (12, 16, 20, 24, 28, 32, 48, 64)
#: GPD sample-buffer length per interval.
BUFFER = 504
#: Intervals stepped per timed run.
INTERVALS = 24
#: Distinct pre-generated interval inputs, cycled (bounds setup memory).
CYCLE = 8

FLEET_SIZES = [64, 256, 1024]
SCALAR_SIZES = [64, 256]  # the 1024-stream scalar loop is too slow to time


def _fleet_inputs(n_streams):
    """Identical per-interval inputs for both paths, cycled."""
    rng = np.random.default_rng(7)
    lpd_cycle = [
        {w: rng.integers(1, 50, size=(n_streams, w)).astype(np.float64)
         for w in WIDTHS}
        for _ in range(CYCLE)]
    gpd_cycle = [
        rng.integers(0x4000_0000, 0x4100_0000, size=(n_streams, BUFFER))
        for _ in range(CYCLE)]
    return lpd_cycle, gpd_cycle


def _run_scalar(n_streams, lpd_cycle, gpd_cycle):
    lpds = [[LocalPhaseDetector(w) for w in WIDTHS]
            for _ in range(n_streams)]
    gpds = [GlobalPhaseDetector() for _ in range(n_streams)]
    for interval in range(INTERVALS):
        blocks = lpd_cycle[interval % CYCLE]
        buffers = gpd_cycle[interval % CYCLE]
        for stream in range(n_streams):
            row = lpds[stream]
            for j, width in enumerate(WIDTHS):
                row[j].observe(blocks[width][stream], interval)
            gpds[stream].observe_buffer(buffers[stream])
    return gpds


def _run_batch(n_streams, lpd_cycle, gpd_cycle):
    lpd_bank = BatchLpdBank()
    group_views = {w: [lpd_bank.add_detector(w) for _ in range(n_streams)]
                   for w in WIDTHS}
    gpd_bank = BatchGpdBank()
    gpd_views = [gpd_bank.add_detector() for _ in range(n_streams)]
    for interval in range(INTERVALS):
        blocks = lpd_cycle[interval % CYCLE]
        buffers = gpd_cycle[interval % CYCLE]
        for width in WIDTHS:
            lpd_bank.observe_rows(group_views[width], blocks[width],
                                  interval)
        gpd_bank.observe_buffers(list(zip(gpd_views, buffers)))
    return gpd_views


@pytest.mark.parametrize("n_streams", SCALAR_SIZES)
def test_fleet_step_scalar(benchmark, n_streams):
    lpd_cycle, gpd_cycle = _fleet_inputs(n_streams)
    gpds = benchmark.pedantic(_run_scalar, args=(n_streams, lpd_cycle,
                                                 gpd_cycle),
                              rounds=3, iterations=1)
    assert all(g.intervals_seen == INTERVALS for g in gpds)


@pytest.mark.parametrize("n_streams", FLEET_SIZES)
def test_fleet_step_batch(benchmark, n_streams):
    lpd_cycle, gpd_cycle = _fleet_inputs(n_streams)
    views = benchmark.pedantic(_run_batch, args=(n_streams, lpd_cycle,
                                                 gpd_cycle),
                               rounds=3, iterations=1)
    assert all(v.intervals_seen == INTERVALS for v in views)
