"""Fleet-scale benchmarks: the batch backend vs the scalar detectors.

The batch backend exists for multi-tenant monitoring — N streams, each
with a handful of region detectors plus a global detector, advanced in
lockstep.  These benchmarks time the *detector-stepping* stage (the part
batching vectorizes; region formation and attribution are per-lane
Python either way) at fleet sizes of 64, 256 and 1024 streams, feeding
both paths identical inputs.  Detector allocation happens in benchmark
setup for both paths, so the medians compare stepping throughput alone;
the batch path steps pinned row groups
(:meth:`~repro.batch.lpd.BatchLpdBank.observe_grouped` /
:meth:`~repro.batch.gpd.BatchGpdBank.observe_block`), the production
fast path a lockstep :class:`~repro.batch.session.BatchSession` runs.

``scripts/bench_compare.py`` gates on the 256-stream pair: the batch
path must hold at least a 25x throughput advantage over the scalar loop
(``FLEET_SPEEDUP_FLOOR`` there) and an absolute stream-interval
throughput floor (``FLEET_THROUGHPUT_FLOOR``); each batch benchmark
records its measured ``stream_intervals_per_sec`` in ``extra_info``.
The bit-equality of the two paths is proven separately by
``tests/batch/``.
"""

import numpy as np
import pytest

from conftest import STEADY_ROUNDS

from repro.batch import BatchGpdBank, BatchLpdBank
from repro.core.gpd import GlobalPhaseDetector
from repro.core.lpd import LocalPhaseDetector

#: Region detector rows per stream and their histogram widths — a fleet
#: runs one binary, so widths repeat across streams (which is what lets
#: the bank form dense same-width groups).
WIDTHS = (12, 16, 20, 24, 28, 32, 48, 64)
#: GPD sample-buffer length per interval.
BUFFER = 504
#: Intervals stepped per timed run.
INTERVALS = 24
#: Distinct pre-generated interval inputs, cycled (bounds setup memory).
CYCLE = 8

FLEET_SIZES = [64, 256, 1024]
SCALAR_SIZES = [64, 256]  # the 1024-stream scalar loop is too slow to time


def _fleet_inputs(n_streams):
    """Identical per-interval inputs for both paths, cycled."""
    rng = np.random.default_rng(7)
    lpd_cycle = [
        {w: rng.integers(1, 50, size=(n_streams, w)).astype(np.float64)
         for w in WIDTHS}
        for _ in range(CYCLE)]
    gpd_cycle = [
        rng.integers(0x4000_0000, 0x4100_0000, size=(n_streams, BUFFER))
        for _ in range(CYCLE)]
    return lpd_cycle, gpd_cycle


def _scalar_fleet(n_streams):
    lpds = [[LocalPhaseDetector(w) for w in WIDTHS]
            for _ in range(n_streams)]
    gpds = [GlobalPhaseDetector() for _ in range(n_streams)]
    return lpds, gpds


def _run_scalar(lpds, gpds, lpd_cycle, gpd_cycle):
    for interval in range(INTERVALS):
        blocks = lpd_cycle[interval % CYCLE]
        buffers = gpd_cycle[interval % CYCLE]
        for stream, (row, gpd) in enumerate(zip(lpds, gpds)):
            for j, width in enumerate(WIDTHS):
                row[j].observe(blocks[width][stream], interval)
            gpd.observe_buffer(buffers[stream])
    return gpds


def _batch_fleet(n_streams):
    """Banks with pinned groups: the coalesced fleet fast path."""
    lpd_bank = BatchLpdBank()
    lpd_groups = {
        w: lpd_bank.make_group(lpd_bank.add_detectors(w, n_streams))
        for w in WIDTHS}
    gpd_bank = BatchGpdBank()
    gpd_views = gpd_bank.add_detectors(n_streams)
    gpd_group = gpd_bank.make_group(gpd_views)
    return lpd_bank, lpd_groups, gpd_bank, gpd_group, gpd_views


def _run_batch(lpd_bank, lpd_groups, gpd_bank, gpd_group, gpd_views,
               lpd_cycle, gpd_cycle):
    for interval in range(INTERVALS):
        blocks = lpd_cycle[interval % CYCLE]
        for width, group in lpd_groups.items():
            lpd_bank.observe_grouped(group, blocks[width], interval)
        gpd_bank.observe_block(gpd_group, gpd_cycle[interval % CYCLE])
    return gpd_views


def _throughput(benchmark, n_streams) -> None:
    try:
        median = benchmark.stats.stats.median
    except AttributeError:  # pragma: no cover - harness internals moved
        return
    if median > 0:
        benchmark.extra_info["stream_intervals_per_sec"] = round(
            n_streams * INTERVALS / median, 1)


@pytest.mark.parametrize("n_streams", SCALAR_SIZES)
def test_fleet_step_scalar(benchmark, n_streams):
    lpd_cycle, gpd_cycle = _fleet_inputs(n_streams)

    def setup():
        lpds, gpds = _scalar_fleet(n_streams)
        return (lpds, gpds, lpd_cycle, gpd_cycle), {}

    gpds = benchmark.pedantic(_run_scalar, setup=setup,
                              rounds=STEADY_ROUNDS, iterations=1)
    assert all(g.intervals_seen == INTERVALS for g in gpds)
    _throughput(benchmark, n_streams)


@pytest.mark.parametrize("n_streams", FLEET_SIZES)
def test_fleet_step_batch(benchmark, n_streams):
    lpd_cycle, gpd_cycle = _fleet_inputs(n_streams)

    def setup():
        banks = _batch_fleet(n_streams)
        return (*banks, lpd_cycle, gpd_cycle), {}

    views = benchmark.pedantic(_run_batch, setup=setup,
                               rounds=STEADY_ROUNDS, iterations=1)
    assert all(v.intervals_seen == INTERVALS for v in views)
    _throughput(benchmark, n_streams)
