"""Micro-benchmarks of the hot primitives.

These are the wall-clock companions to the operation-count cost model:
Pearson's correlation (the LPD's per-region cost the paper wants to
reduce), interval-tree stabbing vs. linear region scan (Figure 16's
actual data structures), histogram filling, and the full monitor's
per-interval pipeline.
"""

import numpy as np
import pytest

from repro.core.correlation import pearson_r, pearson_r_pure
from repro.core.gpd import GlobalPhaseDetector
from repro.core.histogram import RegionHistogram
from repro.core.lpd import LocalPhaseDetector
from repro.core.similarity import MEASURES
from repro.regions.interval_tree import IntervalTree

RNG = np.random.default_rng(42)


# ---------------------------------------------------------------------------
# Similarity computation (the paper: "the Pearson's metric involves time
# consuming calculations")
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("slots", [32, 256, 1600])
def test_pearson_vectorized(benchmark, slots):
    x = RNG.integers(0, 500, size=slots).astype(float)
    y = RNG.integers(0, 500, size=slots).astype(float)
    result = benchmark(pearson_r, x, y)
    assert -1.0 <= result <= 1.0


def test_pearson_pure_python(benchmark):
    x = RNG.integers(0, 500, size=256).astype(float)
    y = RNG.integers(0, 500, size=256).astype(float)
    result = benchmark(pearson_r_pure, x, y)
    assert result == pytest.approx(pearson_r(x, y), abs=1e-9)


@pytest.mark.parametrize("name", sorted(MEASURES))
def test_similarity_measures(benchmark, name):
    measure = MEASURES[name]
    x = RNG.integers(0, 500, size=256).astype(float)
    result = benchmark(measure, x, 2.0 * x)
    assert result > 0.99


# ---------------------------------------------------------------------------
# Attribution data structures (Figure 16's actual wall clock)
# ---------------------------------------------------------------------------

def _regions(n):
    return [(0x10000 + i * 0x200, 0x10000 + i * 0x200 + 0x100, i)
            for i in range(n)]


@pytest.mark.parametrize("n_regions", [4, 64, 512])
def test_interval_tree_stab(benchmark, n_regions):
    tree = IntervalTree(_regions(n_regions))
    points = RNG.integers(0x10000, 0x10000 + n_regions * 0x200,
                          size=256).tolist()

    def stab_all():
        return sum(len(tree.stab(p)) for p in points)

    hits = benchmark(stab_all)
    assert hits >= 0


@pytest.mark.parametrize("n_regions", [4, 64, 512])
def test_list_scan(benchmark, n_regions):
    spans = [(s, e) for s, e, _ in _regions(n_regions)]
    points = RNG.integers(0x10000, 0x10000 + n_regions * 0x200,
                          size=256).tolist()

    def scan_all():
        hits = 0
        for p in points:
            for start, end in spans:
                if start <= p < end:
                    hits += 1
        return hits

    hits = benchmark(scan_all)
    assert hits >= 0


def test_interval_tree_build(benchmark):
    intervals = _regions(512)
    tree = benchmark(IntervalTree, intervals)
    assert len(tree) == 512


# ---------------------------------------------------------------------------
# Histograms and detectors
# ---------------------------------------------------------------------------

def test_histogram_batch_fill(benchmark):
    pcs = (0x10000 + 4 * RNG.integers(0, 256, size=2032)).astype(np.int64)
    histogram = RegionHistogram(0x10000, 0x10000 + 256 * 4)

    def fill():
        histogram.clear()
        return histogram.add_pcs(pcs)

    assert benchmark(fill) == 2032


def test_gpd_interval(benchmark):
    pcs = RNG.integers(0x10000, 0x90000, size=2032)

    detector = GlobalPhaseDetector()

    def observe():
        return detector.observe_buffer(pcs)

    benchmark(observe)
    assert detector.intervals_seen > 0


def test_lpd_interval(benchmark):
    counts = RNG.integers(0, 100, size=256).astype(float)
    detector = LocalPhaseDetector(n_instructions=256)
    state = {"i": 0}

    def observe():
        state["i"] += 1
        return detector.observe(counts, state["i"])

    benchmark(observe)
    assert detector.active_intervals > 0


def test_monitor_interval_pipeline(benchmark):
    """One full monitor interval on a 64-region program."""
    from repro.core import MonitorThresholds
    from repro.monitor import RegionMonitor
    from repro.program.binary import BinaryBuilder, loop

    builder = BinaryBuilder(base=0x10000)
    for i in range(64):
        builder.procedure(f"p{i}", [loop(f"l{i}", body=28)],
                          at=0x20000 + i * 0x400)
    binary = builder.build()
    monitor = RegionMonitor(binary,
                            MonitorThresholds(buffer_size=2032))
    starts = np.array([binary.loop_span(f"l{i}")[0] for i in range(64)])
    # Concentrate each region's samples on a few hot slots so a single
    # interval is enough for formation to build all 64 regions.
    pcs = (starts[RNG.integers(0, 64, size=2032)]
           + 4 * RNG.integers(0, 2, size=2032)).astype(np.int64)
    monitor.process_interval(pcs)  # warm up: forms the regions

    benchmark(monitor.process_interval, pcs)
    assert len(monitor.live_regions()) == 64


# ---------------------------------------------------------------------------
# Phase classification / prediction
# ---------------------------------------------------------------------------

def test_phase_classifier(benchmark):
    from repro.analysis.prediction import PhaseClassifier

    vectors = [RNG.dirichlet(np.full(8, 0.5)) for _ in range(64)]
    state = {"i": 0}
    classifier = PhaseClassifier()

    def classify_next():
        state["i"] = (state["i"] + 1) % len(vectors)
        return classifier.classify(vectors[state["i"]])

    assert benchmark(classify_next) >= 0


def test_markov_predictor(benchmark):
    from repro.analysis.prediction import MarkovPhasePredictor

    predictor = MarkovPhasePredictor(order=2)
    sequence = list(RNG.integers(0, 4, size=64))
    state = {"i": 0}

    def observe_next():
        state["i"] = (state["i"] + 1) % len(sequence)
        predictor.observe(sequence[state["i"]])

    benchmark(observe_next)
    assert predictor.report().predictions > 0
