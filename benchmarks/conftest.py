"""Shared configuration for the benchmark harness.

Every figure-level benchmark regenerates its figure at ``BENCH_SCALE`` (a
fraction of the full experiment length) so the whole harness stays in the
minutes range; run the experiments CLI (``repro-experiments all``) for the
full-scale numbers recorded in EXPERIMENTS.md.
"""

import pytest

from repro.experiments.cache import get_cache
from repro.experiments.config import ExperimentConfig

#: Workload scale used by figure-level benchmarks.
BENCH_SCALE = 0.1

#: Rounds for the gated fleet/engine benchmarks.  The trajectory
#: snapshots gate on these medians (``scripts/bench_compare.py``), so
#: they need a real distribution — rounds=1 records stddev 0 and makes
#: every gate a coin flip on scheduler noise.  Figure-level benchmarks
#: stay at ``once`` (minutes each; their thresholds are loose).
STEADY_ROUNDS = 5


@pytest.fixture(autouse=True)
def _cold_cache():
    """Clear the simulation cache around each benchmark.

    Without this, whichever figure benchmark runs first would warm the
    process-wide cache and every later benchmark would measure cached
    lookups instead of its own cold cost.
    """
    get_cache().clear()
    yield
    get_cache().clear()


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Experiment configuration shared by all figure benchmarks."""
    return ExperimentConfig(scale=BENCH_SCALE, seed=7)


def once(benchmark, fn, *args, **kwargs):
    """Run a heavy benchmark exactly once (still timed)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)


def steady(benchmark, fn, *args, **kwargs):
    """Run a gated benchmark at :data:`STEADY_ROUNDS` rounds.

    For the engine/fleet benchmarks whose medians are regression-gated:
    enough rounds for the median and stddev to mean something, still one
    iteration per round (each round is a full run).
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=STEADY_ROUNDS, iterations=1)
