"""Ablation benchmarks for the design choices DESIGN.md calls out.

* similarity measure: the paper's Pearson vs. the cheaper alternatives it
  asks for in future work — cost *and* detection quality;
* size-adaptive r-threshold: the paper's proposed fix for the 188.ammp
  aberration;
* region pruning: monitoring cost with cold regions evicted;
* inter-procedural formation: the UCR fix for gap/crafty.
"""

import pytest
from conftest import once

from repro.core import MonitorThresholds
from repro.core.similarity import get_measure
from repro.core.thresholds import LpdThresholds
from repro.monitor import RegionMonitor
from repro.program.spec2000 import get_benchmark
from repro.regions.pruning import PruningPolicy
from repro.sampling import simulate_sampling

SCALE = 0.1
SEED = 7


def run_monitor(model, period=45_000, **monitor_kwargs):
    stream = simulate_sampling(model.regions, model.workload, period,
                               seed=SEED)
    thresholds = monitor_kwargs.pop("thresholds", MonitorThresholds())
    monitor = RegionMonitor(model.binary, thresholds, **monitor_kwargs)
    monitor.process_stream(stream)
    return monitor


# ---------------------------------------------------------------------------
# Similarity-measure ablation
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("measure_name",
                         ["pearson", "cosine", "manhattan", "topk8"])
def test_similarity_ablation(benchmark, measure_name):
    """All measures must agree that mcf is locally stable; the benchmark
    times the full monitor run under each, quantifying the paper's
    'cheaper means of measuring similarity' trade-off."""
    model = get_benchmark("181.mcf", SCALE)
    measure = get_measure(measure_name)

    monitor = once(benchmark, run_monitor, model, measure=measure)
    for workload_name in ("mcf_r1", "mcf_r2"):
        region = monitor.region_by_name(model.monitored_name(workload_name))
        assert monitor.detector(region.rid).phase_change_count() <= 2


@pytest.mark.parametrize("measure_name",
                         ["pearson", "cosine", "manhattan"])
def test_similarity_ablation_detects_real_changes(benchmark, measure_name):
    """The cheaper measures must still catch gap's erratic region."""
    model = get_benchmark("254.gap", 0.3)
    measure = get_measure(measure_name)
    monitor = once(benchmark, run_monitor, model, measure=measure)
    region = monitor.region_by_name(model.monitored_name("gap_g3"))
    assert monitor.detector(region.rid).phase_change_count() >= 3


# ---------------------------------------------------------------------------
# Adaptive-threshold ablation (the ammp aberration, paper section 3.2.2)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("adaptive", [False, True],
                         ids=["fixed_rt", "adaptive_rt"])
def test_adaptive_threshold_ablation(benchmark, adaptive):
    model = get_benchmark("188.ammp", 0.3)
    thresholds = MonitorThresholds(lpd=LpdThresholds(adaptive=adaptive))
    monitor = once(benchmark, run_monitor, model, thresholds=thresholds)
    region = monitor.region_by_name(model.monitored_name("ammp_a1"))
    changes = monitor.detector(region.rid).phase_change_count()
    if adaptive:
        assert changes <= 3      # the size-based threshold fixes ammp
    else:
        assert changes >= 10     # the paper's aberration


# ---------------------------------------------------------------------------
# Pruning ablation (paper section 3.2.3)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("pruned", [False, True],
                         ids=["no_pruning", "pruning"])
def test_pruning_ablation(benchmark, pruned):
    """Evicting cold regions cuts attribution cost on a many-region
    program without losing the hot regions."""
    model = get_benchmark("255.vortex", 0.2)
    policy = PruningPolicy(max_idle_intervals=8,
                           min_recent_share=0.002,
                           grace_intervals=8) if pruned else None
    monitor = once(benchmark, run_monitor, model, pruning=policy)
    if pruned:
        assert len(monitor.live_regions()) < len(monitor.all_regions())
    # The dominant regions survive either way.
    top = max(monitor.phase_change_counts(), default=None,
              key=lambda rid: monitor.detector(rid).active_intervals)
    assert top is not None


def test_pruning_reduces_cost(benchmark):
    """Times the pruned run and asserts the op-count win over a full
    (unpruned) reference run."""
    model = get_benchmark("255.vortex", 0.2)
    full = run_monitor(model)
    pruned = once(benchmark, run_monitor, model, pruning=PruningPolicy(
        max_idle_intervals=8, min_recent_share=0.002, grace_intervals=8))
    assert pruned.ledger.monitor_ops < full.ledger.monitor_ops


# ---------------------------------------------------------------------------
# Inter-procedural formation ablation (paper section 3.1)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("interproc", [False, True],
                         ids=["loop_only", "interprocedural"])
def test_interprocedural_ablation(benchmark, interproc):
    model = get_benchmark("254.gap", SCALE)
    monitor = once(benchmark, run_monitor, model,
                   interprocedural=interproc)
    if interproc:
        assert monitor.ucr.history[-1] < 0.10
    else:
        assert monitor.ucr.median() > 0.30


# ---------------------------------------------------------------------------
# Composite-GPD ablation (centroid vs centroid+CPI+DPI channels)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("channels", [("centroid",),
                                      ("centroid", "cpi", "dpi")],
                         ids=["centroid_only", "composite"])
def test_composite_gpd_ablation(benchmark, channels):
    """The paper's prototype GPD watches CPI/DPI besides the centroid;
    this times both variants on mcf (whose memory behavior shifts with
    its region mix) and checks the composite sees at least as much."""
    from repro.core.performance import CompositeGlobalDetector

    model = get_benchmark("181.mcf", 0.2)
    stream = simulate_sampling(model.regions, model.workload, 45_000,
                               seed=SEED)

    def run():
        detector = CompositeGlobalDetector(channels=channels)
        detector.process_stream(stream, 2032)
        return detector

    detector = once(benchmark, run)
    assert detector.intervals_seen == stream.n_intervals(2032)
    if len(channels) > 1:
        centroid_only = CompositeGlobalDetector(channels=("centroid",))
        centroid_only.process_stream(stream, 2032)
        assert len(detector.channel_events) \
            >= len(centroid_only.channel_events)


# ---------------------------------------------------------------------------
# Detector zoo: every global scheme vs local detection on the flapper
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("scheme", ["centroid", "bbv", "working_set",
                                    "lpd"])
def test_detector_zoo_bench(benchmark, scheme):
    """Times each phase-detection scheme over the same facerec stream and
    records the contrast the paper draws: every *global* scheme that
    weighs execution frequency flaps on periodic switching; per-region
    LPD does not."""
    from repro.analysis.metrics import run_gpd
    from repro.core.baselines import (BasicBlockVectorDetector,
                                      WorkingSetDetector)

    model = get_benchmark("187.facerec", 0.25)
    stream = simulate_sampling(model.regions, model.workload, 45_000,
                               seed=SEED)

    def run_scheme():
        if scheme == "centroid":
            detector = run_gpd(stream, 2032)
            return len(detector.events)
        if scheme in ("bbv", "working_set"):
            detector = (BasicBlockVectorDetector() if scheme == "bbv"
                        else WorkingSetDetector())
            for _index, window in stream.intervals(2032):
                detector.observe_buffer(stream.pcs[window])
            return detector.phase_change_count()
        monitor = RegionMonitor(model.binary, MonitorThresholds())
        monitor.process_stream(stream)
        return monitor.total_events()

    changes = once(benchmark, run_scheme)
    if scheme in ("centroid", "bbv"):
        assert changes >= 8      # frequency-sensitive global schemes flap
    elif scheme == "lpd":
        assert changes <= 6      # a handful of per-region stabilizations


# ---------------------------------------------------------------------------
# Trace-formation ablation (paper: "regions can also include ... traces")
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("mode", ["loop_only", "traces"])
def test_trace_formation_ablation(benchmark, mode):
    """crafty's UCR problem attacked with hot-path traces instead of the
    inter-procedural whole-procedure rule."""
    model = get_benchmark("186.crafty", 0.05)
    monitor = once(benchmark, run_monitor, model,
                   trace_formation=(mode == "traces"))
    if mode == "traces":
        from repro.regions.region import RegionKind

        kinds = {r.kind for r in monitor.all_regions()}
        assert RegionKind.TRACE in kinds
        assert monitor.ucr.median() < 0.10
    else:
        assert monitor.ucr.median() > 0.30


# ---------------------------------------------------------------------------
# Interval-size ablation (paper §2.3: GPD is sensitive to "sampling
# period, interval size and thresholds"; "interval size is usually
# determined by the sampling period, but can be independently set")
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("buffer_size", [508, 2032, 8128])
def test_interval_size_ablation(benchmark, buffer_size):
    """Sweep the buffer (interval) size at a fixed sampling period: the
    same stream yields wildly different GPD phase-change counts, while
    the per-region LPD verdicts stay put."""
    from repro.analysis.metrics import run_gpd

    model = get_benchmark("187.facerec", 0.3)
    stream = simulate_sampling(model.regions, model.workload, 45_000,
                               seed=SEED)

    def run():
        gpd = run_gpd(stream, buffer_size)
        monitor = RegionMonitor(
            model.binary, MonitorThresholds(buffer_size=buffer_size))
        monitor.process_stream(stream)
        return gpd, monitor

    gpd, monitor = once(benchmark, run)
    # LPD: at most a stabilization or two per region at ANY interval size.
    for count in monitor.phase_change_counts().values():
        assert count <= 4
    # GPD: the small interval resolves the 14-interval switching into
    # many phase changes; the big interval averages it away.
    if buffer_size == 508:
        assert len(gpd.events) >= 10
    if buffer_size == 8128:
        assert len(gpd.events) <= 10
