"""Serving benchmarks: snapshot overhead and crash recovery.

A :class:`~repro.serve.worker.ShardWorker` owning a 256-lane
``BatchSession`` is timed through ``APPLIES`` one-interval batch
applications, once plain and once with a single snapshot appended —
the difference is the cost of one checkpoint.  ``scripts/
bench_compare.py`` amortizes that difference over the default snapshot
cadence (``ServeConfig.snapshot_every``; both the applies-per-round and
the cadence are recorded in ``extra_info``) and gates the result at a
5% throughput ceiling: within one measurement, so host speed cancels.

``test_serve_worker_recovery`` times the full crash path — restore the
newest snapshot, replay the journal suffix — and records the replayed
batch count; the median *is* the recovery time at that journal depth.
"""

import itertools

import numpy as np

from conftest import BENCH_SCALE, STEADY_ROUNDS

from repro.program.spec2000 import get_benchmark
from repro.sampling import simulate_sampling
from repro.serve import ServeConfig, ShardWorker
from repro.serve.messages import Batch
from repro.serve.snapshot import SnapshotStore

N_STREAMS = 256
#: One-interval batch applications per timed round.
APPLIES = 64
#: Journal depth replayed by the recovery benchmark.
REPLAY = 64
#: Distinct pre-generated interval chunks, cycled (bounds setup memory).
CYCLE = 8
#: ``BatchSession`` default interval buffer.
INTERVAL = 2032

_MATERIAL = None


def _material():
    """(model, cycled interval chunks) — one simulation per process."""
    global _MATERIAL
    if _MATERIAL is None:
        model = get_benchmark("181.mcf", BENCH_SCALE)
        stream = simulate_sampling(model.regions, model.workload, 45_000,
                                   seed=7)
        pcs = stream.pcs.astype(np.int64)
        chunks = [pcs[i * INTERVAL:(i + 1) * INTERVAL].copy()
                  for i in range(CYCLE)]
        assert all(chunk.size == INTERVAL for chunk in chunks)
        _MATERIAL = (model, chunks)
    return _MATERIAL


_ROUND = itertools.count()


def _warm_worker(tmp_path):
    """A worker with every lane one interval deep (regions formed)."""
    model, chunks = _material()
    config = ServeConfig(binary=model.binary, n_shards=1)
    streams = tuple(f"s{i:03d}" for i in range(N_STREAMS))
    # A fresh store directory per round: the worker constructor adopts
    # any snapshot it finds, which would skip the warm-up.
    store = SnapshotStore(tmp_path / f"round{next(_ROUND):03d}",
                          shard_id=0)
    worker = ShardWorker(0, streams, config, store)
    for seq, stream in enumerate(streams):
        worker.handle_batch(Batch(seq=seq, stream=stream, stream_seq=0,
                                  samples=chunks[seq % CYCLE]))
    return worker, streams, chunks


def _apply_round(worker, streams, chunks, snapshot):
    seq = worker.seen_through
    for k in range(APPLIES):
        seq += 1
        stream = streams[k % N_STREAMS]
        worker.handle_batch(Batch(
            seq=seq, stream=stream,
            stream_seq=worker.stream_seqs[stream],
            samples=chunks[k % CYCLE]))
    if snapshot:
        worker.take_snapshot()
    return worker


def _per_second(benchmark, count, name):
    try:
        median = benchmark.stats.stats.median
    except AttributeError:  # pragma: no cover - harness internals moved
        return
    if median > 0:
        benchmark.extra_info[name] = round(count / median, 1)


def test_serve_apply_plain(benchmark, tmp_path):
    def setup():
        worker, streams, chunks = _warm_worker(tmp_path)
        return (worker, streams, chunks, False), {}

    worker = benchmark.pedantic(_apply_round, setup=setup,
                                rounds=STEADY_ROUNDS, iterations=1)
    assert worker.seen_through == N_STREAMS + APPLIES - 1
    benchmark.extra_info["applies_per_round"] = APPLIES
    _per_second(benchmark, APPLIES, "batch_applies_per_sec")


def test_serve_apply_snapshotted(benchmark, tmp_path):
    def setup():
        worker, streams, chunks = _warm_worker(tmp_path)
        return (worker, streams, chunks, True), {}

    worker = benchmark.pedantic(_apply_round, setup=setup,
                                rounds=STEADY_ROUNDS, iterations=1)
    assert worker.store.load_latest() is not None
    benchmark.extra_info["applies_per_round"] = APPLIES
    benchmark.extra_info["snapshot_every"] = ServeConfig().snapshot_every
    _per_second(benchmark, APPLIES, "batch_applies_per_sec")


def test_serve_worker_recovery(benchmark, tmp_path):
    """Restore the newest snapshot and replay a 64-deep journal suffix."""
    model, chunks = _material()
    config = ServeConfig(binary=model.binary, n_shards=1)
    streams = tuple(f"s{i:03d}" for i in range(N_STREAMS))

    def setup():
        store = SnapshotStore(tmp_path / f"round{next(_ROUND):03d}",
                              shard_id=0)
        worker = ShardWorker(0, streams, config, store)
        journal = []
        for seq, stream in enumerate(streams):
            journal.append(Batch(seq=seq, stream=stream, stream_seq=0,
                                 samples=chunks[seq % CYCLE]))
            worker.handle_batch(journal[-1])
        worker.take_snapshot()
        suffix = []
        for k in range(REPLAY):
            stream = streams[k % N_STREAMS]
            suffix.append(Batch(
                seq=N_STREAMS + k, stream=stream,
                stream_seq=worker.stream_seqs[stream],
                samples=chunks[k % CYCLE]))
            worker.handle_batch(suffix[-1])
        # The worker "crashes" here; the supervisor would hold `suffix`
        # in its journal and replay it into the respawned worker.
        return (store, suffix), {}

    def recover(store, suffix):
        worker = ShardWorker(0, streams, config, store)
        assert worker.restored_seq == N_STREAMS - 1
        for message in suffix:
            worker.handle_batch(message)
        return worker

    worker = benchmark.pedantic(recover, setup=setup,
                                rounds=STEADY_ROUNDS, iterations=1)
    assert worker.seen_through == N_STREAMS + REPLAY - 1
    benchmark.extra_info["replayed_batches"] = REPLAY
