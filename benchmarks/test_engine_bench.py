"""Performance-engine benchmarks: cache + batched attribution vs. seed.

These record the engine's headline speedups in the ``BENCH_*.json``
trajectory (see ``scripts/bench_compare.py``):

* the fig03+fig04 figure pair, where the cross-figure stream/GPD cache
  removes fig04's re-simulation of every stream fig03 just produced;
* the fig13+fig14 figure pair, where the monitor cache removes fig14's
  re-monitoring and batched attribution speeds up the monitors
  themselves;
* the scalar-reference monitor baseline those pairs are compared against.

Each ``*_engine`` benchmark also times the matching seed-equivalent path
once (``cache_disabled`` + the ``"-scalar"`` attribution references) and
records the measured speedup in ``extra_info`` so every snapshot carries
the engine-vs-seed ratio for this host.
"""

import time

from conftest import steady

from repro.experiments import cache as cache_module
from repro.experiments import (fig03_gpd_phase_changes,
                               fig04_gpd_stable_time,
                               fig13_lpd_phase_changes,
                               fig14_lpd_stable_time)
from repro.experiments.base import benchmark_for, monitored_run
from repro.experiments.config import GPD_PERIODS

FIG3_SUBSET = ("181.mcf", "178.galgel", "187.facerec", "254.gap",
               "171.swim", "189.lucas")
FIG13_SUBSET = ("181.mcf", "254.gap", "189.lucas", "188.ammp")


def _record_speedup(benchmark, seed_seconds: float) -> None:
    benchmark.extra_info["seed_pair_seconds"] = round(seed_seconds, 4)
    try:
        median = benchmark.stats.stats.median
    except AttributeError:  # pragma: no cover - harness internals moved
        return
    if median > 0:
        benchmark.extra_info["speedup_vs_seed"] = round(
            seed_seconds / median, 2)


def test_fig03_fig04_pair_engine(benchmark, bench_config):
    """The GPD figure pair with the cross-figure cache (fresh each round)."""
    store = cache_module.get_cache()

    def pair():
        store.clear()
        fig03_gpd_phase_changes.run(bench_config, benchmarks=FIG3_SUBSET)
        return fig04_gpd_stable_time.run(bench_config,
                                         benchmarks=FIG3_SUBSET)

    result = steady(benchmark, pair)
    assert result.rows

    started = time.perf_counter()
    with cache_module.cache_disabled():
        fig03_gpd_phase_changes.run(bench_config, benchmarks=FIG3_SUBSET)
        fig04_gpd_stable_time.run(bench_config, benchmarks=FIG3_SUBSET)
    _record_speedup(benchmark, time.perf_counter() - started)


def test_fig13_fig14_pair_engine(benchmark, bench_config):
    """The LPD figure pair: monitor cache + batched attribution."""
    store = cache_module.get_cache()

    def pair():
        store.clear()
        fig13_lpd_phase_changes.run(bench_config, benchmarks=FIG13_SUBSET)
        return fig14_lpd_stable_time.run(bench_config,
                                         benchmarks=FIG13_SUBSET)

    result = steady(benchmark, pair)
    assert result.rows

    # Seed equivalent: each figure re-simulates and re-monitors every
    # (benchmark, period) run with the per-PC scalar attribution loop.
    started = time.perf_counter()
    with cache_module.cache_disabled():
        for _figure in range(2):
            for name in FIG13_SUBSET:
                model = benchmark_for(name, bench_config)
                for period in GPD_PERIODS:
                    monitored_run(model, period, bench_config,
                                  attribution="list-scalar")
    _record_speedup(benchmark, time.perf_counter() - started)


def test_monitor_scalar_reference(benchmark, bench_config):
    """Scalar per-PC monitor baseline (the pre-engine hot path)."""
    model = benchmark_for("181.mcf", bench_config)

    def run():
        with cache_module.cache_disabled():
            return monitored_run(model, 45_000, bench_config,
                                 attribution="list-scalar")

    monitor = steady(benchmark, run)
    assert monitor.intervals_processed > 0


def test_monitor_batched(benchmark, bench_config):
    """Batched monitor on the same run as the scalar reference."""
    model = benchmark_for("181.mcf", bench_config)

    def run():
        with cache_module.cache_disabled():
            return monitored_run(model, 45_000, bench_config,
                                 attribution="list")

    monitor = steady(benchmark, run)
    assert monitor.intervals_processed > 0
