"""Telemetry-path benchmarks: the disabled fast path and the sink costs.

The contract under test: with only the default ``NullSink`` attached the
bus is *disabled* and every instrumentation site reduces to one attribute
load and a falsy branch — no event objects are constructed.  The gated
micro-benchmarks in ``test_micro_bench.py`` (``test_gpd_interval``,
``test_lpd_interval``, ``test_monitor_interval_pipeline``) measure that
overhead end-to-end against the pre-telemetry trajectory snapshot; the
benchmarks here isolate the bus primitives themselves so a future
regression is attributable.
"""

import numpy as np

from repro.core.lpd import LocalPhaseDetector
from repro.telemetry.bus import EventBus
from repro.telemetry.events import StateTransition
from repro.telemetry.sinks import InMemorySink, MetricsSink

RNG = np.random.default_rng(42)


def test_bus_disabled_check(benchmark):
    """The per-site cost when telemetry is off: a bool attribute read."""
    bus = EventBus()
    assert not bus.enabled

    def guarded_site():
        hits = 0
        for _ in range(1000):
            if bus.enabled:
                hits += 1  # pragma: no cover - never taken
        return hits

    assert benchmark(guarded_site) == 0


def test_bus_emit_inmemory(benchmark):
    """Construct-and-emit cost with a recording sink attached."""
    bus = EventBus(sinks=[InMemorySink()])
    assert bus.enabled
    state = {"i": 0}

    def emit_one():
        state["i"] += 1
        bus.emit(StateTransition(
            interval_index=state["i"], detector="lpd", rid=3,
            state_from="stable", state_to="stable", metric=0.97))

    benchmark(emit_one)


def test_bus_emit_metrics(benchmark):
    """Construct-and-emit cost with metric aggregation attached."""
    bus = EventBus(sinks=[MetricsSink()])
    state = {"i": 0}

    def emit_one():
        state["i"] += 1
        bus.emit(StateTransition(
            interval_index=state["i"], detector="lpd", rid=3,
            state_from="stable", state_to="stable", metric=0.97))

    benchmark(emit_one)


def test_lpd_interval_with_sink(benchmark):
    """The instrumented LPD interval with a live sink (vs. the gated
    ``test_lpd_interval``, which runs the same step with the bus off)."""
    counts = RNG.integers(0, 100, size=256).astype(float)
    bus = EventBus(sinks=[InMemorySink()])
    detector = LocalPhaseDetector(n_instructions=256, telemetry=bus,
                                  region_id=1)
    state = {"i": 0}

    def observe():
        state["i"] += 1
        return detector.observe(counts, state["i"])

    benchmark(observe)
    assert detector.active_intervals > 0
