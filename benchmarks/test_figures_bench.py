"""One benchmark per reproduced figure.

Each test times the regeneration of one paper figure at the reduced
benchmark scale and sanity-checks the regenerated shape, so the harness
doubles as a smoke test that every figure stays reproducible.
"""

from conftest import once

from repro.experiments import (fig02_mcf_region_chart,
                               fig03_gpd_phase_changes,
                               fig04_gpd_stable_time,
                               fig05_facerec_region_chart, fig06_ucr_median,
                               fig07_ucr_over_time,
                               fig08_pearson_properties, fig09_mcf_regions,
                               fig10_mcf_correlation, fig11_gap_regions,
                               fig13_lpd_phase_changes,
                               fig14_lpd_stable_time, fig15_cost,
                               fig16_interval_tree, fig17_speedup)
from repro.experiments.config import ExperimentConfig

#: Benchmark subsets keeping the sweep figures affordable while retaining
#: their contrast (one flapper, one stable, one UCR-heavy, ...).
FIG3_SUBSET = ("181.mcf", "178.galgel", "187.facerec", "254.gap",
               "171.swim", "189.lucas")
FIG6_SUBSET = ("254.gap", "186.crafty", "181.mcf", "171.swim", "176.gcc")
FIG13_SUBSET = ("181.mcf", "254.gap", "189.lucas", "188.ammp")
COST_SUBSET = ("176.gcc", "186.crafty", "301.apsi", "181.mcf", "171.swim",
               "189.lucas")


def test_fig02_bench(benchmark, bench_config):
    result = once(benchmark, fig02_mcf_region_chart.run, bench_config)
    assert result.rows
    assert "146f0-14770" in result.extras["chart"].region_names


def test_fig03_bench(benchmark, bench_config):
    result = once(benchmark, fig03_gpd_phase_changes.run, bench_config,
                  benchmarks=FIG3_SUBSET)
    by_name = {row[0]: row for row in result.rows}
    assert by_name["178.galgel"][1] > by_name["171.swim"][1]


def test_fig04_bench(benchmark, bench_config):
    result = once(benchmark, fig04_gpd_stable_time.run, bench_config,
                  benchmarks=FIG3_SUBSET)
    by_name = {row[0]: row for row in result.rows}
    assert by_name["171.swim"][1] > by_name["187.facerec"][1]


def test_fig05_bench(benchmark, bench_config):
    result = once(benchmark, fig05_facerec_region_chart.run, bench_config)
    values = dict((row[0], row[1]) for row in result.rows)
    assert values["GPD phase changes"] >= 1


def test_fig06_bench(benchmark, bench_config):
    result = once(benchmark, fig06_ucr_median.run, bench_config,
                  benchmarks=FIG6_SUBSET)
    by_name = {row[0]: row for row in result.rows}
    assert by_name["254.gap"][2] is True
    assert by_name["171.swim"][2] is False


def test_fig07_bench(benchmark):
    config = ExperimentConfig(scale=0.05, seed=7)
    result = once(benchmark, fig07_ucr_over_time.run, config)
    assert result.rows[-1][1] > 25.0


def test_fig08_bench(benchmark, bench_config):
    result = benchmark(fig08_pearson_properties.run, bench_config)
    rows = {row[0]: row for row in result.rows}
    assert rows["shift bottleneck by 1 instruction"][1] < 0.3


def test_fig09_bench(benchmark, bench_config):
    result = once(benchmark, fig09_mcf_regions.run, bench_config)
    assert result.rows[0][1] > result.rows[-1][1]


def test_fig10_bench(benchmark, bench_config):
    result = once(benchmark, fig10_mcf_correlation.run, bench_config)
    assert all(row[1] > 0.9 for row in result.rows)


def test_fig11_bench(benchmark, bench_config):
    result = once(benchmark, fig11_gap_regions.run, bench_config)
    assert result.rows


def test_fig13_bench(benchmark, bench_config):
    result = once(benchmark, fig13_lpd_phase_changes.run, bench_config,
                  benchmarks=FIG13_SUBSET)
    lucas = [row for row in result.rows if row[0] == "189.lucas"]
    assert all(row[3] <= 2 for row in lucas)


def test_fig14_bench(benchmark, bench_config):
    result = once(benchmark, fig14_lpd_stable_time.run, bench_config,
                  benchmarks=("189.lucas", "181.mcf"))
    assert all(row[3] > 50.0 for row in result.rows)


def test_fig15_bench(benchmark, bench_config):
    result = once(benchmark, fig15_cost.run, bench_config,
                  benchmarks=COST_SUBSET)
    by_name = {row[0]: row for row in result.rows}
    assert by_name["176.gcc"][3] == max(row[3] for row in result.rows)


def test_fig16_bench(benchmark, bench_config):
    result = once(benchmark, fig16_interval_tree.run, bench_config,
                  benchmarks=COST_SUBSET)
    by_name = {row[0]: row for row in result.rows}
    assert by_name["176.gcc"][4] < 0.5
    assert by_name["189.lucas"][4] > 1.0


def test_fig17_bench(benchmark):
    config = ExperimentConfig(scale=0.5, seed=7)
    result = once(benchmark, fig17_speedup.run, config,
                  benchmarks=("181.mcf", "172.mgrid"))
    by_name = {row[0]: row for row in result.rows}
    assert abs(by_name["172.mgrid"][1]) < 5.0
