"""Calibration: Figure 17 — RTO_LPD speedup over RTO_ORIG."""
import sys, time
from repro.program.spec2000 import get_benchmark, FIG17_BENCHMARKS
from repro.optimizer import compare_policies

scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
periods = (100_000, 800_000, 1_500_000)
header = "".join(f"{p//1000:>8}k" for p in periods)
print(f"{'benchmark':<12}" + header + "   (orig stable% / lpd stable%)")
for name in FIG17_BENCHMARKS:
    model = get_benchmark(name, scale)
    row = f"{name:<12}"
    info = []
    for period in periods:
        orig, lpd, speedup = compare_policies(
            model.binary, model.regions, model.workload, period, seed=11)
        row += f"{100*speedup:>8.1f}%"
        info.append(f"{100*orig.stable_fraction:.0f}/{100*lpd.stable_fraction:.0f}")
    print(row + "   " + " ".join(info))
