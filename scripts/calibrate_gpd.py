"""Calibration: GPD phase changes and stable% per benchmark x period."""
import sys, time
import numpy as np
from repro.program.spec2000 import get_benchmark, FIG3_BENCHMARKS
from repro.sampling import simulate_sampling
from repro.analysis.metrics import run_gpd

scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
names = sys.argv[2].split(",") if len(sys.argv) > 2 else list(FIG3_BENCHMARKS)
periods = (45_000, 450_000, 900_000)
print(f"{'benchmark':<14} " + "".join(f"{p//1000:>6}k chg {'stab%':>6} " for p in periods))
for name in names:
    model = get_benchmark(name, scale)
    row = f"{name:<14} "
    t0 = time.time()  # repro: allow[wall-clock] progress timer
    for period in periods:
        stream = simulate_sampling(model.regions, model.workload, period, seed=7)
        det = run_gpd(stream, 2032)
        row += f"{len(det.events):>9} {100*det.stable_time_fraction():>6.1f} "
    print(row + f"  ({time.time()-t0:.1f}s)")  # repro: allow[wall-clock] progress timer
