"""Calibration: Figures 13/14 — per-region LPD phase changes and stable%."""
import sys, time
from repro.core import MonitorThresholds
from repro.monitor import RegionMonitor
from repro.program.spec2000 import get_benchmark, FIG13_BENCHMARKS
from repro.sampling import simulate_sampling

scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
names = sys.argv[2].split(",") if len(sys.argv) > 2 else list(FIG13_BENCHMARKS)
periods = (45_000, 450_000, 900_000)
for name in names:
    model = get_benchmark(name, scale)
    t0 = time.time()  # repro: allow[wall-clock] progress timer
    for wname in model.selected_region_names:
        print(f"{name:>13} {wname:<10}", end=" ")
        for period in periods:
            stream = simulate_sampling(model.regions, model.workload, period, seed=7)
            mon = RegionMonitor(model.binary, MonitorThresholds())
            mon.process_stream(stream)
            target = model.monitored_name(wname)
            try:
                region = mon.region_by_name(target)
                det = mon.detector(region.rid)
                stable_pct = 100 * det.stable_time_fraction()
                print(f"{det.phase_change_count():>5}chg {stable_pct:>5.1f}%", end="  ")
            except Exception:
                print("  not-formed ", end="  ")
        print(f" ({time.time()-t0:.1f}s)")  # repro: allow[wall-clock] progress timer
