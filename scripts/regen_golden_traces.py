#!/usr/bin/env python
"""Regenerate every golden telemetry trace fixture.

One command::

    python scripts/regen_golden_traces.py

re-runs each pinned pipeline (see ``tests/fixtures/traces/golden.py``)
and rewrites the committed JSONL fixtures in place.  Run it after an
*intentional* change to pipeline behavior or the trace schema, review
the diff, and commit the updated files together with the change that
caused them — the replay test fails until the fixtures match again.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from tests.fixtures.traces.golden import (GOLDEN_TRACES, TRACE_DIR,  # noqa: E402
                                          write_golden_trace)


def main() -> int:
    for name in GOLDEN_TRACES:
        path = write_golden_trace(name, TRACE_DIR)
        size = path.stat().st_size
        print(f"wrote {path.relative_to(REPO_ROOT)} ({size} bytes)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
