"""Calibration: Figures 6 (UCR median), 15 (cost), 16 (tree vs list)."""
import sys, time
from repro.core import MonitorThresholds
from repro.costs import CostLedger
from repro.monitor import RegionMonitor
from repro.program.spec2000 import get_benchmark, FIG6_BENCHMARKS
from repro.sampling import simulate_sampling
from repro.analysis.metrics import run_gpd

scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
names = sys.argv[2].split(",") if len(sys.argv) > 2 else list(FIG6_BENCHMARKS)
print(f"{'benchmark':<14}{'ucr_med':>8}{'regs':>6}{'gpd%':>10}"
      f"{'lpd%':>9}{'x slower':>9}{'tree/list':>10}")
for name in names:
    t0 = time.time()  # repro: allow[wall-clock] progress timer
    model = get_benchmark(name, scale)
    stream = simulate_sampling(model.regions, model.workload, 45_000, seed=7)
    total = stream.total_cycles
    gl = CostLedger()
    run_gpd(stream, 2032, ledger=gl)
    mon = RegionMonitor(model.binary, MonitorThresholds())
    mon.process_stream(stream)
    tree = RegionMonitor(model.binary, MonitorThresholds(), attribution="tree")
    tree.process_stream(stream)
    gpd_pct = 100*gl.overhead_fraction(total, gl.gpd_ops)
    lpd_pct = 100*mon.ledger.overhead_fraction(total, mon.ledger.monitor_ops)
    tree_ops = tree.ledger.attribution_ops + tree.ledger.tree_maintenance_ops
    factor = tree_ops / max(mon.ledger.attribution_ops, 1)
    print(f"{name:<14}{mon.ucr.median():>8.2f}{len(mon.all_regions()):>6}"
          f"{gpd_pct:>9.4f}%{lpd_pct:>8.3f}%{lpd_pct/max(gpd_pct,1e-9):>9.0f}{factor:>10.2f}"
          f"   ({time.time()-t0:.1f}s)")  # repro: allow[wall-clock] progress timer
