#!/usr/bin/env python3
"""Capture real executions into committed trace-profile fixtures.

Three modes, all ending in the same compact profile JSON that
``repro.ingest`` replays (CI only ever touches the profiles — this
tool is the offline half of the pipeline):

``record``
    Drive ``perf record`` / ``perf script`` around a command and
    convert the output.  Requires Linux ``perf`` and the usual
    ``perf_event_paranoid`` permissions::

        python scripts/record_trace.py record --name gzipbench \\
            --out trace.json --event cycles --period 100003 -- \\
            gzip -9 -c /usr/share/dict/words

``convert``
    Convert existing ``perf script -F comm,pid,time,ip,sym,dso`` text
    (recorded anywhere, copied here) into a profile::

        python scripts/record_trace.py convert samples.txt \\
            --name gzipbench --out trace.json --comm gzip

``pysample``
    Environments without ``perf`` (containers, CI) still need *real*
    recordings: run a Python workload in-process while a sampler
    thread captures the interpreter's executing frame at a fixed
    interval.  Each sample is emitted as a synthetic virtual address
    (per-file random load base — deliberately ASLR-like, the pipeline
    must cancel it — plus the code object's offset), formatted as
    ``perf script`` text and pushed through the exact parser/profile
    pipeline a perf recording takes::

        PYTHONPATH=src python scripts/record_trace.py pysample \\
            tests/fixtures/traces/workloads/phases_json_regex.py \\
            --name pyjson --out tests/fixtures/traces/realtrace/pyjson.json

The provenance manifest inside the profile records mode, command,
tool version, event, nominal period and the parse drop counters.
"""

from __future__ import annotations

import argparse
import os
import platform
import random
import runpy
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.errors import IngestError  # noqa: E402
from repro.ingest import (PerfEvent, TraceProvenance,  # noqa: E402
                          format_perf_script, parse_perf_script,
                          profile_from_events, save_profile)

#: Default pysample interval: 1 ms between frame captures.
DEFAULT_INTERVAL_US = 1000


def _convert_text(text: str, name: str, provenance: TraceProvenance,
                  out: Path, comm: str | None,
                  keep_kernel: bool) -> None:
    """Shared tail of every mode: text -> events -> profile -> JSON."""
    events, stats = parse_perf_script(text, comm=comm,
                                      keep_kernel=keep_kernel)
    if not events:
        raise IngestError(
            f"no events survived parsing ({stats.total_dropped} dropped: "
            f"{stats.to_json()['dropped']})")
    profile = profile_from_events(events, name, provenance, stats=stats)
    save_profile(profile, out)
    print(f"{out}: {profile.n_samples} samples, "
          f"{len(profile.dsos)} DSOs, {profile.duration_ns / 1e6:.1f} ms, "
          f"checksum {profile.checksum}")
    if stats.total_dropped:
        print(f"  dropped {stats.total_dropped}: "
              f"{stats.to_json()['dropped']}")


def cmd_convert(args: argparse.Namespace) -> int:
    text = Path(args.input).read_text(encoding="utf-8")
    provenance = TraceProvenance(
        command=args.command or "", tool=args.tool or "perf script",
        event=args.event, period_ns=args.period_ns,
        comm=args.comm or "")
    _convert_text(text, args.name, provenance, Path(args.out),
                  args.comm, args.keep_kernel)
    return 0


def cmd_record(args: argparse.Namespace) -> int:
    perf = shutil.which("perf")
    if perf is None:
        print("perf not found on PATH; use 'convert' on text recorded "
              "elsewhere, or 'pysample' for Python workloads",
              file=sys.stderr)
        return 2
    with tempfile.TemporaryDirectory(prefix="repro-record-") as tmp:
        data = Path(tmp) / "perf.data"
        record = [perf, "record", "-e", args.event, "-c",
                  str(args.period), "-o", str(data), "--"] + args.argv
        subprocess.run(record, check=True)
        script = subprocess.run(
            [perf, "script", "-i", str(data),
             "-F", "comm,pid,time,ip,sym,dso"],
            check=True, capture_output=True, text=True)
        version = subprocess.run([perf, "--version"],
                                 capture_output=True, text=True)
        text = script.stdout
    # Event period for a cycles-style event is in event counts, not
    # time; record the wall period only when the event is time-based.
    period_ns = args.period * 1000 if args.event.endswith("clock") else 0
    provenance = TraceProvenance(
        command=" ".join(args.argv), tool=version.stdout.strip(),
        event=args.event, period_ns=period_ns, comm=args.comm or "")
    _convert_text(text, args.name, provenance, Path(args.out),
                  args.comm, args.keep_kernel)
    return 0


class _FrameSampler:
    """Daemon thread sampling the main thread's executing frame.

    Produces ``perf script``-shaped events: the "DSO" is the running
    code object's source file, the "symbol" its qualified name, and
    the "virtual address" a per-file random load base (fresh every
    run, like ASLR — downstream offsets must cancel it) plus the code
    object's line/bytecode offset.
    """

    def __init__(self, interval_ns: int, comm: str) -> None:
        self.interval_ns = interval_ns
        self.comm = comm
        self.events: list[PerfEvent] = []
        self._stop = threading.Event()
        self._main_id = threading.get_ident()
        self._bases: dict[str, int] = {}
        # Load-base entropy is the *point* of this RNG: every run must
        # slide each file differently, proving offset stability.
        self._rng = random.Random(os.getpid() ^ time.time_ns())  # repro: allow[wall-clock] ASLR-like load bases need per-run entropy
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _base(self, filename: str) -> int:
        if filename not in self._bases:
            self._bases[filename] = (0x4000_0000
                                     + self._rng.randrange(1 << 20)
                                     * 0x1000)
        return self._bases[filename]

    def _run(self) -> None:
        pid = os.getpid()
        interval_s = self.interval_ns / 1e9
        while not self._stop.is_set():
            now = time.monotonic_ns()  # repro: allow[wall-clock] sampling timestamps are real time by definition
            frame = sys._current_frames().get(self._main_id)
            if frame is not None:
                code = frame.f_code
                ip = (self._base(code.co_filename)
                      + code.co_firstlineno * 0x100
                      + max(frame.f_lasti, 0) * 2)
                self.events.append(PerfEvent(
                    comm=self.comm, pid=pid, time_ns=now, ip=ip,
                    sym=code.co_name, dso=code.co_filename))
            self._stop.wait(interval_s)

    def __enter__(self) -> "_FrameSampler":
        self._thread.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def cmd_pysample(args: argparse.Namespace) -> int:
    script = Path(args.script)
    if not script.is_file():
        print(f"workload script not found: {script}", file=sys.stderr)
        return 2
    comm = args.comm or "python"
    interval_ns = args.interval_us * 1000
    sampler = _FrameSampler(interval_ns, comm)
    old_argv = sys.argv
    sys.argv = [str(script)] + args.args
    try:
        with sampler:
            runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv
    if not sampler.events:
        print("sampler captured nothing (workload too short?)",
              file=sys.stderr)
        return 2
    text = format_perf_script(sampler.events)
    if args.keep_script:
        Path(args.keep_script).write_text(text, encoding="utf-8")
        print(f"kept perf-script text: {args.keep_script} "
              f"({len(sampler.events)} records)")
    provenance = TraceProvenance(
        command=f"python {script.name} " + " ".join(args.args),
        tool=f"pysampler cpython-{platform.python_version()}",
        event="task-clock(py-frames)", period_ns=interval_ns, comm=comm)
    _convert_text(text, args.name, provenance, Path(args.out), comm,
                  args.keep_kernel)
    return 0


def _common(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--name", required=True,
                     help="profile name (cache keys carry trace:<name>)")
    sub.add_argument("--out", required=True, help="output profile JSON")
    sub.add_argument("--comm", default=None,
                     help="keep only this command's samples")
    sub.add_argument("--keep-kernel", action="store_true",
                     help="keep kernel-space samples (dropped by default)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Record/convert real executions into trace profiles.")
    modes = parser.add_subparsers(dest="mode", required=True)

    convert = modes.add_parser(
        "convert", help="convert existing perf-script text")
    convert.add_argument("input", help="perf script output text file")
    _common(convert)
    convert.add_argument("--command", default=None,
                         help="recorded command line, for the manifest")
    convert.add_argument("--tool", default=None,
                         help="recorder name/version, for the manifest")
    convert.add_argument("--event", default="cycles",
                         help="recorded event name (default: cycles)")
    convert.add_argument("--period-ns", type=int, default=0,
                         help="nominal ns between samples, if known")
    convert.set_defaults(fn=cmd_convert)

    record = modes.add_parser(
        "record", help="perf record + perf script a command (needs perf)")
    _common(record)
    record.add_argument("--event", default="cycles")
    record.add_argument("--period", type=int, default=100_003,
                        help="perf -c sample period (default 100003)")
    record.add_argument("argv", nargs="+",
                        help="command to record (after --)")
    record.set_defaults(fn=cmd_record)

    pysample = modes.add_parser(
        "pysample", help="sample a Python workload without perf")
    pysample.add_argument("script", help="workload script to run")
    pysample.add_argument("args", nargs="*",
                          help="arguments passed to the workload")
    _common(pysample)
    pysample.add_argument("--interval-us", type=int,
                          default=DEFAULT_INTERVAL_US,
                          help=f"sampling interval in microseconds "
                               f"(default {DEFAULT_INTERVAL_US})")
    pysample.add_argument("--keep-script", default=None, metavar="PATH",
                          help="also write the perf-script-format text")
    pysample.set_defaults(fn=cmd_pysample)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except IngestError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
