#!/usr/bin/env python
"""Bench regression guard: run the pytest-benchmark suite and track it.

Runs the benchmark harness (``benchmarks/``), writes a slim
``BENCH_<timestamp>.json`` trajectory snapshot at the repo root, and
compares per-test medians against the most recent previous snapshot:
exits non-zero when any benchmark's median regressed by more than the
threshold (default 25%).  The accumulating ``BENCH_*.json`` files are the
repository's performance trajectory — each snapshot also records the
host's CPU count and the git revision it measured.

Telemetry-overhead gate: the detector hot-path benchmarks listed in
:data:`TELEMETRY_GATED` run with the default disabled telemetry bus, so
their trajectory *is* the NullSink overhead budget.  They are held to a
much tighter threshold (``--telemetry-threshold``, default 2%) than the
general 25% noise allowance — the single ``bus.enabled`` check per
instrumentation site must stay free — and their deltas are always printed
even when they pass.

Fleet gates: when the snapshot contains the 256-stream fleet-stepping
pair from ``benchmarks/test_batch_bench.py``, the batch backend's median
must beat the scalar loop's by at least ``--fleet-min-speedup`` (default
25x; a within-snapshot ratio, so immune to host speed), and the batch
benchmark's recorded ``stream_intervals_per_sec`` must clear the
absolute ``--fleet-min-throughput`` floor (default 50,000 — deliberately
conservative so only a real hot-path collapse, not a slow CI host,
trips it).

Snapshot-overhead gate: when the snapshot contains the serving pair
from ``benchmarks/test_serve_bench.py`` (the same batch applications
with and without one shard snapshot appended), the snapshot's marginal
cost amortized over the default checkpoint cadence must stay under
``--snapshot-max-overhead`` (default 5%).  Like the fleet speedup this
is a within-snapshot ratio, so host speed cancels; the recovery
benchmark's median (restore + journal replay) rides along in the
trajectory unguarded.

Usage::

    python scripts/bench_compare.py                      # full suite
    python scripts/bench_compare.py --select benchmarks/test_figures_bench.py
    python scripts/bench_compare.py --threshold 0.4 --dry-run
"""

from __future__ import annotations

import argparse
import datetime
import glob
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# The script runs standalone (no installed package, no PYTHONPATH); the
# machine-identity helper is shared with `repro-bench hunt` so the
# pairwise guard here and hunt's series segmentation can never drift.
_SRC = os.path.join(REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
from repro.cpd.hunt import machine_fingerprint  # noqa: E402

#: Snapshot filename pattern; the lexicographic sort of the timestamp is
#: the chronological order.
SNAPSHOT_PATTERN = "BENCH_*.json"

#: Benchmarks on the telemetry-instrumented detector hot path, gated at
#: ``--telemetry-threshold`` instead of the general ``--threshold``.
#: Matched by substring against the pytest-benchmark fullname.
TELEMETRY_GATED = (
    "test_gpd_interval",
    "test_lpd_interval",
    "test_monitor_interval_pipeline",
)

#: Within-snapshot fleet gate: the batch backend must keep at least this
#: throughput multiple over the scalar detector loop on the 256-stream
#: fleet-stepping benchmark pair (``benchmarks/test_batch_bench.py``).
#: Unlike the cross-snapshot thresholds this compares two benchmarks of
#: the *current* run, so host speed cancels out.
FLEET_SPEEDUP_FLOOR = 25.0
FLEET_SCALAR_BENCH = "test_fleet_step_scalar[256]"
FLEET_BATCH_BENCH = "test_fleet_step_batch[256]"

#: Absolute floor on the 256-stream batch benchmark's recorded
#: ``stream_intervals_per_sec`` (written to ``extra_info`` by the
#: benchmark itself).  Set well below the measured ~120k/s on a single
#: noisy core so it catches the hot path falling off a cliff (e.g. the
#: coalesced slice path silently degrading to per-item gathers), not
#: ordinary host variance.
FLEET_THROUGHPUT_FLOOR = 50_000.0

#: Ceiling on the amortized checkpoint cost: one snapshot per
#: ``ServeConfig.snapshot_every`` applied batches may consume at most
#: this fraction of the batch-application throughput
#: (``benchmarks/test_serve_bench.py`` records the applies-per-round
#: and cadence in ``extra_info``).
SNAPSHOT_OVERHEAD_CEILING = 0.05
SERVE_PLAIN_BENCH = "test_serve_apply_plain"
SERVE_SNAPSHOT_BENCH = "test_serve_apply_snapshotted"


def _is_telemetry_gated(name: str) -> bool:
    return any(pattern in name for pattern in TELEMETRY_GATED)


def fleet_gate(snapshot: dict,
               floor: float = FLEET_SPEEDUP_FLOOR) -> tuple[str, bool] | None:
    """Check the batch-over-scalar fleet speedup within one snapshot.

    Returns ``(report line, passed)``, or ``None`` when the snapshot does
    not contain both fleet benchmarks (e.g. a ``--select`` run that
    skipped ``test_batch_bench.py``).
    """
    benches = snapshot.get("benchmarks", {})
    scalar = next((s for name, s in benches.items()
                   if FLEET_SCALAR_BENCH in name), None)
    batch = next((s for name, s in benches.items()
                  if FLEET_BATCH_BENCH in name), None)
    if scalar is None or batch is None or batch["median"] <= 0:
        return None
    speedup = scalar["median"] / batch["median"]
    line = (f"fleet-256 stepping: scalar {scalar['median']:.4f}s / "
            f"batch {batch['median']:.4f}s = {speedup:.2f}x "
            f"(floor {floor:.1f}x)")
    return line, speedup >= floor


def throughput_gate(snapshot: dict, floor: float = FLEET_THROUGHPUT_FLOOR
                    ) -> tuple[str, bool] | None:
    """Check the absolute fleet throughput recorded by the batch bench.

    Reads ``stream_intervals_per_sec`` from the 256-stream batch
    benchmark's ``extra_info``; returns ``(report line, passed)`` or
    ``None`` when the benchmark (or the metric) is absent.
    """
    benches = snapshot.get("benchmarks", {})
    batch = next((s for name, s in benches.items()
                  if FLEET_BATCH_BENCH in name), None)
    if batch is None:
        return None
    rate = batch.get("extra_info", {}).get("stream_intervals_per_sec")
    if rate is None:
        return None
    line = (f"fleet-256 throughput: {rate:,.0f} stream-intervals/sec "
            f"(floor {floor:,.0f})")
    return line, rate >= floor


def snapshot_overhead_gate(snapshot: dict,
                           ceiling: float = SNAPSHOT_OVERHEAD_CEILING
                           ) -> tuple[str, bool] | None:
    """Check the amortized shard-snapshot cost within one snapshot.

    The serving benchmark pair times identical batch-application rounds,
    one with a single checkpoint appended; the median difference is the
    cost of one checkpoint.  Amortized over the default cadence
    (``snapshot_every``, recorded by the benchmark), that cost must stay
    under *ceiling* as a fraction of plain throughput.  Returns
    ``(report line, passed)`` or ``None`` when the pair (or its
    recorded parameters) is absent.
    """
    benches = snapshot.get("benchmarks", {})
    plain = next((s for name, s in benches.items()
                  if SERVE_PLAIN_BENCH in name), None)
    snapped = next((s for name, s in benches.items()
                    if SERVE_SNAPSHOT_BENCH in name), None)
    if plain is None or snapped is None or plain["median"] <= 0:
        return None
    extra = snapped.get("extra_info", {})
    applies = extra.get("applies_per_round")
    cadence = extra.get("snapshot_every")
    if not applies or not cadence:
        return None
    # One checkpoint per `cadence` applies; the pair measured `applies`.
    overhead = ((snapped["median"] / plain["median"]) - 1.0) \
        * applies / cadence
    line = (f"serve snapshot overhead: plain {plain['median']:.4f}s / "
            f"+snapshot {snapped['median']:.4f}s, amortized over "
            f"cadence {cadence} = {overhead * 100.0:.2f}% "
            f"(ceiling {ceiling * 100.0:.1f}%)")
    return line, overhead <= ceiling


def run_benchmarks(select: str, pytest_args: list[str]) -> dict:
    """Run the benchmark suite; return pytest-benchmark's JSON payload."""
    with tempfile.TemporaryDirectory() as tmp:
        json_path = os.path.join(tmp, "bench.json")
        env = dict(os.environ)
        src = os.path.join(REPO_ROOT, "src")
        env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                             if env.get("PYTHONPATH") else src)
        command = [sys.executable, "-m", "pytest", select, "-q",
                   f"--benchmark-json={json_path}", *pytest_args]
        print("+", " ".join(command))
        completed = subprocess.run(command, cwd=REPO_ROOT, env=env)
        if completed.returncode != 0:
            raise SystemExit(
                f"benchmark run failed (exit {completed.returncode})")
        with open(json_path) as handle:
            return json.load(handle)


def slim_snapshot(payload: dict) -> dict:
    """Reduce pytest-benchmark output to the tracked trajectory fields."""
    benchmarks = {}
    for bench in payload.get("benchmarks", []):
        stats = bench["stats"]
        benchmarks[bench["fullname"]] = {
            "median": stats["median"],
            "mean": stats["mean"],
            "stddev": stats["stddev"],
            "rounds": stats["rounds"],
            "extra_info": bench.get("extra_info", {}),
        }
    return {
        # repro: allow[wall-clock] metadata stamp, excluded from comparison
        "datetime": datetime.datetime.now(
            datetime.timezone.utc).isoformat(),
        "git_rev": _git_rev(),
        "cpu_count": os.cpu_count(),
        "machine_info": payload.get("machine_info", {}),
        "benchmarks": benchmarks,
    }


def _git_rev() -> str | None:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, check=True).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return None


def previous_snapshot() -> tuple[str, dict] | None:
    """The most recent BENCH_*.json at the repo root, if any."""
    paths = sorted(glob.glob(os.path.join(REPO_ROOT, SNAPSHOT_PATTERN)))
    if not paths:
        return None
    with open(paths[-1]) as handle:
        return paths[-1], json.load(handle)


def compare(current: dict, previous: dict, threshold: float,
            telemetry_threshold: float | None = None
            ) -> tuple[list[str], list[str]]:
    """(regressions, telemetry-delta report lines) against a baseline.

    Only benchmarks present in *both* snapshots are compared: a test
    added since the previous snapshot (a growing suite is the normal
    case) has no baseline and is never a regression, and a removed test
    simply stops being tracked.  :func:`membership_changes` reports both
    sets for the log.

    Benchmarks matching :data:`TELEMETRY_GATED` are held to
    *telemetry_threshold* (``None``: same as *threshold*) and their
    deltas are always reported, pass or fail.
    """
    regressions = []
    telemetry_report = []
    before = previous.get("benchmarks", {})
    for name, stats in current["benchmarks"].items():
        old = before.get(name)
        if old is None or old["median"] <= 0:
            continue
        ratio = stats["median"] / old["median"]
        gated = (telemetry_threshold is not None
                 and _is_telemetry_gated(name))
        limit = telemetry_threshold if gated else threshold
        if gated:
            telemetry_report.append(
                f"{name}: median {old['median'] * 1e6:.1f}us -> "
                f"{stats['median'] * 1e6:.1f}us "
                f"({(ratio - 1.0) * 100.0:+.2f}%, "
                f"budget {limit * 100.0:+.1f}%)")
        if ratio > 1.0 + limit:
            regressions.append(
                f"{name}: median {old['median']:.4f}s -> "
                f"{stats['median']:.4f}s ({ratio:.2f}x, "
                f"threshold {1.0 + limit:.2f}x)")
    return regressions, telemetry_report


def membership_changes(current: dict,
                       previous: dict) -> tuple[list[str], list[str]]:
    """(added, removed) benchmark names between two snapshots."""
    now = set(current.get("benchmarks", {}))
    before = set(previous.get("benchmarks", {}))
    return sorted(now - before), sorted(before - now)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the benchmark suite and guard the trajectory.")
    parser.add_argument("--select", default="benchmarks",
                        help="pytest target to benchmark "
                             "(default: the whole benchmarks/ suite)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed median regression fraction "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--telemetry-threshold", type=float, default=0.02,
                        help="allowed median regression fraction for the "
                             "telemetry-gated detector hot-path "
                             "benchmarks (default 0.02 = 2%%)")
    parser.add_argument("--fleet-min-speedup", type=float,
                        default=FLEET_SPEEDUP_FLOOR,
                        help="required batch-over-scalar speedup on the "
                             "256-stream fleet benchmark pair "
                             "(default 25.0; 0 disables the gate)")
    parser.add_argument("--fleet-min-throughput", type=float,
                        default=FLEET_THROUGHPUT_FLOOR,
                        help="required absolute stream-intervals/sec on "
                             "the 256-stream batch fleet benchmark "
                             "(default 50000; 0 disables the gate)")
    parser.add_argument("--snapshot-max-overhead", type=float,
                        default=SNAPSHOT_OVERHEAD_CEILING,
                        help="allowed amortized shard-snapshot cost as a "
                             "fraction of serving throughput "
                             "(default 0.05 = 5%%; 0 disables the gate)")
    parser.add_argument("--dry-run", action="store_true",
                        help="compare only; do not write a new snapshot")
    parser.add_argument("pytest_args", nargs="*",
                        help="extra arguments forwarded to pytest "
                             "(after --)")
    args = parser.parse_args(argv)

    payload = run_benchmarks(args.select, args.pytest_args)
    snapshot = slim_snapshot(payload)
    if not snapshot["benchmarks"]:
        raise SystemExit("no benchmarks were collected")

    baseline = previous_snapshot()
    regressions: list[str] = []
    if baseline is not None:
        path, previous = baseline
        regressions, telemetry_report = compare(
            snapshot, previous, args.threshold, args.telemetry_threshold)
        added, removed = membership_changes(snapshot, previous)
        print(f"compared {len(snapshot['benchmarks'])} benchmarks "
              f"against {os.path.basename(path)}")
        current_machine = machine_fingerprint(snapshot)
        baseline_machine = machine_fingerprint(previous)
        if current_machine != baseline_machine:
            print(f"WARNING: baseline {os.path.basename(path)} was "
                  f"recorded on a different machine\n"
                  f"  baseline: {baseline_machine}\n"
                  f"  current:  {current_machine}\n"
                  f"  cross-machine deltas measure hardware, not code — "
                  f"treat any regression below with suspicion "
                  f"(`repro-bench hunt` segments by machine for this "
                  f"reason)")
        if added:
            print(f"  new (no baseline, informational): {', '.join(added)}")
        if removed:
            print(f"  no longer present: {', '.join(removed)}")
        if telemetry_report:
            print("telemetry overhead (NullSink hot path vs baseline):")
            for line in telemetry_report:
                print(" ", line)
    else:
        print("no previous snapshot; recording the first trajectory point")

    fleet_failure = None
    if args.fleet_min_speedup > 0:
        checked = fleet_gate(snapshot, args.fleet_min_speedup)
        if checked is not None:
            line, passed = checked
            print(line)
            if not passed:
                fleet_failure = line
    throughput_failure = None
    if args.fleet_min_throughput > 0:
        checked = throughput_gate(snapshot, args.fleet_min_throughput)
        if checked is not None:
            line, passed = checked
            print(line)
            if not passed:
                throughput_failure = line
    snapshot_failure = None
    if args.snapshot_max_overhead > 0:
        checked = snapshot_overhead_gate(snapshot,
                                         args.snapshot_max_overhead)
        if checked is not None:
            line, passed = checked
            print(line)
            if not passed:
                snapshot_failure = line

    if not args.dry_run:
        # repro: allow[wall-clock] output filename stamp only
        stamp = datetime.datetime.now().strftime("%Y%m%d-%H%M%S")
        out_path = os.path.join(REPO_ROOT, f"BENCH_{stamp}.json")
        with open(out_path, "w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {os.path.basename(out_path)}")

    failed = False
    if regressions:
        print("MEDIAN REGRESSIONS:")
        for line in regressions:
            print(" ", line)
        failed = True
    else:
        print("no median regressions beyond threshold")
    if fleet_failure is not None:
        print(f"FLEET SPEEDUP BELOW FLOOR: {fleet_failure}")
        failed = True
    if throughput_failure is not None:
        print(f"FLEET THROUGHPUT BELOW FLOOR: {throughput_failure}")
        failed = True
    if snapshot_failure is not None:
        print(f"SNAPSHOT OVERHEAD ABOVE CEILING: {snapshot_failure}")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
